"""Routing tables.

Messages follow latency-shortest paths computed over the topology.  Paths
are computed per source on demand (Dijkstra over link latencies) and cached,
which keeps 1024-core simulations cheap when only a subset of pairs ever
communicates (the run-time system dispatches tasks to neighbours only).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .topology import Topology


class RoutingTable:
    """Per-source shortest-path routing with caching."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        # next_hop[src] maps dst -> first hop on the path src -> dst.
        self._next_hop: Dict[int, List[int]] = {}
        self._path_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._latency_cache: Dict[Tuple[int, int], float] = {}
        self._min_latency: Optional[float] = None

    def _global_min_latency(self) -> float:
        """Cheapest link latency in the topology (lazy, cached)."""
        if self._min_latency is None:
            self._min_latency = min(
                (spec.latency for _, _, spec in self.topo.edges()),
                default=0.0,
            )
        return self._min_latency

    def _compute_source(self, src: int) -> List[int]:
        """Dijkstra from ``src`` over link latencies; store first hops."""
        n = self.topo.n_cores
        adj = self.topo._adj  # direct (neighbour -> spec) rows, hot loop
        dist = [float("inf")] * n
        first = [-1] * n
        dist[src] = 0.0
        heap: List[Tuple[float, int, int]] = [(0.0, src, -1)]
        while heap:
            d, u, f = heapq.heappop(heap)
            if d > dist[u]:
                continue
            if u != src and first[u] == -1:
                first[u] = f
            for v, spec in adj[u].items():
                nd = d + spec.latency
                if nd < dist[v]:
                    dist[v] = nd
                    hop = v if u == src else f
                    heapq.heappush(heap, (nd, v, hop))
        self._next_hop[src] = first
        return first

    def next_hop(self, src: int, dst: int) -> int:
        """First hop on the route from ``src`` to ``dst``."""
        if src == dst:
            return dst
        table = self._next_hop.get(src)
        if table is None:
            table = self._compute_source(src)
        hop = table[dst]
        if hop < 0:
            raise ValueError(f"no route from {src} to {dst}")
        return hop

    def path(self, src: int, dst: int) -> Tuple[int, ...]:
        """Full node path ``src, ..., dst`` (inclusive)."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = (src,)
            self._path_cache[key] = path
            return path
        # Fast path: most run-time traffic is neighbour-to-neighbour
        # (dispatch goes to neighbours only).  The direct link is provably
        # shortest when its latency is at most twice the cheapest link in
        # the whole topology: any detour uses at least two links.  This
        # avoids a full Dijkstra per source on 1024-core meshes.
        if self.topo.has_link(src, dst):
            direct = self.topo.link_spec(src, dst).latency
            if direct <= 2 * self._global_min_latency():
                path = (src, dst)
                self._path_cache[key] = path
                return path
        nodes = [src]
        cur = src
        guard = 0
        while cur != dst:
            cur = self.next_hop(cur, dst)
            nodes.append(cur)
            guard += 1
            if guard > self.topo.n_cores:
                raise RuntimeError("routing loop detected")
        path = tuple(nodes)
        self._path_cache[key] = path
        return path

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links on the route."""
        return len(self.path(src, dst)) - 1

    def path_latency(self, src: int, dst: int) -> float:
        """Sum of base link latencies along the route (no contention)."""
        key = (src, dst)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        path = self.path(src, dst)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.topo.link_spec(u, v).latency
        self._latency_cache[key] = total
        return total

    def clear_cache(self) -> None:
        """Drop all cached routes (after topology changes)."""
        self._next_hop.clear()
        self._path_cache.clear()
        self._latency_cache.clear()
        self._min_latency = None


class XYRouting(RoutingTable):
    """Dimension-ordered (XY) routing for 2D meshes.

    The deterministic, deadlock-free routing discipline of most real
    mesh NoCs: traverse the X dimension fully, then the Y dimension.
    Produces minimal paths of the same length as shortest-path routing on
    uniform meshes, but with a fixed, congestion-oblivious shape — useful
    for studying routing-induced hotspots.
    """

    def __init__(self, topo: Topology, width: int) -> None:
        super().__init__(topo)
        if width <= 0 or topo.n_cores % width:
            raise ValueError("mesh width must divide the core count")
        self.width = width

    def path(self, src: int, dst: int) -> Tuple[int, ...]:
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        width = self.width
        sx, sy = src % width, src // width
        dx, dy = dst % width, dst // width
        nodes = [src]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            nodes.append(y * width + x)
        while y != dy:
            y += 1 if dy > y else -1
            nodes.append(y * width + x)
        for u, v in zip(nodes, nodes[1:]):
            if not self.topo.has_link(u, v):
                raise ValueError(
                    f"XY route {src}->{dst} needs missing link {u}-{v}; "
                    "XY routing requires a full 2D mesh"
                )
        path = tuple(nodes)
        self._path_cache[key] = path
        return path
