"""Interconnect links.

Each directed link has a base traversal latency (cycles) and a bandwidth
(bytes per cycle).  Messages are split into chunks (paper: the size of
message chunks and the time to process them are tunable); a link is
occupied for the serialization time of the whole message, which is how
contention on individual links is modelled (the paper contrasts SiMany
with BigSim precisely on per-link contention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Paper defaults for the distributed-memory architecture type.
DEFAULT_LATENCY = 1.0  # cycles per link traversal
DEFAULT_BANDWIDTH = 128.0  # bytes per cycle
DEFAULT_CHUNK_BYTES = 64


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a link: latency in cycles, bandwidth in B/cycle."""

    latency: float = DEFAULT_LATENCY
    bandwidth: float = DEFAULT_BANDWIDTH

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")


@dataclass(slots=True)
class Link:
    """Run-time state of one directed link.

    ``busy_until`` is the virtual time at which the link finishes serializing
    the last message routed through it; messages arriving earlier queue up,
    accumulating ``contention_cycles``.
    """

    spec: LinkSpec
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    busy_until: float = 0.0
    messages: int = field(default=0)
    bytes_carried: float = field(default=0.0)
    contention_cycles: float = field(default=0.0)
    #: Serialization times by message size: the protocol uses a handful
    #: of fixed sizes, so every traversal after the first is a dict hit.
    _ser_cache: dict = field(default_factory=dict, repr=False)

    def serialization_time(self, size_bytes: float) -> float:
        """Cycles to push ``size_bytes`` through this link, chunk-quantized."""
        cached = self._ser_cache.get(size_bytes)
        if cached is not None:
            return cached
        if size_bytes < 0:
            raise ValueError("message size must be non-negative")
        if size_bytes == 0:
            result = 0.0
        else:
            chunks = max(1, math.ceil(size_bytes / self.chunk_bytes))
            result = chunks * (self.chunk_bytes / self.spec.bandwidth)
        self._ser_cache[size_bytes] = result
        return result

    def traverse(self, ready_time: float, size_bytes: float) -> float:
        """Route a message through the link; return its head-arrival time.

        ``ready_time`` is the virtual time at which the message head reaches
        the link's input.  Contention delays the message until the link is
        free; the link then stays busy for the serialization time.
        """
        busy = self.busy_until
        if ready_time >= busy:
            start = ready_time
        else:
            start = busy
            self.contention_cycles += start - ready_time
        serialization = self.serialization_time(size_bytes)
        self.busy_until = start + serialization
        self.messages += 1
        self.bytes_carried += size_bytes
        return start + self.spec.latency + serialization

    def reset(self) -> None:
        """Clear run-time state (between simulations)."""
        self.busy_until = 0.0
        self.messages = 0
        self.bytes_carried = 0.0
        self.contention_cycles = 0.0
