"""Network-on-chip timing model.

The NoC computes, for every message, its virtual arrival time at the
destination: the departure time plus the sum of link latencies and router
penalties along the route, the serialization time of the message's chunks,
and any contention delay on individual links (each directed link tracks
its own busy window).

It also enforces the ordering guarantee of Section II-B: a core receives
all messages coming from another given core in the order the latter sent
them; only messages from *different* sources may be processed out of order.
This is realized by never letting the arrival time of a (src, dst) pair
regress below the previous message's arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .link import DEFAULT_CHUNK_BYTES, Link
from .routing import RoutingTable
from .topology import Topology


@dataclass(slots=True)
class NocStats:
    """Aggregate NoC counters for one simulation."""

    messages: int = 0
    total_bytes: float = 0.0
    total_hops: int = 0
    contention_cycles: float = 0.0
    fifo_adjustments: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for report tables."""
        return {
            "messages": self.messages,
            "total_bytes": self.total_bytes,
            "total_hops": self.total_hops,
            "contention_cycles": self.contention_cycles,
            "fifo_adjustments": self.fifo_adjustments,
        }


class Noc:
    """Message timing over a topology.

    Parameters mirror the paper's tunables: per-link latency/bandwidth live
    in the topology's ``LinkSpec``s; ``router_penalty`` is the per-hop
    routing cost; ``chunk_bytes`` the message chunk size; ``model_contention``
    toggles per-link busy tracking (the optimistic shared-memory architecture
    type ignores interconnect contention entirely and does not use a Noc).
    """

    def __init__(
        self,
        topo: Topology,
        router_penalty: float = 1.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        model_contention: bool = True,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        if router_penalty < 0:
            raise ValueError("router penalty must be non-negative")
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        self.topo = topo
        self.routing = routing or RoutingTable(topo)
        self.router_penalty = router_penalty
        self.chunk_bytes = chunk_bytes
        self.model_contention = model_contention
        self._links: Dict[Tuple[int, int], Link] = {}
        self._fifo_floor: Dict[Tuple[int, int], float] = {}
        # Per-(src, dst) route memo: the path is static, so the link
        # objects, hop count and (in the uncontended model) the base
        # latency and serialization link are resolved once per pair
        # instead of per message.
        self._route_cache: Dict[Tuple[int, int], tuple] = {}
        self._min_latency_cache: Dict[Tuple[int, int], float] = {}
        self.stats = NocStats()

    def _link(self, u: int, v: int) -> Link:
        key = (u, v)
        link = self._links.get(key)
        if link is None:
            link = Link(self.topo.link_spec(u, v), chunk_bytes=self.chunk_bytes)
            self._links[key] = link
        return link

    # ------------------------------------------------------------------
    def _route(self, src: int, dst: int) -> tuple:
        """Resolve (links, hops, base_latency, serialization_link) once
        per (src, dst) pair; the route is static for a simulation."""
        path = self.routing.path(src, dst)
        links = tuple(self._link(u, v) for u, v in zip(path, path[1:]))
        hops = len(path) - 1
        entry = (links, hops, self.routing.path_latency(src, dst), links[0])
        self._route_cache[(src, dst)] = entry
        return entry

    def delivery_time(self, src: int, dst: int, size_bytes: float, depart: float) -> float:
        """Compute (and commit) the arrival time of one message.

        Returns the virtual time at which the destination may start
        processing the message.  Local messages (src == dst) cost nothing:
        they never touch the interconnect.
        """
        if size_bytes < 0:
            raise ValueError("message size must be non-negative")
        if src == dst:
            return depart
        key = (src, dst)
        entry = self._route_cache.get(key)
        if entry is None:
            entry = self._route(src, dst)
        links, hops, path_latency, first_link = entry
        stats = self.stats
        if self.model_contention:
            t = depart
            penalty = self.router_penalty
            for link in links:
                before = link.contention_cycles
                t = link.traverse(t, size_bytes) + penalty
                stats.contention_cycles += link.contention_cycles - before
        else:
            # Latency + one serialization (pipelined/wormhole) + hop penalties.
            t = depart + path_latency
            t += first_link.serialization_time(size_bytes) + self.router_penalty * hops

        stats.messages += 1
        stats.total_bytes += size_bytes
        stats.total_hops += hops

        # Per-source FIFO: arrival times of a (src, dst) stream never regress.
        floor = self._fifo_floor.get(key, 0.0)
        if t < floor:
            t = floor
            stats.fifo_adjustments += 1
        self._fifo_floor[key] = t
        return t

    def min_latency(self, src: int, dst: int) -> float:
        """Uncontended, zero-size message latency between two cores."""
        if src == dst:
            return 0.0
        key = (src, dst)
        cached = self._min_latency_cache.get(key)
        if cached is None:
            hops = self.routing.hop_count(src, dst)
            cached = (self.routing.path_latency(src, dst)
                      + self.router_penalty * hops)
            self._min_latency_cache[key] = cached
        return cached

    def reset(self) -> None:
        """Clear all run-time state (links, FIFO floors, stats)."""
        for link in self._links.values():
            link.reset()
        self._fifo_floor.clear()
        self.stats = NocStats()

    def link_utilization(self) -> Dict[Tuple[int, int], float]:
        """Bytes carried per directed link (for hotspot analysis)."""
        return {k: link.bytes_carried for k, link in self._links.items()}

    def hotspots(self, k: int = 5) -> list:
        """The ``k`` busiest directed links: (src, dst, bytes, contention).

        Routing-induced hotspots are the classic many-core design hazard;
        this is the view an architect checks after changing a topology.
        """
        ranked = sorted(
            self._links.items(),
            key=lambda item: item[1].bytes_carried,
            reverse=True,
        )
        return [
            (u, v, link.bytes_carried, link.contention_cycles)
            for (u, v), link in ranked[:k]
        ]
