"""Interconnect topologies.

The paper specifies network topology "in a configuration file as an adjacency
matrix that gives the connections between the cores", with independently
tunable per-link latency and bandwidth, allowing arbitrary organizations such
as clustered or hierarchical ones.  This module provides that general
adjacency representation plus constructors for the families used in the
evaluation: uniform 2D meshes (8, 64, 256 and 1024 cores) and clustered
meshes (4 or 8 clusters; inter-cluster links 4 cycles, intra-cluster links
half a cycle).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, LinkSpec

Edge = Tuple[int, int]


class Topology:
    """An undirected interconnect graph over cores ``0 .. n_cores-1``.

    Every undirected edge materializes as two directed links with identical
    specs (but independent contention state at the NoC level).
    """

    def __init__(self, n_cores: int, name: str = "custom") -> None:
        if n_cores <= 0:
            raise ValueError("topology needs at least one core")
        self.n_cores = n_cores
        self.name = name
        self._adj: List[Dict[int, LinkSpec]] = [dict() for _ in range(n_cores)]
        self._n_edges = 0

    # -- construction -------------------------------------------------------
    def add_link(self, u: int, v: int, spec: Optional[LinkSpec] = None) -> None:
        """Add an undirected link between cores ``u`` and ``v``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError("self-links are not allowed")
        spec = spec or LinkSpec()
        if v not in self._adj[u]:
            self._n_edges += 1
        self._adj[u][v] = spec
        self._adj[v][u] = spec

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n_cores:
            raise ValueError(f"core id {u} out of range [0, {self.n_cores})")

    # -- queries -------------------------------------------------------------
    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Cores directly connected to ``u`` (the spatial-sync neighbourhood)."""
        self._check_node(u)
        return tuple(self._adj[u].keys())

    def link_spec(self, u: int, v: int) -> LinkSpec:
        """Spec of the (undirected) link between two adjacent cores."""
        self._check_node(u)
        spec = self._adj[u].get(v)
        if spec is None:
            raise KeyError(f"no link between {u} and {v}")
        return spec

    def has_link(self, u: int, v: int) -> bool:
        """Whether cores u and v are directly connected."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[Tuple[int, int, LinkSpec]]:
        """Iterate undirected edges once (u < v)."""
        for u in range(self.n_cores):
            for v, spec in self._adj[u].items():
                if u < v:
                    yield u, v, spec

    def directed_edges(self) -> Iterator[Tuple[int, int, LinkSpec]]:
        """Iterate both directions of every edge."""
        for u in range(self.n_cores):
            for v, spec in self._adj[u].items():
                yield u, v, spec

    @property
    def n_edges(self) -> int:
        """Number of undirected links."""
        return self._n_edges

    def degree(self, u: int) -> int:
        """Number of neighbours of core u."""
        return len(self._adj[u])

    # -- graph algorithms -----------------------------------------------------
    def bfs_distances(self, src: int) -> np.ndarray:
        """Hop distances from ``src`` (-1 for unreachable cores)."""
        self._check_node(src)
        dist = np.full(self.n_cores, -1, dtype=np.int64)
        dist[src] = 0
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def is_connected(self) -> bool:
        """True when every core can reach every other core."""
        return bool((self.bfs_distances(0) >= 0).all())

    def diameter(self) -> int:
        """Largest topological distance between two cores (hop count).

        The spatial-sync global drift bound is ``diameter * T`` (paper,
        Section II-A).  Raises on disconnected topologies.
        """
        worst = 0
        for src in range(self.n_cores):
            dist = self.bfs_distances(src)
            if (dist < 0).any():
                raise ValueError("diameter undefined: topology is disconnected")
            worst = max(worst, int(dist.max()))
        return worst

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean adjacency matrix (the paper's configuration format)."""
        mat = np.zeros((self.n_cores, self.n_cores), dtype=bool)
        for u, v, _ in self.directed_edges():
            mat[u, v] = True
        return mat

    def latency_matrix(self) -> np.ndarray:
        """Per-link latency matrix (inf where no link)."""
        mat = np.full((self.n_cores, self.n_cores), np.inf)
        np.fill_diagonal(mat, 0.0)
        for u, v, spec in self.directed_edges():
            mat[u, v] = spec.latency
        return mat


# -- constructors -------------------------------------------------------------

def mesh2d(
    width: int,
    height: Optional[int] = None,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """A ``width x height`` 2D mesh (the paper's regular topology)."""
    height = width if height is None else height
    if width <= 0 or height <= 0:
        raise ValueError("mesh dimensions must be positive")
    topo = Topology(width * height, name=f"mesh{width}x{height}")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)

    def node(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                topo.add_link(node(x, y), node(x + 1, y), spec)
            if y + 1 < height:
                topo.add_link(node(x, y), node(x, y + 1), spec)
    return topo


def square_mesh(n_cores: int, **kwargs) -> Topology:
    """The paper's uniform meshes: 8, 64, 256, 1024 cores.

    Non-square counts (like 8) become the most-square 2D factorization
    (8 -> 4x2).
    """
    side = int(math.isqrt(n_cores))
    while side > 1 and n_cores % side:
        side -= 1
    width = n_cores // side
    return mesh2d(width, side, **kwargs)


def ring(
    n_cores: int,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """A bidirectional ring."""
    topo = Topology(n_cores, name=f"ring{n_cores}")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)
    if n_cores == 1:
        return topo
    for u in range(n_cores):
        topo.add_link(u, (u + 1) % n_cores, spec)
    return topo


def torus2d(
    width: int,
    height: Optional[int] = None,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """A 2D torus (mesh with wraparound links)."""
    height = width if height is None else height
    if width < 3 or height < 3:
        # Smaller tori degenerate into multi-edges; use a mesh instead.
        return mesh2d(width, height, latency=latency, bandwidth=bandwidth)
    topo = Topology(width * height, name=f"torus{width}x{height}")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)

    def node(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            topo.add_link(node(x, y), node((x + 1) % width, y), spec)
            topo.add_link(node(x, y), node(x, (y + 1) % height), spec)
    return topo


def crossbar(
    n_cores: int,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """A fully connected interconnect (every pair one hop apart)."""
    topo = Topology(n_cores, name=f"crossbar{n_cores}")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth)
    for u in range(n_cores):
        for v in range(u + 1, n_cores):
            topo.add_link(u, v, spec)
    return topo


def clustered_mesh(
    n_cores: int,
    n_clusters: int,
    intra_latency: float = 0.5,
    inter_latency: float = 4.0,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """The paper's clustered architecture.

    Cores are split into ``n_clusters`` equal clusters, each an internal 2D
    mesh with fast links (half a cycle).  Adjacent clusters are joined by
    slow links (4x the base latency, i.e. 4 cycles) between border cores,
    with the clusters themselves arranged in a 2D mesh.
    """
    if n_clusters <= 0 or n_cores % n_clusters:
        raise ValueError("n_cores must be a positive multiple of n_clusters")
    per = n_cores // n_clusters
    topo = Topology(n_cores, name=f"clustered{n_cores}c{n_clusters}")
    intra = LinkSpec(latency=intra_latency, bandwidth=bandwidth)
    inter = LinkSpec(latency=inter_latency, bandwidth=bandwidth)

    # Internal meshes.
    side = int(math.isqrt(per))
    while side > 1 and per % side:
        side -= 1
    width, height = per // side, side

    def node(cluster: int, x: int, y: int) -> int:
        return cluster * per + y * width + x

    for c in range(n_clusters):
        for y in range(height):
            for x in range(width):
                if x + 1 < width:
                    topo.add_link(node(c, x, y), node(c, x + 1, y), intra)
                if y + 1 < height:
                    topo.add_link(node(c, x, y), node(c, x, y + 1), intra)

    # Cluster-level mesh, one inter link between border cores of neighbours.
    cside = int(math.isqrt(n_clusters))
    while cside > 1 and n_clusters % cside:
        cside -= 1
    cwidth = n_clusters // cside

    def cluster_id(cx: int, cy: int) -> int:
        return cy * cwidth + cx

    for cy in range(n_clusters // cwidth):
        for cx in range(cwidth):
            c = cluster_id(cx, cy)
            if cx + 1 < cwidth:
                right = cluster_id(cx + 1, cy)
                topo.add_link(
                    node(c, width - 1, height // 2),
                    node(right, 0, height // 2),
                    inter,
                )
            if cy + 1 < n_clusters // cwidth:
                below = cluster_id(cx, cy + 1)
                topo.add_link(
                    node(c, width // 2, height - 1),
                    node(below, width // 2, 0),
                    inter,
                )
    return topo


def hierarchical_mesh(
    n_cores: int,
    levels: int = 2,
    branching: int = 4,
    base_latency: float = 0.5,
    level_latency_factor: float = 4.0,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> Topology:
    """A hierarchical interconnect (clusters of clusters).

    The paper lists hierarchical organizations among the arbitrary
    networks SiMany handles.  Cores are grouped into clusters of
    ``branching`` members joined by fast local links; cluster heads are
    recursively grouped the same way, each level's links
    ``level_latency_factor`` times slower than the previous one.
    """
    if levels < 1 or branching < 2:
        raise ValueError("need levels >= 1 and branching >= 2")
    if n_cores < branching:
        raise ValueError("need at least one full bottom-level cluster")
    topo = Topology(n_cores, name=f"hier{n_cores}l{levels}")

    # Level 0: ring-connected clusters of `branching` cores.
    members = list(range(n_cores))
    latency = base_latency
    for level in range(levels):
        spec = LinkSpec(latency=latency, bandwidth=bandwidth)
        heads = []
        for start in range(0, len(members), branching):
            cluster = members[start:start + branching]
            for a, b in zip(cluster, cluster[1:]):
                topo.add_link(a, b, spec)
            if len(cluster) > 2:
                topo.add_link(cluster[-1], cluster[0], spec)
            heads.append(cluster[0])
        if len(heads) <= 1:
            members = heads
            break
        members = heads
        latency *= level_latency_factor
    # Join whatever heads remain at the top with the slowest links.
    if len(members) > 1:
        spec = LinkSpec(latency=latency, bandwidth=bandwidth)
        for a, b in zip(members, members[1:]):
            topo.add_link(a, b, spec)
        if len(members) > 2:
            topo.add_link(members[-1], members[0], spec)
    return topo


def from_adjacency(
    matrix: Sequence[Sequence[float]],
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
    name: str = "adjacency",
) -> Topology:
    """Build a topology from an adjacency matrix (the paper's config format).

    Nonzero entries denote links; entries other than 1 are taken as per-link
    latencies, so a matrix can carry heterogeneous link speeds directly.
    """
    mat = np.asarray(matrix, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("adjacency matrix must be square")
    if not np.allclose(mat, mat.T):
        raise ValueError("adjacency matrix must be symmetric (undirected links)")
    n = mat.shape[0]
    topo = Topology(n, name=name)
    for u in range(n):
        for v in range(u + 1, n):
            w = mat[u, v]
            if w:
                lat = latency if w == 1 else float(w)
                topo.add_link(u, v, LinkSpec(latency=lat, bandwidth=bandwidth))
    return topo


def to_networkx(topo: Topology):
    """Export to a ``networkx.Graph`` (latency as edge weight)."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(topo.n_cores))
    for u, v, spec in topo.edges():
        graph.add_edge(u, v, weight=spec.latency, bandwidth=spec.bandwidth)
    return graph
