"""Interconnect substrate: topologies, links, routing, NoC timing."""

from .link import (
    DEFAULT_BANDWIDTH,
    DEFAULT_CHUNK_BYTES,
    DEFAULT_LATENCY,
    Link,
    LinkSpec,
)
from .noc import Noc, NocStats
from .routing import RoutingTable, XYRouting
from .topology import (
    Topology,
    clustered_mesh,
    crossbar,
    from_adjacency,
    hierarchical_mesh,
    mesh2d,
    ring,
    square_mesh,
    to_networkx,
    torus2d,
)

__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_LATENCY",
    "Link",
    "LinkSpec",
    "Noc",
    "NocStats",
    "RoutingTable",
    "Topology",
    "XYRouting",
    "clustered_mesh",
    "crossbar",
    "from_adjacency",
    "hierarchical_mesh",
    "mesh2d",
    "ring",
    "square_mesh",
    "to_networkx",
    "torus2d",
]
