"""ASCII line charts for figure regeneration.

The paper's evaluation figures are log-log speedup plots; the benchmark
harness renders the measured series as text charts so the regenerated
"figures" are actual figures, viewable in a terminal and diffable in CI.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

#: Plot glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _log_positions(values: Sequence[float], lo: float, hi: float,
                   cells: int) -> List[int]:
    """Map values onto [0, cells-1] on a log scale."""
    if lo <= 0:
        raise ValueError("log-scale axis needs positive bounds")
    span = math.log(hi / lo) if hi > lo else 1.0
    out = []
    for value in values:
        if value <= 0:
            out.append(0)
            continue
        frac = math.log(value / lo) / span if span else 0.0
        out.append(max(0, min(cells - 1, round(frac * (cells - 1)))))
    return out


def render_loglog(
    curves: Mapping[str, Mapping[int, float]],
    title: str = "",
    width: int = 64,
    height: int = 18,
    y_label: str = "speedup",
    x_label: str = "cores",
) -> str:
    """Render a family of curves as a log-log ASCII chart.

    ``curves`` maps series name -> {x: y}.  All finite positive points are
    plotted; the legend maps glyphs to series names.
    """
    points = [
        (x, y)
        for series in curves.values()
        for x, y in series.items()
        if y > 0 and math.isfinite(y)
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_hi = y_lo * 2
    if x_lo == x_hi:
        x_hi = x_lo * 2

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, series) in enumerate(sorted(curves.items())):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"  {glyph} {name}")
        pts = [(x, y) for x, y in sorted(series.items())
               if y > 0 and math.isfinite(y)]
        if not pts:
            continue
        cols = _log_positions([p[0] for p in pts], x_lo, x_hi, width)
        rows = _log_positions([p[1] for p in pts], y_lo, y_hi, height)
        prev = None
        for col, row in zip(cols, rows):
            r = height - 1 - row
            grid[r][col] = glyph
            # Sparse vertical interpolation so curves read as lines.
            if prev is not None:
                pc, pr = prev
                if abs(col - pc) >= 1:
                    mid_col = (col + pc) // 2
                    mid_row = height - 1 - (row + (height - 1 - pr)) // 2
                    mid_row = max(0, min(height - 1, (r + pr) // 2))
                    if grid[mid_row][mid_col] == " ":
                        grid[mid_row][mid_col] = "."
            prev = (col, r)

    lines = []
    if title:
        lines.append(title)
    top_label = _fmt_axis(y_hi)
    bottom_label = _fmt_axis(y_lo)
    pad = max(len(top_label), len(bottom_label), len(y_label) + 1)
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{_fmt_axis(x_lo)}{' ' * max(1, width - len(_fmt_axis(x_lo)) - len(_fmt_axis(x_hi)))}{_fmt_axis(x_hi)}"
    lines.append(" " * pad + "  " + x_axis + f"  ({x_label}, log)")
    lines.extend(legend)
    return "\n".join(lines)


def _fmt_axis(value: float) -> str:
    if value >= 1000 or (0 < value < 0.01):
        return f"{value:.1e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2g}"


def _lin_positions(values: Sequence[float], lo: float, hi: float,
                   cells: int) -> List[int]:
    """Map values onto [0, cells-1] on a linear scale."""
    span = hi - lo
    out = []
    for value in values:
        frac = (value - lo) / span if span else 0.5
        out.append(max(0, min(cells - 1, round(frac * (cells - 1)))))
    return out


def render_scatter(
    series: Mapping[str, Sequence[Sequence[float]]],
    title: str = "",
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render point clouds as a linear-scale ASCII scatter plot.

    ``series`` maps series name -> list of (x, y) points; series are
    drawn in sorted-name order, so a later-sorting series (e.g. a Pareto
    frontier over its cell cloud) overwrites glyphs where they collide.
    The legend maps glyphs to series names.
    """
    points = [
        (float(x), float(y))
        for pts in series.values()
        for x, y in pts
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return f"{title}\n(no data)"
    x_lo, x_hi = min(p[0] for p in points), max(p[0] for p in points)
    y_lo, y_hi = min(p[1] for p in points), max(p[1] for p in points)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(sorted(series.items())):
        glyph = GLYPHS[idx % len(GLYPHS)]
        legend.append(f"  {glyph} {name} ({len(pts)})")
        finite = [(float(x), float(y)) for x, y in pts
                  if math.isfinite(x) and math.isfinite(y)]
        if not finite:
            continue
        cols = _lin_positions([p[0] for p in finite], x_lo, x_hi, width)
        rows = _lin_positions([p[1] for p in finite], y_lo, y_hi, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = _fmt_axis(y_hi)
    bottom_label = _fmt_axis(y_lo)
    pad = max(len(top_label), len(bottom_label), len(y_label) + 1)
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lo_s, hi_s = _fmt_axis(x_lo), _fmt_axis(x_hi)
    gap = " " * max(1, width - len(lo_s) - len(hi_s))
    lines.append(" " * pad + "  " + lo_s + gap + hi_s + f"  ({x_label})")
    lines.extend(legend)
    return "\n".join(lines)


def render_histogram(bounds: Sequence[float], counts: Sequence[int],
                     title: Optional[str] = None, width: int = 40) -> str:
    """Render a bucketed histogram as horizontal ASCII bars.

    ``bounds``/``counts`` follow the :class:`repro.obs.Histogram` layout:
    bucket *i* counts observations ``<= bounds[i]`` and the final bucket
    is overflow.  Zero-count buckets still get a row so the bucket
    layout stays visible and diffable.
    """
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} counts for {len(bounds)} bounds, "
            f"got {len(counts)}")
    labels = [f"<= {_fmt_axis(b)}" for b in bounds]
    labels.append(f" > {_fmt_axis(bounds[-1])}" if bounds else "(all)")
    pad = max(len(lab) for lab in labels)
    peak = max(counts) if counts else 0
    lines = [] if title is None else [title]
    for label, count in zip(labels, counts):
        bar = "#" * (round(count / peak * width) if peak else 0)
        if count and not bar:
            bar = "."  # nonzero but below one cell: keep it visible
        lines.append(f"{label:>{pad}} |{bar:<{width}} {count}")
    return "\n".join(lines)
