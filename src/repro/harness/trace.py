"""Execution tracing.

A :class:`Tracer` attaches to a machine before ``run()`` and records, in
virtual time:

* per-core task execution spans (which task ran when, on which core);
* drift-stall events;
* message events (kind, source, destination, send/arrival times).

Traces render as text Gantt charts (one lane per core) and export as lists
of dicts for external analysis.  Tracing hooks the engine's task lifecycle
non-invasively (method wrapping), so it costs nothing when not attached.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.messages import Message


@dataclass
class Span:
    """One task execution interval on a core."""

    core: int
    task: str
    start: float
    end: float

    def as_dict(self) -> Dict[str, Any]:
        return {"core": self.core, "task": self.task,
                "start": self.start, "end": self.end}


@dataclass
class MsgEvent:
    """One architectural message."""

    kind: str
    src: int
    dst: int
    send_time: float
    arrival: float

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "src": self.src, "dst": self.dst,
                "send_time": self.send_time, "arrival": self.arrival}


class Tracer:
    """Records task spans, stalls and messages from one machine run.

    Attach *before* running; the tracer wraps the machine's scheduling
    hooks, so everything that executes afterwards is captured.  Query
    the raw records (``spans``, ``stalls``, ``messages``), compute
    ``core_utilization()``, dump ``export()`` for external tooling, or
    draw ``render_gantt()``.

    Example::

        from repro.arch import build_machine, shared_mesh
        from repro.harness.trace import Tracer

        machine = build_machine(shared_mesh(16))
        tracer = Tracer(machine)
        machine.run(my_root_fn)
        print(len(tracer.spans), "task spans")
        print(tracer.render_gantt(width=60))
    """

    def __init__(self, machine, trace_messages: bool = True) -> None:
        self.machine = machine
        self.spans: List[Span] = []
        self.stalls: List[Dict[str, float]] = []
        self.messages: List[MsgEvent] = []
        self._open: Dict[int, tuple] = {}  # core -> (task name, start)
        self._install(trace_messages)

    # -- hook installation ---------------------------------------------------
    def _install(self, trace_messages: bool) -> None:
        machine = self.machine
        fabric = machine.fabric

        original_start = machine._start_or_resume

        def start_or_resume(core, task):
            original_start(core, task)
            name = getattr(task.fn, "__name__", "task") + f"#{task.tid}"
            self._open[core.cid] = (name, fabric.vtime[core.cid])

        machine._start_or_resume = start_or_resume

        original_finish = machine._finish_task

        def finish_task(core, task):
            self._close_span(core.cid, fabric.vtime[core.cid])
            original_finish(core, task)

        machine._finish_task = finish_task

        original_suspend = machine.suspend_current

        def suspend_current(core, reason):
            self._close_span(core.cid, fabric.vtime[core.cid])
            return original_suspend(core, reason)

        machine.suspend_current = suspend_current

        original_stall = machine._mark_stalled

        def mark_stalled(core):
            was_stalled = core.stalled
            original_stall(core)
            if not was_stalled and fabric.active[core.cid]:
                self.stalls.append({
                    "core": core.cid,
                    "vtime": fabric.vtime[core.cid],
                    "floor": fabric.floor(core.cid),
                })

        machine._mark_stalled = mark_stalled

        if trace_messages:
            original_process = machine._process_message

            def process_message(core, msg: Message):
                self.messages.append(MsgEvent(
                    msg.kind.value, msg.src, msg.dst,
                    msg.send_time, msg.arrival,
                ))
                original_process(core, msg)

            machine._process_message = process_message

    def _close_span(self, cid: int, end: float) -> None:
        entry = self._open.pop(cid, None)
        if entry is None:
            return
        name, start = entry
        self.spans.append(Span(cid, name, start, end))

    def _effective_spans(self) -> List[Span]:
        """Closed spans plus still-open ones flushed at the cores' clocks.

        A task that is still executing when the run ends (or when the
        engine stops at a vtime horizon) never reaches ``_finish_task``,
        so its span sits in ``_open``.  Synthesize a closing edge at the
        core's current virtual time without mutating tracer state, so
        repeated queries and a later resumed run both stay correct.
        """
        if not self._open:
            return self.spans
        vtime = self.machine.fabric.vtime
        spans = list(self.spans)
        for cid, (name, start) in self._open.items():
            spans.append(Span(cid, name, start, max(start, vtime[cid])))
        return spans

    # -- queries -----------------------------------------------------------
    def core_utilization(self) -> Dict[int, float]:
        """Fraction of the run each core spent executing tasks.

        Spans on one core may overlap in virtual time across idle periods
        (an idle core loses its clock and may restart it in the past —
        paper, Section II), so busy time is the measure of the interval
        *union*, keeping utilization within [0, 1].
        """
        spans = self._effective_spans()
        horizon = max((s.end for s in spans), default=0.0)
        if horizon <= 0:
            return {c.cid: 0.0 for c in self.machine.cores}
        by_core: Dict[int, List[tuple]] = {
            c.cid: [] for c in self.machine.cores
        }
        for span in spans:
            by_core[span.core].append((span.start, span.end))
        util: Dict[int, float] = {}
        for cid, intervals in by_core.items():
            intervals.sort()
            busy = 0.0
            cursor = -1.0
            for start, end in intervals:
                start = max(start, cursor)
                if end > start:
                    busy += end - start
                    cursor = end
            util[cid] = min(1.0, busy / horizon)
        return util

    def export(self) -> Dict[str, List[Dict[str, Any]]]:
        """Structured trace for external tooling (open spans included)."""
        return {
            "spans": [s.as_dict() for s in self._effective_spans()],
            "stalls": list(self.stalls),
            "messages": [m.as_dict() for m in self.messages],
        }

    def to_chrome(self, **kwargs) -> Dict[str, Any]:
        """Export as a Chrome ``trace_event`` document (Perfetto-loadable).

        Convenience wrapper over
        :func:`repro.obs.chrome_trace.build_chrome_trace`; keyword
        arguments (``host_rounds``, ``coord_events``,
        ``include_messages``) pass straight through.
        """
        from ..obs.chrome_trace import build_chrome_trace

        return build_chrome_trace(trace=self.export(), **kwargs)

    # -- rendering ---------------------------------------------------------
    def render_gantt(self, width: int = 72,
                     cores: Optional[List[int]] = None) -> str:
        """Text Gantt chart: one lane per core, '#' = executing a task,
        '.' = idle/waiting."""
        if not self.spans:
            return "(no spans recorded)"
        horizon = max(s.end for s in self.spans)
        if horizon <= 0:
            return "(empty trace)"
        if cores is None:
            cores = sorted({s.core for s in self.spans})
        lanes = []
        for cid in cores:
            lane = ["."] * width
            for span in self.spans:
                if span.core != cid:
                    continue
                lo = int(span.start / horizon * (width - 1))
                hi = max(lo, int(span.end / horizon * (width - 1)))
                for i in range(lo, hi + 1):
                    lane[i] = "#"
            lanes.append((cid, "".join(lane)))
        label_width = max(len(f"core {cid}") for cid, _ in lanes)
        lines = [f"virtual time 0 .. {horizon:.0f} cycles"]
        for cid, lane in lanes:
            lines.append(f"{f'core {cid}':>{label_width}} |{lane}|")
        return "\n".join(lines)


# -- canonical form ---------------------------------------------------------

def _canonical_task(name: str) -> str:
    """Strip the per-process task id suffix (``fn#17`` -> ``fn``).

    Task ids are allocated in scheduling order, which differs between the
    serial engine and sharded workers (each worker numbers its own tasks),
    so they must not enter the canonical form.
    """
    base, sep, tid = name.rpartition("#")
    if sep and tid.isdigit():
        return base
    return name


def canonical_events(trace: Dict[str, List[Dict[str, Any]]],
                     include: Iterable[str] = ("spans", "messages"),
                     ) -> List[Tuple]:
    """Deterministic, backend-independent event tuples for a trace.

    Takes an ``export()`` dict (or the concatenation of several — the
    sharded backend ships one per worker) and returns sorted tuples.
    Floats are rendered with ``float.hex()`` so the comparison is
    bit-exact, never formatting-dependent.  ``stalls`` are excluded by
    default: stall *scheduling* is a backend decision (the sharded
    coordinator replaces fine-grained stalls with round horizons), so
    only spans and messages are part of the conformance contract.
    """
    events: List[Tuple] = []
    if "spans" in include:
        for s in trace.get("spans", ()):
            events.append(("span", s["core"], _canonical_task(s["task"]),
                           float(s["start"]).hex(), float(s["end"]).hex()))
    if "messages" in include:
        for m in trace.get("messages", ()):
            events.append(("msg", m["kind"], m["src"], m["dst"],
                           float(m["send_time"]).hex(),
                           float(m["arrival"]).hex()))
    if "stalls" in include:
        for st in trace.get("stalls", ()):
            events.append(("stall", st["core"],
                           float(st["vtime"]).hex(),
                           float(st["floor"]).hex()))
    events.sort()
    return events


def merge_traces(traces: Iterable[Dict[str, List[Dict[str, Any]]]],
                 ) -> Dict[str, List[Dict[str, Any]]]:
    """Concatenate per-worker ``export()`` dicts into one trace dict."""
    merged: Dict[str, List[Dict[str, Any]]] = {
        "spans": [], "stalls": [], "messages": [],
    }
    for trace in traces:
        for key in merged:
            merged[key].extend(trace.get(key, ()))
    return merged


def trace_digest(trace: Dict[str, List[Dict[str, Any]]],
                 include: Iterable[str] = ("spans", "messages")) -> str:
    """Stable sha256 over the canonical event tuples of a trace.

    Two runs of the same workload are conformant iff their digests match;
    use it to compare serial vs sharded executions (or any two backends)
    without maintaining golden numbers per workload.
    """
    h = hashlib.sha256()
    for event in canonical_events(trace, include=include):
        h.update(repr(event).encode())
        h.update(b"\n")
    return h.hexdigest()
