"""Evaluation metrics (paper, Section VI).

* *virtual-time speedup*: completion virtual time on one core divided by
  completion virtual time on N cores, averaged over datasets;
* *error vs the cycle-level referee*: relative speedup error per benchmark,
  aggregated as a geometric mean (the paper reports 8.8 % at 16 cores,
  18.8 % at 32, 22.9 % at 64 for uniform meshes);
* *normalized simulation time*: simulator wall-clock divided by native
  execution wall-clock of the same computation (Fig. 7), with a power-law
  regression of simulation time against the simulated core count.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


def speedup_curve(vtimes: Mapping[int, float]) -> Dict[int, float]:
    """Speedups from a {n_cores: virtual completion time} map.

    The 1-core entry is the baseline and must be present.
    """
    if 1 not in vtimes:
        raise ValueError("speedup needs the 1-core baseline")
    base = vtimes[1]
    if base <= 0:
        raise ValueError("baseline virtual time must be positive")
    return {n: base / vt for n, vt in sorted(vtimes.items())}


def mean_speedup_curves(curves: Sequence[Mapping[int, float]]) -> Dict[int, float]:
    """Average speedup curves over datasets (arithmetic mean per size)."""
    if not curves:
        raise ValueError("no curves to average")
    sizes = set(curves[0])
    for curve in curves[1:]:
        if set(curve) != sizes:
            raise ValueError("curves cover different core counts")
    return {n: float(np.mean([c[n] for c in curves])) for n in sorted(sizes)}


def speedup_distribution(
    curves: Sequence[Mapping[int, float]]
) -> Dict[int, Dict[str, float]]:
    """Per-size distribution of speedups over datasets.

    The paper averages 50 datasets per benchmark; this reports, for each
    core count, the mean, standard deviation, min and max across the
    dataset curves, so exploration tables can carry error bars.
    """
    if not curves:
        raise ValueError("no curves")
    sizes = set(curves[0])
    for curve in curves[1:]:
        if set(curve) != sizes:
            raise ValueError("curves cover different core counts")
    out: Dict[int, Dict[str, float]] = {}
    for n in sorted(sizes):
        values = np.array([curve[n] for curve in curves], dtype=float)
        out[n] = {
            "mean": float(values.mean()),
            "std": float(values.std(ddof=1)) if len(values) > 1 else 0.0,
            "min": float(values.min()),
            "max": float(values.max()),
        }
    return out


def relative_error(value: float, reference: float) -> float:
    """|value - reference| / reference."""
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return abs(value - reference) / abs(reference)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; zero values are floored to a small epsilon."""
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ValueError("geometric mean of nothing")
    return float(np.exp(np.mean(np.log(vals))))


def geomean_error(
    vt_curves: Mapping[str, Mapping[int, float]],
    cl_curves: Mapping[str, Mapping[int, float]],
    n_cores: int,
    floor: float = 1e-3,
) -> float:
    """Geometric mean of per-benchmark speedup errors at one core count.

    Errors are floored at 0.1 % — an exact agreement would otherwise
    collapse the geometric mean to zero and hide every other benchmark.
    """
    errors = []
    for name, vt in vt_curves.items():
        cl = cl_curves[name]
        errors.append(max(relative_error(vt[n_cores], cl[n_cores]), floor))
    return geomean(errors)


def normalized_simulation_time(sim_wall: float, native_wall: float) -> float:
    """Simulation wall-clock normalized to native execution (Fig. 7)."""
    if native_wall <= 0:
        raise ValueError("native wall time must be positive")
    return sim_wall / native_wall


def power_law_fit(points: Mapping[int, float]) -> Tuple[float, float]:
    """Fit ``time = a * cores^b`` by log-log least squares; returns (a, b).

    The paper reports that average simulation time grows as a square law
    (b close to 2) with a small coefficient.
    """
    xs = np.array(sorted(points))
    ys = np.array([points[x] for x in xs], dtype=float)
    if len(xs) < 2:
        raise ValueError("need at least two points for a regression")
    if (ys <= 0).any() or (xs <= 0).any():
        raise ValueError("power-law fit needs positive data")
    slope, intercept = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(np.exp(intercept)), float(slope)


def amdahl_fit(curve: Mapping[int, float]) -> Tuple[float, float]:
    """Fit Amdahl's law to a speedup curve; returns (serial_fraction, rmse).

    ``speedup(n) = 1 / (s + (1 - s) / n)``.  The serial fraction ``s`` is
    the scalar summary of why a benchmark's curve flattens — Quicksort's
    first partition pass, for example, predicts ``s ≈ 2/log2(n)``.
    Super-linear curves (Dijkstra) produce ``s ≤ 0``-ish fits with large
    residuals, which is itself diagnostic.
    """
    points = [(n, sp) for n, sp in curve.items() if n >= 1 and sp > 0]
    if len(points) < 2:
        raise ValueError("need at least two points to fit Amdahl's law")

    def rmse_for(s: float) -> float:
        err = 0.0
        for n, sp in points:
            predicted = 1.0 / (s + (1.0 - s) / n)
            err += (predicted - sp) ** 2
        return math.sqrt(err / len(points))

    # 1-D golden-section-ish scan: s in [0, 1] is unimodal enough for this
    # diagnostic use; refine by bisection on a coarse grid winner.
    best_s = min((rmse_for(s / 1000.0), s / 1000.0) for s in range(0, 1001))
    s = best_s[1]
    step = 1e-3
    while step > 1e-7:
        candidates = [max(0.0, s - step), s, min(1.0, s + step)]
        s = min(candidates, key=rmse_for)
        step /= 2
    return s, rmse_for(s)


def percent_change(value: float, baseline: float) -> float:
    """Signed percent change vs a baseline (Fig. 10-11 tables)."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return 100.0 * (value - baseline) / baseline


def crossover_point(
    curve_a: Mapping[int, float], curve_b: Mapping[int, float]
) -> float:
    """Geometric interpolation of where curve_b overtakes curve_a.

    Used for the clustered-architecture turning point (paper: ~78 cores on
    average).  Returns +inf when b never overtakes a, 0 when it always is.
    """
    sizes = sorted(set(curve_a) & set(curve_b))
    if not sizes:
        raise ValueError("curves do not overlap")
    prev = None
    for n in sizes:
        diff = curve_b[n] - curve_a[n]
        if diff >= 0:
            if prev is None:
                return 0.0
            p_n, p_diff = prev
            if diff == p_diff:
                return float(n)
            # Interpolate in log2(core count) space.
            frac = -p_diff / (diff - p_diff)
            return float(2 ** (math.log2(p_n) + frac * (math.log2(n) - math.log2(p_n))))
        prev = (n, diff)
    return math.inf
