"""Hot-path microbenchmark suite (``python -m repro bench``).

The paper's headline claim is raw simulation speed, so the repo keeps a
machine-readable record of engine throughput in ``BENCH_engine.json`` at
the repository root.  The suite measures the individually-optimised layers
(engine step dispatch, compute fusion, messaging, virtual-time fabric) plus
one end-to-end dwarf per memory model on the Fig. 7 style 64-core machine.

Every benchmark reports:

* ``wall_s`` — best-of-``repeat`` host wall time;
* ``events`` — deterministic count of simulation events processed
  (actions, messages, fabric advances, ... depending on the benchmark);
* ``events_per_sec`` — the headline throughput number.

``benchmarks/perf/check_regression.py`` compares a fresh run against the
committed baseline and fails CI on a >25% events/sec regression.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..arch import build_machine, dist_mesh, numa_mesh, shared_mesh
from ..core.fabric import VirtualTimeFabric
from ..core.task import TaskGroup
from ..network.topology import square_mesh
from ..workloads import get_workload

#: File name of the committed benchmark record (repo root).
BENCH_FILE = "BENCH_engine.json"

#: Regression tolerance used by check_regression.py (fraction of baseline).
REGRESSION_TOLERANCE = 0.25


# -- workload generators for the micro benchmarks ------------------------

def _steps_root(n_actions: int):
    """Alternating compute/now actions: measures raw action dispatch.

    The ``now`` action between computes keeps the engine from fusing the
    run, so this benchmark tracks per-action overhead even after the
    compute-fusion optimisation.
    """

    def root(ctx):
        for _ in range(n_actions // 2):
            yield ctx.compute(cycles=1.0)
            yield ctx.now()
        return None

    return root


def _compute_root(n_actions: int):
    """A long run of pure compute actions: measures compute fusion."""

    def root(ctx):
        for _ in range(n_actions):
            yield ctx.compute(cycles=1.0)
        return None

    return root


def _pingpong_root(rounds: int, fanout: int):
    """Root exchanges tagged messages with ``fanout`` spawned partners."""

    def partner(ctx, root_core, k):
        yield ctx.send(root_core, tag="hello")
        for _ in range(k):
            yield ctx.recv(tag="ping")
            yield ctx.send(root_core, tag="pong")
        return None

    def root(ctx):
        group = TaskGroup()
        spawned = 0
        for _ in range(fanout):
            ok = yield ctx.try_spawn(partner, ctx.core_id, rounds, group=group)
            if ok:
                spawned += 1
        peers = []
        for _ in range(spawned):
            msg = yield ctx.recv(tag="hello")
            peers.append(msg.src)
        for _ in range(rounds):
            for p in peers:
                yield ctx.send(p, tag="ping")
            for _ in peers:
                yield ctx.recv(tag="pong")
        yield ctx.join(group)
        return None

    return root


# -- individual benchmarks ----------------------------------------------

def bench_engine_steps(n_actions: int = 40_000) -> Dict[str, float]:
    """Engine action dispatch throughput (steps/sec), fusion-proof."""
    machine = build_machine(shared_mesh(4))
    t0 = time.perf_counter()
    machine.run(_steps_root(n_actions))
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": machine.stats.actions}


def bench_compute_fusion(n_actions: int = 40_000) -> Dict[str, float]:
    """Pure-compute run throughput (benefits from compute fusion)."""
    machine = build_machine(shared_mesh(4))
    t0 = time.perf_counter()
    machine.run(_compute_root(n_actions))
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": machine.stats.actions}


def bench_messages(rounds: int = 600, fanout: int = 4) -> Dict[str, float]:
    """Messaging throughput (messages/sec) over a 16-core mesh."""
    machine = build_machine(shared_mesh(16))
    t0 = time.perf_counter()
    machine.run(_pingpong_root(rounds, fanout))
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": machine.stats.total_messages}


def bench_fabric_advances(n_cores: int = 1024, rounds: int = 60) -> Dict[str, float]:
    """Virtual-time advance throughput with a half-idle 32x32 mesh.

    Odd cores are idle so every advance wave relaxes shadow times through
    idle regions (the fast-mode hot path).
    """
    topo = square_mesh(n_cores)
    fabric = VirtualTimeFabric(topo, drift_bound=100.0)
    for c in range(n_cores):
        fabric.set_active(c, 0.0)
    for c in range(1, n_cores, 2):
        fabric.set_idle(c)
    actives = list(range(0, n_cores, 2))
    events = 0
    t0 = time.perf_counter()
    t = 0.0
    for _ in range(rounds):
        t += 10.0
        for c in actives:
            fabric.advance(c, t + (c % 7))
            events += 1
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": events}


def bench_fabric_refresh(n_cores: int = 1024, rounds: int = 40) -> Dict[str, float]:
    """Exact shadow recompute throughput (multi-source fixpoint)."""
    topo = square_mesh(n_cores)
    fabric = VirtualTimeFabric(topo, drift_bound=100.0)
    # Scattered active cores anchor the fixpoint; the rest are idle.
    for c in range(0, n_cores, 17):
        fabric.set_active(c, float(c))
    events = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        fabric.refresh_shadows()
        events += 1
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": events}


def _bench_e2e(benchmark: str, memory: str, n_cores: int = 64,
               scale: str = "medium", seed: int = 0) -> Dict[str, float]:
    """One end-to-end dwarf on the Fig. 7 style 64-core machine."""
    if memory == "shared":
        cfg = shared_mesh(n_cores)
    elif memory == "numa":
        cfg = numa_mesh(n_cores)
    else:
        cfg = dist_mesh(n_cores)
    workload = get_workload(benchmark, scale=scale, seed=seed, memory=memory)
    machine = build_machine(cfg)
    t0 = time.perf_counter()
    machine.run(workload.root)
    wall = time.perf_counter() - t0
    events = machine.stats.actions + machine.stats.total_messages
    return {"wall_s": wall, "events": events}


def _cross_pingpong(peer: int, rounds: int = 8):
    """Spawn-importable factory: root pings ``peer`` across the fence.

    The sharded bench entry pairs this with :func:`_cross_echo` on a
    remote shard so the run exercises the cross-shard USER-message path
    (edge pipes + board count matrix) and the entry's ``bytes_shipped``
    / ``bytes_by_edge`` counters record real traffic.
    """
    from types import SimpleNamespace

    def root(ctx):
        for i in range(rounds):
            yield ctx.send(peer, payload=i, tag=("bping", i))
            yield ctx.recv(tag=("bpong", i))
        return rounds

    return SimpleNamespace(root=root)


def _cross_echo(rounds: int = 8):
    """Spawn-importable factory: answers :func:`_cross_pingpong`."""
    from types import SimpleNamespace

    def root(ctx):
        for i in range(rounds):
            msg = yield ctx.recv(tag=("bping", i))
            yield ctx.send(msg.src, payload=msg.payload, tag=("bpong", i))
        return rounds

    return SimpleNamespace(root=root)


def _bench_e2e_sharded(n_cores: int = 64, shards: int = 4,
                       scale: str = "medium", seed: int = 0,
                       chat_rounds: int = 8) -> Dict[str, float]:
    """The sharded backend on a fenced 64-core machine, one root per
    shard region (the backend's intended load shape).

    Wall time includes worker start-up (forked children where the
    platform allows, else spawned interpreters), so on a single-CPU
    host this entry honestly records the coordination overhead; a >1x
    speedup over the equivalent fenced serial run needs real parallel
    hardware.  The record's ``host_cpus`` field captures which regime a
    committed number came from, and the round-protocol counters riding
    along in the result (rounds, waivers, bytes shipped,
    ``parallel_efficiency``) explain where the wall time went.  Event
    counts are the merged per-worker stats and are deterministic, like
    every other entry.
    """
    import dataclasses

    from ..arch import build_backend
    from ..parallel import WorkloadSpec

    cfg = dataclasses.replace(shared_mesh(n_cores), shards=shards,
                              backend="sharded")
    per_shard = n_cores // shards
    specs = [
        WorkloadSpec("quicksort", scale=scale, seed=seed + i,
                     memory="shared", root_core=i * per_shard)
        for i in range(shards)
    ]
    # A ping/echo pair spanning the first and last shard keeps real
    # USER traffic flowing across the fence, so the bytes_shipped /
    # bytes_by_edge counters below measure the edge-pipe path instead
    # of reporting an (accurate but uninformative) zero for a purely
    # fenced load.
    specs += [
        WorkloadSpec("cross_pingpong", root_core=1,
                     factory="repro.harness.perfbench:_cross_pingpong",
                     kwargs={"peer": n_cores - 1, "rounds": chat_rounds}),
        WorkloadSpec("cross_echo", root_core=n_cores - 1,
                     factory="repro.harness.perfbench:_cross_echo",
                     kwargs={"rounds": chat_rounds}),
    ]
    backend = build_backend(cfg)
    t0 = time.perf_counter()
    backend.run_workloads(specs)
    wall = time.perf_counter() - t0
    events = backend.stats.actions + backend.stats.total_messages
    proto = backend.protocol
    # Round-protocol counters ride along in the record so BENCH
    # trajectories explain *why* this number moved (fewer rounds?
    # cheaper rounds? more parallel hardware?).
    return {
        "wall_s": wall,
        "events": events,
        "rounds": proto["rounds"],
        "waivers": proto["waivers"],
        "window_peak": proto["window_peak"],
        "bytes_shipped": proto["bytes_shipped"],
        "bytes_by_edge": proto["bytes_by_edge"],
        "parallel_efficiency": proto["parallel_efficiency"],
    }


#: Benchmark registry: name -> (callable, quick-mode kwargs).
SUITE: Dict[str, tuple] = {
    "engine_steps": (bench_engine_steps, {"n_actions": 4_000}),
    "compute_fusion": (bench_compute_fusion, {"n_actions": 4_000}),
    "messages": (bench_messages, {"rounds": 80}),
    "fabric_advances": (bench_fabric_advances, {"rounds": 6}),
    "fabric_refresh": (bench_fabric_refresh, {"rounds": 4}),
    "e2e_quicksort_shared_64": (
        lambda **kw: _bench_e2e("quicksort", "shared", **kw),
        {"scale": "small"},
    ),
    "e2e_connected_components_dist_64": (
        lambda **kw: _bench_e2e("connected_components", "distributed", **kw),
        {"scale": "small"},
    ),
    "e2e_dijkstra_numa_64": (
        lambda **kw: _bench_e2e("dijkstra", "numa", **kw),
        {"scale": "small"},
    ),
    "e2e_sharded_quicksort_64x4": (
        _bench_e2e_sharded,
        {"scale": "small", "chat_rounds": 2},
    ),
}


def run_suite(
    repeat: int = 3,
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    out=None,
) -> Dict[str, Dict[str, float]]:
    """Run the suite; return ``{name: {wall_s, events, events_per_sec}}``.

    ``repeat`` takes the best (fastest) of N runs; event counts are
    deterministic and must agree across repeats.  ``quick`` shrinks the
    problem sizes (used by CI smoke checks and --profile).
    """
    results: Dict[str, Dict[str, float]] = {}
    names = list(only) if only else list(SUITE)
    # Validate the whole subset up front so a typo cannot burn minutes
    # of benchmarking before failing on the last name.
    unknown = [name for name in names if name not in SUITE]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {', '.join(map(repr, unknown))}; "
            f"choose from {sorted(SUITE)}")
    for name in names:
        fn, quick_kwargs = SUITE[name]
        kwargs = quick_kwargs if quick else {}
        best = None
        for _ in range(max(1, repeat)):
            sample = fn(**kwargs)
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
            elif sample["events"] != best["events"]:
                raise RuntimeError(
                    f"benchmark {name} is nondeterministic: "
                    f"{sample['events']} != {best['events']} events"
                )
        best["events_per_sec"] = (
            best["events"] / best["wall_s"] if best["wall_s"] > 0 else 0.0
        )
        results[name] = best
        if out is not None:
            print(
                f"  {name:34s} {best['events']:>9.0f} events "
                f"{best['wall_s']:>8.3f} s "
                f"{best['events_per_sec']:>12.0f} events/s",
                file=out,
            )
            if "rounds" in best:  # sharded entries explain their number
                print(
                    f"  {'':34s} rounds={best['rounds']} "
                    f"waivers={best['waivers']} "
                    f"window_peak=x{best['window_peak']:g} "
                    f"bytes={best['bytes_shipped']} "
                    f"par_eff={best['parallel_efficiency']:.1%}",
                    file=out,
                )
    return results


def effective_kernel() -> str:
    """The engine kernel a default-config run in this process would use.

    Resolves "auto" (environment override or "vectorized") and the
    compiled->vectorized toolchain fallback, so the recorded value names
    the kernel that actually executed the suite.
    """
    from ..arch.builder import resolve_engine_kernel
    from ..arch.config import ArchConfig
    from ..core.kernels import resolve_kernel

    kernel, _note = resolve_kernel(resolve_engine_kernel(ArchConfig()))
    return kernel


def make_record(
    results: Dict[str, Dict[str, float]],
    baseline: Optional[Dict] = None,
    repeat: int = 3,
) -> Dict:
    """Assemble the JSON document written to ``BENCH_engine.json``."""
    record = {
        "schema": 2,
        "suite": "repro-perf",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        # Throughput numbers are only comparable within one kernel;
        # check_regression.py refuses to gate across a mismatch.
        "engine_kernel": effective_kernel(),
        "repeat": repeat,
        # Sharded-backend entries only beat their serial counterparts
        # with real parallel hardware; record what this host had.
        "host_cpus": os.cpu_count(),
        "results": results,
    }
    if baseline:
        base_results = baseline.get("results", baseline)
        record["baseline"] = base_results
        speedups = {}
        for name, res in results.items():
            base = base_results.get(name)
            if base and base.get("events_per_sec"):
                speedups[name] = round(
                    res["events_per_sec"] / base["events_per_sec"], 3
                )
        record["speedup_vs_baseline"] = speedups
    return record


def load_record(path: str) -> Optional[Dict]:
    """Load a benchmark record; None when missing or unreadable."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def run_and_write(
    output: str = BENCH_FILE,
    repeat: int = 3,
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    out=None,
) -> Dict:
    """Run the suite and persist the record (CLI entry point body)."""
    out = out or sys.stdout
    print("running perf suite"
          + (" (quick)" if quick else "")
          + f", best of {repeat}:", file=out)
    results = run_suite(repeat=repeat, quick=quick, only=only, out=out)
    baseline = load_record(baseline_path) if baseline_path else None
    record = make_record(results, baseline=baseline, repeat=repeat)
    if output:
        with open(output, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {output}", file=out)
    if "speedup_vs_baseline" in record:
        for name, ratio in sorted(record["speedup_vs_baseline"].items()):
            print(f"  speedup {name:30s} {ratio:.2f}x", file=out)
    return record


def profile_suite(quick: bool = True, top: int = 20, out=None) -> None:
    """Run the suite under cProfile; print the top cumulative functions."""
    import cProfile
    import pstats

    out = out or sys.stdout
    profiler = cProfile.Profile()
    profiler.enable()
    run_suite(repeat=1, quick=quick)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
