"""Generic parameter sweeps for design-space exploration.

The paper's purpose is fast coarse comparison of architecture designs; a
sweep takes a base configuration, a grid of parameter overrides, and a
benchmark, runs the cartesian product, and returns records suitable for
tables or CSV export.

    grid = {"drift_bound": [50, 100, 500], "n_cores": [16, 64]}
    records = sweep("octree", shared_mesh(16), grid, scale="tiny")
    print(sweep_table(records, rows="n_cores", cols="drift_bound"))
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from .experiments import run_benchmark
from .report import format_table
from ..arch.config import ArchConfig


def sweep(
    benchmark: str,
    base: ArchConfig,
    grid: Mapping[str, Sequence],
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    metric: str = "vtime",
) -> List[Dict]:
    """Run the cartesian product of ``grid`` overrides on ``base``.

    Returns one record per grid point: the overrides plus the averaged
    metric (``vtime``, ``wall``, or any numeric SimStats attribute).
    """
    if not grid:
        raise ValueError("empty parameter grid")
    valid = {f.name for f in dataclasses.fields(ArchConfig)}
    unknown = set(grid) - valid
    if unknown:
        raise ValueError(f"unknown ArchConfig fields: {sorted(unknown)}")
    names = sorted(grid)
    records: List[Dict] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        cfg = dataclasses.replace(base, **overrides)
        values = []
        for seed in seeds:
            record = run_benchmark(benchmark, cfg, scale=scale, seed=seed)
            if metric == "vtime":
                values.append(record.vtime)
            elif metric == "wall":
                values.append(record.wall)
            else:
                values.append(float(getattr(record.stats, metric)))
        entry = dict(overrides)
        entry[metric] = sum(values) / len(values)
        records.append(entry)
    return records


def sweep_table(
    records: Sequence[Mapping],
    rows: str,
    cols: str,
    metric: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Pivot sweep records into a rows x cols text table."""
    if not records:
        raise ValueError("no records to tabulate")
    if metric is None:
        candidates = [k for k in records[0]
                      if k not in (rows, cols) and isinstance(
                          records[0][k], (int, float))]
        if not candidates:
            raise ValueError("cannot infer the metric column")
        metric = candidates[-1]
    row_values = sorted({r[rows] for r in records})
    col_values = sorted({r[cols] for r in records})
    lookup = {(r[rows], r[cols]): r[metric] for r in records}
    headers = [rows] + [f"{cols}={c}" for c in col_values]
    body = []
    for rv in row_values:
        body.append([rv] + [lookup.get((rv, cv), float("nan"))
                            for cv in col_values])
    return format_table(headers, body, title=title)


def sweep_csv(records: Sequence[Mapping]) -> str:
    """CSV export of sweep records (stable column order)."""
    if not records:
        raise ValueError("no records to export")
    columns = sorted(records[0])
    lines = [",".join(columns)]
    for record in records:
        lines.append(",".join(f"{record[c]:.6g}"
                              if isinstance(record[c], float)
                              else str(record[c]) for c in columns))
    return "\n".join(lines)
