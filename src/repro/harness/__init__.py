"""Experiment harness: metrics, per-figure runners, text reports."""

from . import ascii_chart, metrics, report, results, sweep, trace
from .results import run_record
from .sweep import sweep as run_sweep, sweep_csv, sweep_table
from .trace import Tracer
from .experiments import (
    DEFAULT_SIZES,
    DEFAULT_VALIDATION_SIZES,
    RunRecord,
    cl_speedup_curve,
    clustered_experiment,
    dispatch_ablation,
    distmem_experiment,
    drift_sweep_experiment,
    parallelism_study,
    polymorphic_experiment,
    run_benchmark,
    run_cycle_level,
    shadow_time_ablation,
    sharedmem_experiment,
    simtime_experiment,
    sync_policy_ablation,
    validation_experiment,
    vt_speedup_curve,
)

__all__ = [
    "DEFAULT_SIZES",
    "Tracer",
    "ascii_chart",
    "run_sweep",
    "sweep",
    "sweep_csv",
    "sweep_table",
    "trace",
    "DEFAULT_VALIDATION_SIZES",
    "RunRecord",
    "cl_speedup_curve",
    "clustered_experiment",
    "dispatch_ablation",
    "distmem_experiment",
    "drift_sweep_experiment",
    "metrics",
    "parallelism_study",
    "polymorphic_experiment",
    "report",
    "results",
    "run_benchmark",
    "run_cycle_level",
    "run_record",
    "shadow_time_ablation",
    "sharedmem_experiment",
    "simtime_experiment",
    "sync_policy_ablation",
    "validation_experiment",
    "vt_speedup_curve",
]
