"""Experiment runners — one per table/figure of the paper's evaluation.

Every function is deterministic given its seeds and returns plain dicts so
the benchmark harness can print the same rows/series the paper reports.
Dataset sizes are scaled down by default (see
:mod:`repro.workloads.generators`); pass ``scale="paper"`` for published
sizes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import metrics
from ..arch import (
    ArchConfig,
    build_machine,
    clustered_dist,
    dist_mesh,
    polymorphic_dist,
    polymorphic_shared_validation,
    shared_mesh,
    shared_mesh_validation,
)
from ..core.stats import SimStats
from ..cyclelevel import build_cycle_level_machine
from ..workloads import BENCHMARKS, VALIDATION_BENCHMARKS, get_workload

#: Default sweep sizes (paper: 1, 8, 64, 256, 1024 / validation to 64).
DEFAULT_SIZES = (1, 4, 16, 64)
DEFAULT_VALIDATION_SIZES = (1, 4, 16)


@dataclass
class RunRecord:
    """Outcome of one simulated benchmark run.

    ``vtime`` is the simulated completion time in cycles, ``wall`` the
    host seconds the simulation took, and ``native_wall`` the host
    seconds of the unsimulated equivalent computation — the denominator
    of the paper's normalized simulation time (Fig. 7; 0.0 unless the
    run measured it).  ``stats`` is the machine's full
    :class:`~repro.core.stats.SimStats`.

    Example::

        from repro.arch import shared_mesh
        from repro.harness.experiments import run_benchmark

        rec = run_benchmark("quicksort", shared_mesh(16), scale="tiny")
        print(rec.vtime, rec.stats.total_messages)
    """

    benchmark: str
    arch: str
    n_cores: int
    vtime: float
    wall: float
    native_wall: float
    stats: SimStats
    meta: Dict = field(default_factory=dict)


def _native_wall(workload, repeats: int = 3) -> float:
    """Wall-clock of the unsimulated equivalent computation (min of runs)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload.native()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def run_benchmark(
    name: str,
    cfg: ArchConfig,
    scale: str = "small",
    seed: int = 0,
    verify: bool = True,
    measure_native: bool = False,
) -> RunRecord:
    """Run one benchmark on one architecture configuration."""
    workload = get_workload(name, scale=scale, seed=seed, memory=cfg.memory)
    machine = build_machine(cfg)
    result = machine.run(workload.root)
    if verify:
        workload.verify(result["output"])
    vtime = result.get("work_vtime", machine.completion_time)
    return RunRecord(
        benchmark=name,
        arch=cfg.name,
        n_cores=cfg.n_cores,
        vtime=vtime,
        wall=machine.stats.wall_seconds,
        native_wall=_native_wall(workload) if measure_native else 0.0,
        stats=machine.stats,
        meta=dict(workload.meta),
    )


def run_cycle_level(
    name: str,
    n_cores: int,
    polymorphic: bool = False,
    scale: str = "small",
    seed: int = 0,
    verify: bool = True,
) -> RunRecord:
    """Run one benchmark on the cycle-level referee."""
    workload = get_workload(name, scale=scale, seed=seed, memory="shared")
    machine = build_cycle_level_machine(n_cores, polymorphic=polymorphic,
                                        seed=seed)
    result = machine.run(workload.root)
    if verify:
        workload.verify(result["output"])
    vtime = result.get("work_vtime", machine.completion_time)
    return RunRecord(
        benchmark=name,
        arch=f"cycle-level-{n_cores}",
        n_cores=n_cores,
        vtime=vtime,
        wall=machine.stats.wall_seconds,
        native_wall=0.0,
        stats=machine.stats,
        meta=dict(workload.meta),
    )


def vt_speedup_curve(
    name: str,
    arch_factory: Callable[[int], ArchConfig],
    sizes: Sequence[int],
    scale: str = "small",
    seeds: Sequence[int] = (0,),
) -> Dict[int, float]:
    """Mean SiMany speedup curve over datasets for one benchmark."""
    curves = []
    for seed in seeds:
        vtimes = {}
        for n in sizes:
            record = run_benchmark(name, arch_factory(n), scale=scale, seed=seed)
            vtimes[n] = record.vtime
        curves.append(metrics.speedup_curve(vtimes))
    return metrics.mean_speedup_curves(curves)


def cl_speedup_curve(
    name: str,
    sizes: Sequence[int],
    polymorphic: bool = False,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
) -> Dict[int, float]:
    """Mean cycle-level speedup curve over datasets for one benchmark."""
    curves = []
    for seed in seeds:
        vtimes = {}
        for n in sizes:
            record = run_cycle_level(name, n, polymorphic=polymorphic,
                                     scale=scale, seed=seed)
            vtimes[n] = record.vtime
        curves.append(metrics.speedup_curve(vtimes))
    return metrics.mean_speedup_curves(curves)


# -- Figures 5 and 6: cycle-level validation ----------------------------------

def validation_experiment(
    sizes: Sequence[int] = DEFAULT_VALIDATION_SIZES,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    polymorphic: bool = False,
    benchmarks: Sequence[str] = VALIDATION_BENCHMARKS,
) -> Dict:
    """Figs. 5/6: SiMany (VT) vs cycle-level (CL) speedups + error table.

    VT runs enable coherence timings, matching the paper's protocol of
    enabling them in SiMany rather than disabling them in the referee.
    """
    if polymorphic:
        def factory(n: int) -> ArchConfig:
            return polymorphic_shared_validation(n)
    else:
        def factory(n: int) -> ArchConfig:
            return shared_mesh_validation(n)

    vt_curves: Dict[str, Dict[int, float]] = {}
    cl_curves: Dict[str, Dict[int, float]] = {}
    for name in benchmarks:
        vt_curves[name] = vt_speedup_curve(name, factory, sizes, scale, seeds)
        cl_curves[name] = cl_speedup_curve(name, sizes, polymorphic, scale, seeds)
    errors = {
        n: metrics.geomean_error(vt_curves, cl_curves, n)
        for n in sizes if n > 1
    }
    return {
        "sizes": list(sizes),
        "vt": vt_curves,
        "cl": cl_curves,
        "errors": errors,
        "polymorphic": polymorphic,
    }


# -- Figure 7: normalized simulation time --------------------------------------

def simtime_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
    memories: Sequence[str] = ("shared", "distributed"),
) -> Dict:
    """Fig. 7: simulation time normalized to native execution, plus the
    power-law regression of simulation time vs simulated core count."""
    norm: Dict[str, Dict[int, float]] = {name: {} for name in benchmarks}
    raw_wall: Dict[str, Dict[int, float]] = {name: {} for name in benchmarks}
    for name in benchmarks:
        for n in sizes:
            samples = []
            walls = []
            for seed in seeds:
                for memory in memories:
                    cfg = shared_mesh(n) if memory == "shared" else dist_mesh(n)
                    record = run_benchmark(name, cfg, scale=scale, seed=seed,
                                           measure_native=True)
                    samples.append(metrics.normalized_simulation_time(
                        record.wall, record.native_wall))
                    walls.append(record.wall)
            norm[name][n] = metrics.geomean(samples)
            raw_wall[name][n] = sum(walls) / len(walls)
    fits = {}
    for name in benchmarks:
        pts = {n: w for n, w in raw_wall[name].items() if n > 1}
        if len(pts) >= 2:
            fits[name] = metrics.power_law_fit(pts)
    return {
        "sizes": list(sizes),
        "normalized": norm,
        "wall": raw_wall,
        "power_law": fits,
    }


# -- Figures 8, 9, 12, 13: architecture exploration --------------------------

def sharedmem_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> Dict:
    """Fig. 8: speedups on regular 2D meshes, optimistic shared memory."""
    curves = {
        name: vt_speedup_curve(name, shared_mesh, sizes, scale, seeds)
        for name in benchmarks
    }
    return {"sizes": list(sizes), "curves": curves}


def distmem_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> Dict:
    """Fig. 9: speedups on regular 2D meshes, distributed memory."""
    curves = {
        name: vt_speedup_curve(name, dist_mesh, sizes, scale, seeds)
        for name in benchmarks
    }
    return {"sizes": list(sizes), "curves": curves}


def clustered_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    n_clusters: int = 4,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> Dict:
    """Fig. 12: clustered vs regular distributed-memory meshes.

    Reports both speedup curves, the per-benchmark crossover core count
    (paper average: ~78), and the virtual-execution-time change at the
    largest size (paper: CC -28.7 %, Dijkstra -25.6 %, Quicksort -2.2 %,
    SpMxV -0.1 % at 1024 cores).
    """
    def clustered_factory(n: int) -> ArchConfig:
        if n <= n_clusters:
            return dist_mesh(n)  # degenerate: fewer cores than clusters
        return clustered_dist(n, n_clusters=n_clusters)

    regular: Dict[str, Dict[int, float]] = {}
    clustered: Dict[str, Dict[int, float]] = {}
    exec_change: Dict[str, float] = {}
    crossover: Dict[str, float] = {}
    top = max(sizes)
    for name in benchmarks:
        reg_times: List[Dict[int, float]] = []
        clu_times: List[Dict[int, float]] = []
        for seed in seeds:
            rt, ct = {}, {}
            for n in sizes:
                rt[n] = run_benchmark(name, dist_mesh(n), scale=scale,
                                      seed=seed).vtime
                ct[n] = run_benchmark(name, clustered_factory(n), scale=scale,
                                      seed=seed).vtime
            reg_times.append(rt)
            clu_times.append(ct)
        regular[name] = metrics.mean_speedup_curves(
            [metrics.speedup_curve(t) for t in reg_times])
        clustered[name] = metrics.mean_speedup_curves(
            [metrics.speedup_curve(t) for t in clu_times])
        reg_top = sum(t[top] for t in reg_times) / len(reg_times)
        clu_top = sum(t[top] for t in clu_times) / len(clu_times)
        exec_change[name] = metrics.percent_change(clu_top, reg_top)
        crossover[name] = metrics.crossover_point(regular[name], clustered[name])
    return {
        "sizes": list(sizes),
        "regular": regular,
        "clustered": clustered,
        "exec_time_change_pct": exec_change,
        "crossover_cores": crossover,
        "n_clusters": n_clusters,
    }


def polymorphic_experiment(
    sizes: Sequence[int] = DEFAULT_SIZES,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> Dict:
    """Fig. 13: polymorphic distributed-memory meshes vs uniform ones.

    Polymorphic architectures keep the cumulated computing power of the
    uniform mesh; the paper reports an average -18.8 % speedup for the
    non-regular benchmarks at 256/1024 cores.
    """
    uniform: Dict[str, Dict[int, float]] = {}
    poly: Dict[str, Dict[int, float]] = {}
    change: Dict[str, float] = {}
    large = [n for n in sizes if n >= max(sizes) // 4 and n > 1] or [max(sizes)]
    for name in benchmarks:
        uniform[name] = vt_speedup_curve(name, dist_mesh, sizes, scale, seeds)
        poly[name] = vt_speedup_curve(name, polymorphic_dist, sizes, scale, seeds)
        deltas = [
            metrics.percent_change(poly[name][n], uniform[name][n])
            for n in large
        ]
        change[name] = sum(deltas) / len(deltas)
    return {
        "sizes": list(sizes),
        "uniform": uniform,
        "polymorphic": poly,
        "speedup_change_pct": change,
    }


# -- Figures 10 and 11: the T accuracy/speed trade-off ----------------------

def drift_sweep_experiment(
    t_values: Sequence[float] = (50.0, 100.0, 500.0, 1000.0),
    baseline_t: float = 100.0,
    sizes: Sequence[int] = (64,),
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = BENCHMARKS,
) -> Dict:
    """Figs. 10/11: speedup and simulation-time variation as T varies.

    Only sizes >= 64 matter in the paper's averages (the interesting part
    of the scalability profiles).  Variations are percent changes against
    the T=100 baseline.
    """
    if baseline_t not in t_values:
        t_values = tuple(t_values) + (baseline_t,)
    vt: Dict[str, Dict[float, float]] = {name: {} for name in benchmarks}
    wall: Dict[str, Dict[float, float]] = {name: {} for name in benchmarks}
    stalls: Dict[str, Dict[float, float]] = {name: {} for name in benchmarks}
    for name in benchmarks:
        for t in t_values:
            vts, walls, stall_counts = [], [], []
            for seed in seeds:
                for n in sizes:
                    cfg = shared_mesh(n).with_drift(float(t))
                    record = run_benchmark(name, cfg, scale=scale, seed=seed)
                    vts.append(record.vtime)
                    walls.append(record.wall)
                    stall_counts.append(record.stats.drift_stalls)
            vt[name][t] = sum(vts) / len(vts)
            wall[name][t] = sum(walls) / len(walls)
            stalls[name][t] = sum(stall_counts) / len(stall_counts)
    speedup_variation: Dict[str, Dict[float, float]] = {}
    simtime_variation: Dict[str, Dict[float, float]] = {}
    for name in benchmarks:
        base_vt = vt[name][baseline_t]
        base_wall = wall[name][baseline_t]
        # Speedup = base_time/vtime, so speedup variation is inverse vtime
        # variation.
        speedup_variation[name] = {
            t: metrics.percent_change(base_vt / vt[name][t], 1.0)
            for t in t_values if t != baseline_t
        }
        simtime_variation[name] = {
            t: metrics.percent_change(wall[name][t], base_wall)
            for t in t_values if t != baseline_t
        }
    return {
        "t_values": [t for t in t_values if t != baseline_t],
        "baseline_t": baseline_t,
        "speedup_variation_pct": speedup_variation,
        "simtime_variation_pct": simtime_variation,
        "vtimes": vt,
        "walls": wall,
        "drift_stalls": stalls,
    }


# -- Ablations ----------------------------------------------------------------

def sync_policy_ablation(
    policies: Sequence[str] = ("spatial", "quantum", "bounded_slack",
                               "laxp2p", "unbounded", "conservative"),
    n_cores: int = 64,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = ("quicksort", "connected_components"),
) -> Dict:
    """Ablation: virtual-time accuracy and host cost per sync policy.

    The conservative policy is the ordering referee: its virtual times are
    the zero-drift reference the loose policies are compared against.
    """
    vtimes: Dict[str, Dict[str, float]] = {name: {} for name in benchmarks}
    walls: Dict[str, Dict[str, float]] = {name: {} for name in benchmarks}
    for name in benchmarks:
        for policy in policies:
            vts, ws = [], []
            for seed in seeds:
                cfg = dataclasses.replace(
                    shared_mesh(n_cores), sync=policy,
                    name=f"shared-mesh-{n_cores}-{policy}")
                record = run_benchmark(name, cfg, scale=scale, seed=seed)
                vts.append(record.vtime)
                ws.append(record.wall)
            vtimes[name][policy] = sum(vts) / len(vts)
            walls[name][policy] = sum(ws) / len(ws)
    deviation: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        ref = vtimes[name].get("conservative")
        if ref:
            deviation[name] = {
                policy: metrics.percent_change(vtimes[name][policy], ref)
                for policy in vtimes[name]
            }
    return {"vtimes": vtimes, "walls": walls, "deviation_pct": deviation}


def dispatch_ablation(
    n_cores: int = 64,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmarks: Sequence[str] = ("octree", "quicksort",
                                 "connected_components"),
) -> Dict:
    """Ablation A3 — heterogeneity-aware scheduling (paper future work).

    The paper's conclusion: polymorphic/clustered results "could be
    improved substantially with specific scheduling policies that would
    take into account the latency and computing power disparity among
    cores".  Measures each dispatch policy's virtual time on polymorphic
    shared-memory meshes and clustered distributed-memory meshes against
    the paper's occupancy-only default.
    """
    from ..arch import polymorphic_shared

    poly: Dict[str, Dict[str, float]] = {}
    clustered: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        poly[name] = {}
        clustered[name] = {}
        for dispatch in ("occupancy", "speed_aware", "random"):
            vts = []
            for seed in seeds:
                cfg = dataclasses.replace(polymorphic_shared(n_cores),
                                          dispatch=dispatch)
                vts.append(run_benchmark(name, cfg, scale=scale,
                                         seed=seed).vtime)
            poly[name][dispatch] = sum(vts) / len(vts)
        for dispatch in ("occupancy", "latency_aware", "random"):
            vts = []
            for seed in seeds:
                cfg = dataclasses.replace(clustered_dist(n_cores, 4),
                                          dispatch=dispatch)
                vts.append(run_benchmark(name, cfg, scale=scale,
                                         seed=seed).vtime)
            clustered[name][dispatch] = sum(vts) / len(vts)
    improvement = {
        name: metrics.percent_change(poly[name]["speed_aware"],
                                     poly[name]["occupancy"])
        for name in benchmarks
    }
    return {
        "polymorphic": poly,
        "clustered": clustered,
        "poly_speedaware_change_pct": improvement,
    }


def parallelism_study(
    sizes: Sequence[int] = (16, 64, 256),
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmark: str = "octree",
    sample_interval: int = 16,
) -> Dict:
    """Parallel-host feasibility study (paper, Section VIII).

    The paper's preliminary study "indicates that, at least from networks
    with 64 cores, there are enough cores verifying these conditions to
    keep all cores of current multi-core host machines busy".  We sample,
    during spatial-sync runs, how many cores are concurrently runnable
    (have work and pass the drift check) — the parallelism a multithreaded
    host implementation could exploit.
    """
    import numpy as np

    out: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        samples: List[int] = []
        for seed in seeds:
            cfg = dataclasses.replace(
                shared_mesh(n), parallelism_sample_interval=sample_interval)
            record = run_benchmark(benchmark, cfg, scale=scale, seed=seed)
            samples.extend(record.stats.parallelism_samples)
        arr = np.asarray(samples if samples else [0])
        out[n] = {
            "mean": float(arr.mean()),
            "p95": float(np.percentile(arr, 95)),
            "max": float(arr.max()),
            "samples": len(samples),
        }
    return {"benchmark": benchmark, "by_cores": out}


def shadow_time_ablation(
    n_cores: int = 64,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    benchmark: str = "octree",
) -> Dict:
    """Ablation: shadow virtual time on/off/exact (Section II-A).

    Without shadows, idle cores do not constrain drift and non-connected
    active sets can drift beyond diameter x T; the ablation reports the
    maximum observed drift and the host cost of each mode.
    """
    modes = {
        "shadow_fast": {"shadow_enabled": True, "shadow_mode": "fast"},
        "shadow_exact": {"shadow_enabled": True, "shadow_mode": "exact"},
        "no_shadow": {"shadow_enabled": False, "shadow_mode": "fast"},
    }
    out: Dict[str, Dict[str, float]] = {}
    for label, overrides in modes.items():
        vts, walls, stalls = [], [], []
        for seed in seeds:
            cfg = dataclasses.replace(
                shared_mesh(n_cores),
                name=f"shared-mesh-{n_cores}-{label}", **overrides)
            record = run_benchmark(benchmark, cfg, scale=scale, seed=seed)
            vts.append(record.vtime)
            walls.append(record.wall)
            stalls.append(record.stats.drift_stalls)
        out[label] = {
            "vtime": sum(vts) / len(vts),
            "wall": sum(walls) / len(walls),
            "drift_stalls": sum(stalls) / len(stalls),
        }
    return out
