"""Plain-text report formatting for experiment results.

The benchmark harness prints the same rows/series the paper's figures and
tables report, as aligned text tables (one row per benchmark, one column
per core count / T value).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align a list of rows under headers."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(c.rjust(w) for c, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_curves(
    curves: Mapping[str, Mapping[int, float]],
    sizes: Sequence[int],
    title: Optional[str] = None,
    value_label: str = "speedup",
) -> str:
    """One row per benchmark, one column per core count."""
    headers = ["benchmark"] + [f"{n} cores" for n in sizes]
    rows = []
    for name in sorted(curves):
        rows.append([name] + [curves[name].get(n, float("nan")) for n in sizes])
    table = format_table(headers, rows, title=title)
    return f"{table}\n({value_label})"


def format_validation(result: Dict) -> str:
    """Figs. 5/6 report: VT vs CL speedups plus the error row."""
    sizes = result["sizes"]
    lines = []
    kind = "polymorphic" if result["polymorphic"] else "uniform"
    headers = ["benchmark"] + [f"{n}" for n in sizes]
    rows = []
    for name in sorted(result["vt"]):
        rows.append([f"{name} VT"] + [result["vt"][name][n] for n in sizes])
        rows.append([f"{name} CL"] + [result["cl"][name][n] for n in sizes])
    lines.append(format_table(
        headers, rows,
        title=f"Speedups, {kind} 2D mesh: SiMany (VT) vs cycle-level (CL)",
    ))
    err_rows = [["geomean error %"] + [
        100 * result["errors"].get(n, float("nan")) if n > 1 else 0.0
        for n in sizes
    ]]
    lines.append(format_table(headers, err_rows))
    return "\n".join(lines)


def format_drift_tables(result: Dict) -> str:
    """Figs. 10/11 report: variations with T (baseline T=100)."""
    t_values = result["t_values"]
    headers = ["benchmark"] + [f"T={int(t)}" for t in t_values]
    sp_rows = []
    st_rows = []
    for name in sorted(result["speedup_variation_pct"]):
        sp_rows.append([name] + [
            result["speedup_variation_pct"][name][t] for t in t_values])
        st_rows.append([name] + [
            result["simtime_variation_pct"][name][t] for t in t_values])
    out = [
        format_table(headers, sp_rows,
                     title=f"Average speedup variation % "
                           f"(baseline T={int(result['baseline_t'])})"),
        format_table(headers, st_rows,
                     title="Average simulation-time variation %"),
    ]
    return "\n\n".join(out)


def format_power_law(fits: Mapping[str, tuple]) -> str:
    """Fig. 7 regression report: simulation time ~ a * cores^b."""
    headers = ["benchmark", "coefficient a", "exponent b"]
    rows = [[name, a, b] for name, (a, b) in sorted(fits.items())]
    return format_table(headers, rows,
                        title="Power-law fit: simulation time ~ a * cores^b")


def format_telemetry(snapshot: Dict, top: int = 12) -> str:
    """Human-readable summary of a telemetry snapshot (``repro.obs``).

    Renders the ``top`` largest counters as a table, every histogram as
    ASCII bars, per-core vector totals, and the profiler's phase split
    when present.  Accepts either a live ``Telemetry.snapshot()`` or a
    coordinator-merged snapshot loaded from ``metrics.json``.
    """
    from .ascii_chart import render_histogram

    lines: List[str] = []
    spec = snapshot.get("spec")
    if spec:
        lines.append(f"telemetry spec: {spec}")

    counters = snapshot.get("counters", {})
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        rows = [[name, value] for name, value in ranked[:top]]
        lines.append(format_table(
            ["counter", "value"], rows,
            title=f"Top counters ({min(top, len(ranked))} of {len(ranked)})"))

    for name, vec in sorted(snapshot.get("per_core", {}).items()):
        nonzero = sum(1 for v in vec if v)
        lines.append(f"{name}: total={sum(vec)} over {nonzero}/{len(vec)} "
                     f"cores, max={max(vec, default=0)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        lines.append("")
        lines.append(render_histogram(hist["bounds"], hist["counts"],
                                      title=f"{name} "
                                            f"(n={sum(hist['counts'])})"))

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(format_table(
            ["gauge (max)", "value"], sorted(gauges.items())))

    profile = snapshot.get("profile")
    if profile and profile.get("total_samples"):
        total = profile["total_samples"]
        lines.append("")
        rows = [
            [phase, n, 100.0 * n / total]
            for phase, n in sorted(profile["samples"].items(),
                                   key=lambda kv: (-kv[1], kv[0]))
        ]
        lines.append(format_table(
            ["phase", "samples", "%"], rows,
            title=f"Wall-clock profile ({total} samples @ "
                  f"{profile['interval_s'] * 1e3:g} ms)"))

    return "\n".join(lines) if lines else "(empty telemetry snapshot)"


def dump_csv(curves: Mapping[str, Mapping[int, float]],
             sizes: Sequence[int]) -> str:
    """CSV export of a curve family (for external plotting)."""
    lines = ["benchmark," + ",".join(str(n) for n in sizes)]
    for name in sorted(curves):
        lines.append(
            name + "," + ",".join(
                f"{curves[name].get(n, float('nan')):.6g}" for n in sizes)
        )
    return "\n".join(lines)
