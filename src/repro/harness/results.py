"""Plain-JSON serialization of one simulation run's results.

The harness's experiment runners keep results as in-memory
``RunRecord`` objects; the service layer (and anything else that
persists runs) needs a flat, deterministic, JSON-safe document instead.
:func:`run_record` builds that document from the objects a backend run
already produces — the root result dict, the merged
:class:`~repro.core.stats.SimStats`, the sharded round-protocol
counters, a canonical trace digest and a telemetry snapshot — without
re-deriving anything.

Wall-clock fields (``stats.wall_seconds``) are inherently
non-deterministic and are kept *out* of the ``result`` block: everything
under ``result`` and ``stats_vt`` is a pure function of the spec, which
is what makes a cached document exact.  Host-side measurements live
under ``host``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.stats import SimStats

#: Result-document schema version, bumped on incompatible layout changes.
RESULT_SCHEMA = 1


def run_record(
    result: Dict[str, Any],
    stats: SimStats,
    *,
    protocol: Optional[Dict[str, Any]] = None,
    trace_digest: Optional[str] = None,
    telemetry: Optional[Dict[str, Any]] = None,
    verified: bool = False,
) -> Dict[str, Any]:
    """Serialize one finished run into a plain-JSON document.

    ``result`` is the root task's result dict (``work_vtime`` is the
    headline number; the raw ``output`` payload is *not* embedded — it
    can be arbitrarily large and non-JSON; ``verified`` records that the
    workload's independent checker accepted it).  ``protocol`` is the
    sharded backend's round-counter dict when one exists,
    ``trace_digest`` the canonical digest of the run's trace
    (:func:`repro.harness.trace.trace_digest`), and ``telemetry`` an
    observability snapshot to embed verbatim.

    Example::

        from repro.arch import build_machine, shared_mesh
        from repro.harness.results import run_record
        from repro.workloads import get_workload

        workload = get_workload("quicksort", scale="tiny", seed=0)
        machine = build_machine(shared_mesh(9))
        result = machine.run(workload.root)
        doc = run_record(result, machine.stats, verified=True)
        assert doc["result"]["work_vtime"] == result["work_vtime"]
    """
    stats_dict = stats.as_dict()
    wall = stats_dict.pop("wall_seconds", 0.0)
    doc: Dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "result": {
            "work_vtime": result.get("work_vtime"),
            "verified": bool(verified),
        },
        "stats_vt": stats_dict,
        "host": {"wall_seconds": wall},
    }
    if protocol is not None:
        # Round/window/byte counters are deterministic; efficiency and
        # busy-time are wall-clock measurements and move per host/run.
        proto = dict(protocol)
        doc["host"]["worker_busy_s"] = proto.pop("worker_busy_s", None)
        doc["host"]["parallel_efficiency"] = proto.pop(
            "parallel_efficiency", None)
        doc["protocol"] = proto
    if trace_digest is not None:
        doc["result"]["trace_digest"] = trace_digest
    if telemetry is not None:
        doc["telemetry"] = telemetry
    return doc
