"""Inter-process plumbing for the sharded backend.

Workers exchange three kinds of traffic:

* **the shared round board** — one :class:`multiprocessing.shared_memory`
  block holding numpy *time planes*: double-buffered published times for
  boundary cores, per-core (active, vtime) snapshots for the
  coordinator's exact shadow fixpoint, the fixpoint result itself (the
  *adopt plane*), and a double-buffered per-edge message-count matrix.
  A quiescent edge therefore costs zero bytes and zero pickling per
  round — peers read each other's plane slots directly;
* **edge channels** — one duplex pipe per shard pair (USER messages
  may target any core, so non-adjacent shards exchange batches too),
  used *only* when the count matrix says a batch of boundary-crossing
  USER messages is in flight (see :func:`encode_batch`);
* **control channels** — one duplex pipe per worker to the coordinator,
  carrying round commands (``go``/``stop``) and worker replies
  (``status``/``done``/``error``).

Everything shipped over a pipe is plain picklable data: messages are
flattened to columns (the receiving worker rebuilds real
:class:`~repro.core.messages.Message` objects via
``Machine.inject_message``), and workloads travel as
:class:`WorkloadSpec` descriptions that each worker resolves locally
through the deterministic :func:`repro.workloads.get_workload`
factories — workload roots themselves are closures and cannot cross
process boundaries.

Why double buffering is enough
------------------------------
Plane slots are only written by their owning worker and only read by
peers *one coordination round later*.  The coordinator's gather
(every ``status``) and broadcast (every ``go``) form a global barrier
between rounds, so a slot written in round ``r`` (parity ``r % 2``) is
read in round ``r + 1`` strictly after the barrier, and its next write
(round ``r + 2``, same parity) happens strictly after the *next*
barrier — no slot is ever read and written concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, Iterable, List, Tuple

import numpy as np

from multiprocessing import shared_memory

from ..core.fabric import INF
from ..core.messages import Message, MsgKind


def resolve_start_method(method: str) -> str:
    """Map ``ArchConfig.worker_start_method`` to a concrete method:
    ``auto`` picks ``fork`` where the platform offers it (workers
    inherit the parent's imports — milliseconds instead of the ~seconds
    a spawned interpreter pays to boot and re-import) and falls back to
    ``spawn`` elsewhere (Windows, macOS default)."""
    import multiprocessing

    if method == "auto":
        return ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
    return method


@dataclass
class WorkloadSpec:
    """Picklable description of one root workload.

    The sharded backend re-creates the workload inside the worker that
    owns ``root_core``; because the workload factories are
    deterministic in ``(benchmark, scale, seed, memory)``, the rebuilt
    root is identical to the one a serial run would construct.

    Example::

        from repro.parallel import WorkloadSpec
        spec = WorkloadSpec("quicksort", scale="tiny", seed=0,
                            memory="shared", root_core=0)
    """

    benchmark: str
    scale: str = "small"
    seed: int = 0
    memory: str = "shared"
    root_core: int = 0
    kwargs: Dict = field(default_factory=dict)
    #: Optional ``"module:function"`` override: the function is imported
    #: in the worker and called with ``**kwargs``; it must return an
    #: object with a ``root`` attribute (e.g. a ``WorkloadRun``).  Used
    #: by tests and custom experiments whose roots are not registered
    #: benchmarks.
    factory: str = ""

    def resolve(self):
        """Instantiate the workload (a ``WorkloadRun``) in this process."""
        if self.factory:
            import importlib

            mod_name, _, fn_name = self.factory.partition(":")
            fn = getattr(importlib.import_module(mod_name), fn_name)
            return fn(**self.kwargs)
        from ..workloads import get_workload

        return get_workload(self.benchmark, scale=self.scale, seed=self.seed,
                            memory=self.memory, **self.kwargs)


class SharedRoundBoard:
    """Shared-memory numpy planes backing the round protocol.

    Layout (one block, offsets in 8-byte words):

    ``published[2][n_cores]`` (float64)
        Double-buffered published virtual times.  Each worker writes its
        *boundary* cores' published times into parity ``round % 2``
        after running a round; peers anchor their proxies from parity
        ``(round - 1) % 2`` at the start of the next round.
    ``vtime[n_cores]`` / ``active[n_cores]`` (float64 / int64)
        Per-core snapshots written by the owning worker after each
        round; read only by the coordinator (between its gather and the
        next broadcast) to run the global exact shadow fixpoint.
    ``adopt[n_cores]`` (float64)
        The fixpoint result, written by the coordinator before each
        ``go``; workers adopt it raise-only.
    ``counts[2][n_shards][n_shards]`` (int64)
        Double-buffered cross-shard USER-message counts:
        ``counts[r % 2, src, dst]`` is the number of messages shard
        ``src`` put on the ``src -> dst`` pipe in round ``r``.  The
        receiver polls this instead of the pipe, so quiet edges never
        touch a file descriptor.
    """

    def __init__(self, n_cores: int, n_shards: int, shm) -> None:
        self.n_cores = n_cores
        self.n_shards = n_shards
        self.shm = shm
        buf = shm.buf
        n, s = n_cores, n_shards
        off = 0
        self.published = np.ndarray((2, n), dtype=np.float64, buffer=buf,
                                    offset=off)
        off += 2 * n * 8
        self.vtime = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=off)
        off += n * 8
        self.active = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=off)
        off += n * 8
        self.adopt = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=off)
        off += n * 8
        self.counts = np.ndarray((2, s, s), dtype=np.int64, buffer=buf,
                                 offset=off)
        off += 2 * s * s * 8
        assert off <= shm.size

    @staticmethod
    def _nbytes(n_cores: int, n_shards: int) -> int:
        return (5 * n_cores + 2 * n_shards * n_shards) * 8

    @classmethod
    def create(cls, n_cores: int, n_shards: int) -> "SharedRoundBoard":
        """Allocate and zero-initialize a board (coordinator side)."""
        shm = shared_memory.SharedMemory(
            create=True, size=cls._nbytes(n_cores, n_shards))
        board = cls(n_cores, n_shards, shm)
        board.published[:] = INF
        board.vtime[:] = 0.0
        board.active[:] = 0
        board.adopt[:] = INF
        board.counts[:] = 0
        return board

    @classmethod
    def attach(cls, name: str, n_cores: int, n_shards: int) -> "SharedRoundBoard":
        """Attach to an existing board by name (worker side).

        No resource-tracker gymnastics are needed: both fork and spawn
        children share the coordinator's tracker process (spawn passes
        the tracker fd in its preparation data), so the worker's attach
        merely re-adds the already-tracked name, and the coordinator's
        ``unlink`` remains the single owner of the block's lifecycle.
        A worker-side ``unregister`` would clobber that shared
        registration and make the final unlink warn.
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(n_cores, n_shards, shm)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Drop the numpy views and unmap the block (all processes)."""
        self.published = self.vtime = self.active = None
        self.adopt = self.counts = None
        self.shm.close()

    def unlink(self) -> None:
        """Free the block (coordinator only, after all workers exited)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def encode_message(msg: Message) -> tuple:
    """Flatten one boundary-crossing message for the wire.

    Kept for direct (non-batched) use; the round protocol ships
    :func:`encode_batch` columns instead.
    """
    return (msg.kind, msg.src, msg.dst, msg.send_time, msg.size,
            msg.arrival, msg.payload, msg.tag)


def encode_batch(msgs: List[Message]) -> bytes:
    """Columnar, delta-encoded pickle of one edge's USER-message batch.

    The shard fence guarantees every boundary-crossing message is a
    USER message, so the kind column is dropped entirely; src/dst core
    ids are delta-encoded (consecutive messages on an edge overwhelmingly
    travel between the same few boundary cores, so deltas stay tiny);
    virtual times are shipped as raw floats — any re-encoding would
    risk the bit-exactness the backend is pinned to.
    """
    import pickle

    srcs = [m.src for m in msgs]
    dsts = [m.dst for m in msgs]
    cols = (
        tuple(_deltas(srcs)),
        tuple(_deltas(dsts)),
        tuple(m.send_time for m in msgs),
        tuple(m.size for m in msgs),
        tuple(m.arrival for m in msgs),
        tuple(m.payload for m in msgs),
        tuple(m.tag for m in msgs),
    )
    return pickle.dumps(cols, protocol=pickle.HIGHEST_PROTOCOL)


def decode_batch(blob: bytes) -> Iterable[tuple]:
    """Inverse of :func:`encode_batch`: yields ``inject_message`` field
    tuples in the sender's emission order (delivery determinism)."""
    import pickle

    dsrcs, ddsts, send_times, sizes, arrivals, payloads, tags = \
        pickle.loads(blob)
    srcs = accumulate(dsrcs)
    dsts = accumulate(ddsts)
    return [
        (MsgKind.USER, src, dst, st, sz, arr, pl, tg)
        for src, dst, st, sz, arr, pl, tg in zip(
            srcs, dsts, send_times, sizes, arrivals, payloads, tags)
    ]


def _deltas(values: List[int]) -> Iterable[int]:
    prev = 0
    for v in values:
        yield v - prev
        prev = v


def make_edge_channels(mp_ctx, partition) -> List[Dict[int, object]]:
    """One duplex pipe per shard pair.

    Returns ``edges`` with ``edges[sid][peer]`` the connection shard
    ``sid`` uses to talk to ``peer``; the matching end is
    ``edges[peer][sid]``.

    Every unordered pair gets a pipe, not just topologically adjacent
    shards: boundary-time planes travel through the shared round board,
    but USER messages may target *any* core in the mesh (``ctx.send``
    is unrestricted), so a shard can owe a batch to a shard it shares
    no mesh edge with.  Idle pipes cost a pair of fds each and are
    never polled (the board's count matrix says which to touch).
    """
    edges: List[Dict[int, object]] = [dict() for _ in range(partition.n_shards)]
    for a in range(partition.n_shards):
        for b in range(a + 1, partition.n_shards):
            conn_a, conn_b = mp_ctx.Pipe(duplex=True)
            edges[a][b] = conn_a
            edges[b][a] = conn_b
    return edges
