"""Inter-process plumbing for the sharded backend.

Workers exchange two kinds of traffic:

* **edge channels** — one duplex pipe per adjacent shard pair, carrying
  each round's boundary batch: the sender's published virtual times for
  its boundary cores plus any boundary-crossing USER messages;
* **control channels** — one duplex pipe per worker to the coordinator,
  carrying round commands (``go``/``rescue``/``adopt``/``stop``) and
  worker replies (``status``/``state``/``done``/``error``).

Everything shipped over a pipe is plain picklable data: messages are
flattened to tuples (the receiving worker rebuilds a real
:class:`~repro.core.messages.Message` via ``Machine.inject_message``),
and workloads travel as :class:`WorkloadSpec` descriptions that each
worker resolves locally through the deterministic
:func:`repro.workloads.get_workload` factories — workload roots
themselves are closures and cannot cross process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.messages import Message


@dataclass
class WorkloadSpec:
    """Picklable description of one root workload.

    The sharded backend re-creates the workload inside the worker that
    owns ``root_core``; because the workload factories are
    deterministic in ``(benchmark, scale, seed, memory)``, the rebuilt
    root is identical to the one a serial run would construct.

    Example::

        from repro.parallel import WorkloadSpec
        spec = WorkloadSpec("quicksort", scale="tiny", seed=0,
                            memory="shared", root_core=0)
    """

    benchmark: str
    scale: str = "small"
    seed: int = 0
    memory: str = "shared"
    root_core: int = 0
    kwargs: Dict = field(default_factory=dict)
    #: Optional ``"module:function"`` override: the function is imported
    #: in the worker and called with ``**kwargs``; it must return an
    #: object with a ``root`` attribute (e.g. a ``WorkloadRun``).  Used
    #: by tests and custom experiments whose roots are not registered
    #: benchmarks.
    factory: str = ""

    def resolve(self):
        """Instantiate the workload (a ``WorkloadRun``) in this process."""
        if self.factory:
            import importlib

            mod_name, _, fn_name = self.factory.partition(":")
            fn = getattr(importlib.import_module(mod_name), fn_name)
            return fn(**self.kwargs)
        from ..workloads import get_workload

        return get_workload(self.benchmark, scale=self.scale, seed=self.seed,
                            memory=self.memory, **self.kwargs)


def encode_message(msg: Message) -> tuple:
    """Flatten a boundary-crossing message for the wire.

    The sender's NoC replica already assigned ``arrival`` and counted
    the message; only data crosses the pipe.  The payload must be
    picklable — guaranteed for USER messages carrying application data,
    and the shard fence keeps every other (live-object-carrying) kind
    inside one worker.
    """
    return (msg.kind, msg.src, msg.dst, msg.send_time, msg.size,
            msg.arrival, msg.payload, msg.tag)


def make_edge_channels(mp_ctx, partition) -> List[Dict[int, object]]:
    """One duplex pipe per adjacent shard pair.

    Returns ``edges`` with ``edges[sid][peer]`` the connection shard
    ``sid`` uses to talk to ``peer``; the matching end is
    ``edges[peer][sid]``.
    """
    edges: List[Dict[int, object]] = [dict() for _ in range(partition.n_shards)]
    for a, b in partition.shard_pairs():
        conn_a, conn_b = mp_ctx.Pipe(duplex=True)
        edges[a][b] = conn_a
        edges[b][a] = conn_b
    return edges
