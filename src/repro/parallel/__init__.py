"""Sharded multiprocess execution backend (see docs/parallel.md).

The drift bound ``T`` of spatial synchronization is also the
conservative lookahead of a parallel discrete-event simulation: work
below ``global_min + T`` cannot be affected by anything the other
shards have not simulated yet.  This package exploits that to run
contiguous mesh regions in separate worker processes:

* :mod:`~repro.parallel.partition` — contiguous shard partitioning,
  boundary/proxy structure, and the semantic *fence* both backends
  honour when ``ArchConfig.shards > 0``;
* :mod:`~repro.parallel.channels` — picklable workload specs, message
  encoding and per-edge pipes;
* :mod:`~repro.parallel.worker` — the per-shard worker process;
* :mod:`~repro.parallel.coordinator` — the :class:`ShardedMachine`
  lockstep driver (windows, global shadow rescue, stats merge).
"""

from .channels import WorkloadSpec
from .coordinator import ShardedMachine
from .partition import Partition, contiguous_partition

__all__ = [
    "Partition",
    "ShardedMachine",
    "WorkloadSpec",
    "contiguous_partition",
]
