"""Spatial mesh partitioning for the sharded execution backend.

A :class:`Partition` splits the cores of one topology into ``n_shards``
contiguous bands of core ids.  On the row-major meshes used throughout
the paper's evaluation, contiguous id ranges are horizontal bands of
rows, so each shard is a spatially compact region whose only external
coupling is with the bands directly above and below it — exactly the
neighbour structure the drift bound ``T`` localizes.

The partition is pure data (tuples of ints), picklable, and cheap to
ship to spawned worker processes.  It is also the *fence* used by the
semantic shard mode (``ArchConfig.shards > 0``): the run-time system
restricts dispatch, queue-state gossip and steal victims to same-shard
neighbours, and distributed-memory cell homes are remapped into the
creating core's shard (:meth:`Partition.remap_home`).  Fencing is
applied identically on both backends, which is what makes a fenced
serial run and a sharded run of the same configuration bit-identical
(see docs/parallel.md).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..core.errors import SimConfigError
from ..network.topology import Topology


class Partition:
    """A fixed assignment of cores to contiguous shards.

    Attributes:
        n_cores: total cores in the machine.
        n_shards: number of shards.
        owner: tuple mapping core id -> shard id.
        shards: tuple of per-shard core-id tuples (each contiguous,
            ascending).
    """

    def __init__(self, ranges: Sequence[Tuple[int, int]], n_cores: int) -> None:
        self.n_cores = n_cores
        self.n_shards = len(ranges)
        self.shards: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(lo, hi)) for lo, hi in ranges)
        owner = [0] * n_cores
        for sid, cores in enumerate(self.shards):
            for cid in cores:
                owner[cid] = sid
        self.owner: Tuple[int, ...] = tuple(owner)
        # Filled in by contiguous_partition (needs the topology).
        self._proxies: Tuple[Tuple[int, ...], ...] = ()
        self._boundary: Tuple[Tuple[int, ...], ...] = ()
        self._peers: Tuple[Tuple[int, ...], ...] = ()

    # -- queries ---------------------------------------------------------
    def owner_of(self, cid: int) -> int:
        """Shard id owning core ``cid``."""
        return self.owner[cid]

    def cores_of(self, sid: int) -> Tuple[int, ...]:
        """Core ids owned by shard ``sid`` (ascending)."""
        return self.shards[sid]

    def same_shard(self, a: int, b: int) -> bool:
        """Whether two cores belong to the same shard."""
        return self.owner[a] == self.owner[b]

    def proxies_of(self, sid: int) -> Tuple[int, ...]:
        """Remote cores topologically adjacent to shard ``sid``.

        These are the *boundary proxy cores*: a shard worker holds them
        in its machine replica, anchored at the owning worker's
        published virtual time via
        :meth:`~repro.core.fabric.VirtualTimeFabric.set_proxy_time`.
        """
        return self._proxies[sid]

    def boundary_of(self, sid: int) -> Tuple[int, ...]:
        """Cores of shard ``sid`` with at least one out-of-shard
        neighbour; their published times must be shipped to peers at
        every round barrier."""
        return self._boundary[sid]

    def peers_of(self, sid: int) -> Tuple[int, ...]:
        """Shard ids topologically adjacent to shard ``sid``."""
        return self._peers[sid]

    def shard_pairs(self) -> List[Tuple[int, int]]:
        """Adjacent shard pairs ``(s1, s2)`` with ``s1 < s2``; one
        bidirectional channel is created per pair."""
        pairs = []
        for sid in range(self.n_shards):
            for peer in self._peers[sid]:
                if sid < peer:
                    pairs.append((sid, peer))
        return pairs

    def remap_home(self, home: int, creator_cid: int) -> int:
        """Map a distributed-cell home core into the creator's shard.

        Shard mode makes memory placement shard-local so DATA messages
        never cross a shard boundary.  The mapping is a pure function
        of ``(home, creator shard)`` — both backends compute the same
        placement, preserving bit-identity.  Spread is retained by
        indexing the shard's core tuple with the original home id.
        """
        cores = self.shards[self.owner[creator_cid]]
        return cores[home % len(cores)]

    def describe(self) -> str:
        """One-line human-readable summary."""
        sizes = ",".join(str(len(s)) for s in self.shards)
        return (f"partition {self.n_shards} shards over {self.n_cores} "
                f"cores (sizes {sizes})")


def contiguous_partition(topo: Topology, n_shards: int) -> Partition:
    """Split ``topo`` into ``n_shards`` balanced contiguous-id shards.

    Core ids are split into ``n_shards`` ranges whose sizes differ by at
    most one (the first ``n_cores % n_shards`` shards get the extra
    core).  Each shard's induced subgraph must be connected — on a
    row-major mesh this holds whenever each range spans complete or
    consecutive partial rows — otherwise a shard could contain cores
    that only communicate through another worker's region, and the
    boundary-channel graph would no longer match the topology.

    Raises:
        SimConfigError: for invalid shard counts or a disconnected
            shard region.
    """
    n = topo.n_cores
    if n_shards < 1:
        raise SimConfigError(f"need at least 1 shard, got {n_shards}")
    if n_shards > n:
        raise SimConfigError(
            f"cannot split {n} cores into {n_shards} shards")
    base, extra = divmod(n, n_shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for sid in range(n_shards):
        hi = lo + base + (1 if sid < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    part = Partition(ranges, n)

    # Derive boundary structure from the topology.
    owner = part.owner
    proxies: List[Tuple[int, ...]] = []
    boundary: List[Tuple[int, ...]] = []
    peers: List[Tuple[int, ...]] = []
    for sid, cores in enumerate(part.shards):
        prox: Dict[int, None] = {}
        bound: Dict[int, None] = {}
        peer: Dict[int, None] = {}
        for cid in cores:
            for j in topo.neighbors(cid):
                if owner[j] != sid:
                    prox[j] = None
                    bound[cid] = None
                    peer[owner[j]] = None
        proxies.append(tuple(sorted(prox)))
        boundary.append(tuple(sorted(bound)))
        peers.append(tuple(sorted(peer)))
    part._proxies = tuple(proxies)
    part._boundary = tuple(boundary)
    part._peers = tuple(peers)

    _validate_connected(topo, part)
    return part


def _validate_connected(topo: Topology, part: Partition) -> None:
    """Every shard's induced subgraph must be connected."""
    for sid, cores in enumerate(part.shards):
        if len(cores) <= 1:
            continue
        members: FrozenSet[int] = frozenset(cores)
        seen = {cores[0]}
        stack = [cores[0]]
        while stack:
            u = stack.pop()
            for v in topo.neighbors(u):
                if v in members and v not in seen:
                    seen.add(v)
                    stack.append(v)
        if len(seen) != len(cores):
            raise SimConfigError(
                f"shard {sid} is disconnected inside topology "
                f"'{topo.name}': {len(cores) - len(seen)} of its cores "
                f"are unreachable without leaving the shard; choose a "
                f"shard count that yields contiguous regions")
