"""Shard coordinator: window computation, rescue, stats merge.

The :class:`ShardedMachine` is the sharded backend's counterpart to
:class:`~repro.core.engine.Machine`.  It spawns one worker process per
shard (``fork`` where the host supports it — workers inherit the
parent's imports instead of booting fresh interpreters — else
``spawn``; see ``ArchConfig.worker_start_method``) and drives them
through lockstep **coordination rounds** over a
:class:`~repro.parallel.channels.SharedRoundBoard`:

1. broadcast ``("go", horizon, lift, waive)`` — the safe execution
   window is ``[_, global_min + window * T)`` under spatial sync (the
   drift bound makes everything below the horizon independent of work
   the other shards have not yet simulated), or unbounded for the
   ``unbounded`` policy; the exact shadow fixpoint computed from the
   previous round's global state sits in the board's adopt plane, and
   ``lift = (window - 1) * T`` is the extra drift permission the
   adaptive window grants (see below);
2. workers adopt/anchor from the board, drain last round's
   cross-shard USER-message batches, run up to ``cfg.round_batch``
   engine sub-rounds locally (stopping at the first boundary-crossing
   message), then publish boundary times and their (active, vtime)
   snapshot back to the board;
3. workers report a slim ``(progressed, sent, live, min_time)``
   status; the coordinator recomputes the horizon from the new global
   minimum and, under spatial sync, refreshes the adopt plane from the
   board's gathered state (see :meth:`ShardedMachine._refresh_adopt_plane`
   for why this runs every round, and why workers adopt it raise-only).

**Adaptive windows** (``cfg.adaptive_window``): while rounds ship no
cross-shard messages, the window multiplier doubles (up to
``cfg.window_max_factor``) and collapses back to 1 on the first
traffic burst — quiet regions synchronize every ``window * T`` cycles
instead of every ``T``.  The matching ``lift`` raises boundary
permissions by the same margin, so the extra drift this admits is
bounded by ``window_max_factor * T`` and only ever *relaxes*
scheduling: virtual times of shard-closed fenced runs are unaffected,
which is why bit-identity with serial is preserved (docs/parallel.md
has the full argument).

If a round makes no progress while work remains, an escalation ladder
engages: one *relief round* with an unbounded horizon (the window
itself can park the only core able to unblock another), then *waiver
rounds* forcing a slice on the globally-earliest stalled core (see the
escalation comment in ``_drive``); only a stall surviving a forced
slice is a genuine deadlock, mirroring the serial engine's diagnostics.

Total live-task count reaching zero ends the run; worker stats are then
merged (counters sum, per-kind message counts sum, completion virtual
time is the latest root finish), which is exactly how the serial
engine's stats decompose for a fenced run — the basis of the
bit-identity guarantee documented in docs/parallel.md.  Round-protocol
counters land in :attr:`ShardedMachine.protocol` so benchmark records
can explain *why* a number moved.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence

from ..arch.builder import build_topology
from ..core.errors import (SanitizerViolation, SimConfigError, SimDeadlock,
                           SimError)
from ..core.fabric import INF, exact_shadow_fixpoint
from ..core.stats import SimStats
from ..obs.registry import ROUND_MS_BOUNDS, WINDOW_BOUNDS
from .channels import (SharedRoundBoard, WorkloadSpec, make_edge_channels,
                       resolve_start_method)
from .partition import Partition, contiguous_partition
from .worker import worker_main

#: Scalar SimStats counters merged by summation across workers.
_SUM_FIELDS = (
    "actions", "compute_actions", "mem_accesses", "cell_accesses",
    "remote_cell_accesses", "context_switches", "tasks_started",
    "tasks_spawned_remote", "tasks_run_inline", "drift_stalls",
    "lock_waiver_runs", "out_of_order_msgs", "shadow_recomputes",
)

#: Sync policies the sharded backend supports.  The other policies
#: arbitrate through *global* referee state (a total event order, a
#: global quantum, ...) that has no shard-local decomposition.
_SUPPORTED_SYNC = ("spatial", "unbounded")


class ShardedMachine:
    """Multiprocess execution backend over a fenced configuration.

    Build one via :func:`repro.arch.build_backend` with
    ``cfg.backend == "sharded"``; run workloads with
    :meth:`run_workloads`.  Like the serial ``Machine`` it is
    single-use and exposes merged results on ``stats`` and round
    protocol counters on ``protocol``.

    Example::

        import dataclasses
        from repro.arch import build_backend, shared_mesh
        from repro.parallel import WorkloadSpec

        cfg = dataclasses.replace(shared_mesh(16), shards=2,
                                  backend="sharded")
        backend = build_backend(cfg)
        results = backend.run_workloads(
            [WorkloadSpec("quicksort", scale="tiny", root_core=0)])
    """

    def __init__(self, cfg) -> None:
        if cfg.shards < 1:
            raise SimConfigError("sharded backend needs shards >= 1")
        if cfg.sync not in _SUPPORTED_SYNC:
            raise SimConfigError(
                f"sharded backend supports sync policies "
                f"{_SUPPORTED_SYNC}, not {cfg.sync!r} (global-referee "
                f"policies have no shard-local decomposition)")
        if cfg.shadow_mode != "fast":
            raise SimConfigError(
                "sharded backend requires shadow_mode='fast'; exact "
                "mode needs a global recompute on every transition")
        self.cfg = cfg
        self.partition: Partition = contiguous_partition(
            build_topology(cfg), cfg.shards)
        self.stats = SimStats(n_cores=cfg.n_cores)
        self.rounds = 0
        self.rescues = 0
        self.reliefs = 0
        self.waivers = 0
        self.window_peak = 1.0
        #: Round-protocol counters, populated by :meth:`run_workloads`:
        #: rounds/rescues/reliefs/waivers, ``window_peak``,
        #: ``bytes_by_edge`` (pickled message bytes per directed shard
        #: edge; boundary time planes ship zero bytes), ``bytes_shipped``
        #: (their sum), ``worker_busy_s`` (summed worker wall time inside
        #: round handling) and ``parallel_efficiency``
        #: (``worker_busy_s / (wall * min(shards, host_cpus))``).
        self.protocol: Dict[str, object] = {}
        #: Merged canonical trace (``cfg.collect_trace`` only): workers
        #: each run a Tracer and ship their export with the done reply;
        #: :func:`repro.harness.trace.merge_traces` concatenates them for
        #: :func:`~repro.harness.trace.trace_digest`.  ``None`` otherwise.
        self.trace = None
        #: Coordinator-side telemetry (``cfg.telemetry``): merged with
        #: per-worker snapshots in :meth:`_finalize`, exposed via
        #: :meth:`telemetry_snapshot`.  ``worker_rounds`` maps shard id
        #: to that worker's ``(round_no, start_s, dur_s)`` host-round
        #: records and ``events`` holds coordinator escalation instants
        #: (wall clock) — both feed the Chrome-trace export.
        self.telemetry = None
        self.worker_rounds: Dict[int, list] = {}
        self.events: List[dict] = []
        self._merged_obs: Optional[dict] = None
        if cfg.telemetry:
            from ..obs import Telemetry

            self.telemetry = Telemetry(cfg.telemetry, cfg.n_cores)
        self._board: Optional[SharedRoundBoard] = None
        self._ran = False
        # Checkpoint/restore hooks; see run_workloads.
        self._checkpoint_every: Optional[int] = None
        self._checkpoint_sink = None
        self._verify_round: Optional[int] = None
        self._verify_states: Optional[List[dict]] = None

    # -- public API ------------------------------------------------------
    def run_workloads(
        self,
        specs: Sequence[WorkloadSpec],
        timeout: Optional[float] = 300.0,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink=None,
        verify_round: Optional[int] = None,
        verify_states: Optional[List[dict]] = None,
    ) -> List[object]:
        """Run the given workload roots to completion; return their results
        in spec order.

        ``timeout`` bounds each coordination step (per-worker reply
        wait), not the whole run; ``None`` disables it.

        Checkpointing (``repro.checkpoint``): with ``checkpoint_every``
        set, every that-many coordination rounds the coordinator pauses
        at the round barrier, asks each worker for its machine-state
        capture, and hands ``(round_no, [state, ...])`` to
        ``checkpoint_sink``.  With ``verify_round``/``verify_states``
        set, this run is a *restore replay*: at that round barrier each
        worker's capture must be bit-identical to the stored one —
        :class:`~repro.checkpoint.codec.CheckpointMismatchError`
        otherwise, including when the run ends before ever reaching the
        round.
        """
        if self._ran:
            raise SimError(
                "a ShardedMachine instance is single-use; build a new one")
        self._ran = True
        specs = list(specs)
        for spec in specs:
            if not 0 <= spec.root_core < self.cfg.n_cores:
                raise SimConfigError(
                    f"root core {spec.root_core} out of range")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SimConfigError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if (verify_states is not None
                and len(verify_states) != self.partition.n_shards):
            from ..checkpoint.codec import CheckpointError

            raise CheckpointError(
                f"snapshot holds {len(verify_states)} shard states but "
                f"this run has {self.partition.n_shards} shards; restoring "
                "onto a different shard count is not supported")
        self._checkpoint_every = checkpoint_every
        self._checkpoint_sink = checkpoint_sink
        self._verify_round = verify_round
        self._verify_states = verify_states
        t_start = time.perf_counter()
        self._t0 = t_start  # wall-clock origin for telemetry events
        self._profiler = None
        if (self.telemetry is not None
                and "profile" in self.telemetry.parts):
            from ..obs.profiler import SamplingProfiler

            # Samples coordinator phases (dispatch/wait_workers/
            # coordinate); each worker runs its own profiler in-process.
            self._profiler = SamplingProfiler(self.telemetry).start()
        mp_ctx = multiprocessing.get_context(
            resolve_start_method(self.cfg.worker_start_method))
        part = self.partition
        topo = build_topology(self.cfg)
        self._neighbors = [topo.neighbors(c)
                           for c in range(self.cfg.n_cores)]
        board = SharedRoundBoard.create(self.cfg.n_cores, part.n_shards)
        self._board = board
        edges = make_edge_channels(mp_ctx, part)
        ctrl: List[object] = []
        workers: List[object] = []
        try:
            for sid in range(part.n_shards):
                parent_conn, child_conn = mp_ctx.Pipe(duplex=True)
                proc = mp_ctx.Process(
                    target=worker_main,
                    args=(sid, self.cfg, specs, edges[sid], child_conn,
                          board.name),
                    name=f"repro-shard-{sid}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                ctrl.append(parent_conn)
                workers.append(proc)
            results = self._drive(specs, ctrl, timeout)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
            for proc in workers:
                proc.join(timeout=5.0)
            board.close()
            board.unlink()
            self._board = None
            if self._profiler is not None:  # error path; normal stop is
                self._profiler.stop()       # in _finalize, pre-merge
                self._profiler = None
        self.stats.wall_seconds = wall = time.perf_counter() - t_start
        busy = self.protocol.get("worker_busy_s", 0.0)
        slots = min(part.n_shards, os.cpu_count() or 1)
        self.protocol["parallel_efficiency"] = (
            round(busy / (wall * slots), 4) if wall > 0 else 0.0)
        return results

    # -- coordination loop ----------------------------------------------
    def _drive(self, specs, ctrl, timeout) -> List[object]:
        cfg = self.cfg
        spatial = cfg.sync == "spatial"
        T = cfg.drift_bound
        adaptive = (spatial and cfg.adaptive_window
                    and cfg.window_max_factor > 1.0)
        # Round 1: every core sits at virtual time 0, nothing to adopt
        # (the board's adopt plane starts at INF).
        horizon = T if spatial else INF
        window = 1.0
        lift = self._window_lift(window)
        # Escalation ladder for a no-progress round (spatial only —
        # the unbounded policy gates nothing, so its stall is final):
        #   stall 1 — one *relief round* with an unbounded horizon.  The
        #             window can park the only core able to unblock a
        #             below-horizon core: e.g. an in-flight TASK_SPAWN
        #             pins the spawner's drift floor through the birth
        #             ledger until the (parked) destination core delivers
        #             it.  Serial has no horizon, so the deliverer would
        #             simply run; the relief round restores exactly that
        #             behaviour, with drift checks against the published
        #             times still bounding execution locally.
        #   stall 2 — one *waiver round*: the shard holding the global
        #             minimum forces one slice on its earliest core,
        #             drift check bypassed (``run_shard_waiver``).  The
        #             round-based interleaving can wedge with every core
        #             legitimately drift-stalled against a recv-blocked
        #             laggard; serial trajectories sidestep such states,
        #             and the waiver escapes them at minimal, counted
        #             accuracy cost.
        #   stall 3 — even the forced slice produced nothing: genuine
        #             deadlock (there is no work left to force).
        stall = 0
        tel = self.telemetry
        if tel is not None:
            window_hist = tel.registry.histogram(
                "parallel.window", WINDOW_BOUNDS)
            round_hist = tel.registry.histogram(
                "parallel.round_wall_ms", ROUND_MS_BOUNDS)
        while True:
            waive_sid = None
            if spatial and stall >= 2:
                waive_sid = min(range(len(ctrl)),
                                key=lambda i: statuses[i][4])
                self.waivers += 1
                if tel is not None:
                    self.events.append(
                        {"name": "waiver",
                         "ts_s": time.perf_counter() - self._t0,
                         "shard": waive_sid})
            if cfg.sanitize:
                self._check_lift(lift)
            round_t0 = time.perf_counter()
            if tel is not None:
                tel.phase = "dispatch"
            for sid, conn in enumerate(ctrl):
                conn.send(("go", horizon, lift, sid == waive_sid))
            if tel is not None:
                tel.phase = "wait_workers"
            statuses = [self._expect(conn, "status", timeout) for conn in ctrl]
            if tel is not None:
                tel.phase = "coordinate"
                window_hist.observe(window)
                round_hist.observe(
                    (time.perf_counter() - round_t0) * 1e3)
            self.rounds += 1
            live = sum(s[3] for s in statuses)
            if live == 0:
                break
            # Round barrier: workers are blocked on the next command, so
            # their machine state is frozen — the safe point for
            # checkpoint capture and restore verification.
            if self._verify_round == self.rounds:
                self._verify_worker_states(ctrl, timeout)
            elif (self._checkpoint_every is not None
                    and self.rounds % self._checkpoint_every == 0):
                self._checkpoint_sink(
                    self.rounds, self._collect_worker_states(ctrl, timeout))
            sent_total = sum(s[2] for s in statuses)
            progressed = any(s[1] for s in statuses) or sent_total > 0
            global_min = min(s[4] for s in statuses)
            if spatial:
                self._refresh_adopt_plane()
            if progressed:
                stall = 0
            else:
                stall += 1
                if global_min == INF or not spatial or stall > 2:
                    self._deadlock(live, statuses)
                if stall == 1:
                    self.reliefs += 1
                    if tel is not None:
                        self.events.append(
                            {"name": "relief",
                             "ts_s": time.perf_counter() - self._t0})
            if adaptive:
                # Quiet round: nothing crossed a boundary, so shards are
                # provably independent up to the current permissions —
                # widen the window to amortize the next barrier.  Any
                # traffic collapses it back to the paper's T.
                if sent_total == 0:
                    window = min(window * 2.0, cfg.window_max_factor)
                    if window > self.window_peak:
                        self.window_peak = window
                else:
                    window = 1.0
                lift = self._window_lift(window)
            if spatial and stall == 0:
                horizon = global_min + T * window
            else:
                horizon = INF
        if (self._verify_round is not None
                and self.rounds < self._verify_round):
            from ..checkpoint.codec import CheckpointMismatchError

            raise CheckpointMismatchError(
                f"restore replay completed after {self.rounds} rounds, "
                f"before reaching the snapshot's round "
                f"{self._verify_round}; the replay did not reproduce the "
                "checkpointed trajectory")
        for conn in ctrl:
            conn.send(("stop",))
        return self._finalize(specs, ctrl, timeout)

    def _collect_worker_states(self, ctrl, timeout) -> List[dict]:
        """Gather every worker's machine-state capture at a barrier."""
        for conn in ctrl:
            conn.send(("snapshot",))
        return [self._expect(conn, "state", timeout)[1] for conn in ctrl]

    def _verify_worker_states(self, ctrl, timeout) -> None:
        from ..checkpoint.state import verify_machine_state

        for sid, actual in enumerate(self._collect_worker_states(ctrl,
                                                                 timeout)):
            try:
                verify_machine_state(self._verify_states[sid], actual)
            except Exception as exc:
                raise type(exc)(f"shard {sid}: {exc}") from None

    def _window_lift(self, window: float) -> float:
        """Extra drift permission shipped with a round's ``go``: the
        margin by which the adaptive window exceeds the paper's T.
        Factored out so the sanitizer (coordinator-side ``_check_lift``,
        worker-side ``Sanitizer.begin_round``) guards a single
        definition of the protocol invariant
        ``0 <= lift <= (window_max_factor - 1) * T``."""
        return (window - 1.0) * self.cfg.drift_bound

    def _check_lift(self, lift: float) -> None:
        cfg = self.cfg
        bound = (cfg.window_max_factor - 1.0) * cfg.drift_bound
        if not -1e-9 <= lift <= bound * (1.0 + 1e-12) + 1e-9:
            raise SanitizerViolation(
                "window-lift",
                f"coordinator would grant drift lift {lift!r} outside "
                f"[0, {bound!r}] (window_max_factor="
                f"{cfg.window_max_factor:g}, T={cfg.drift_bound:g})",
                bound=bound,
                details={"lift": lift,
                         "window_max_factor": cfg.window_max_factor})

    def _refresh_adopt_plane(self) -> None:
        """Per-round exact shadow fixpoint from the board's global
        (active, vtime) planes into its adopt plane — the sharded
        analogue of the serial ``refresh_shadows``, run every round
        rather than only on a no-runnable rescue.

        Fast-mode relax waves are worker-local, so the shadow of an
        idle region freezes at whatever value it had when the cores
        that would relax it crossed into another shard — and every
        core drift-checking against that frozen floor eventually
        stalls for good.  Recomputing the fixpoint from true global
        state each round keeps those shadows moving.

        Workers adopt the values *raise-only* (``adopt_shadow`` /
        ``set_proxy_time``), matching the serial fast mode's monotone
        published times.  Lowering a published value is never safe
        here: it is a permission already granted, and cores that ran
        under it would retroactively sit above their floor by more
        than the drift bound — a mutually-stalled wedge the serial
        engine (equally permissive between its rescues) never reaches.
        The bounded inaccuracy this admits is the same one the serial
        fast mode admits, and the paper's accuracy figures absorb.
        """
        self.rescues += 1
        board = self._board
        board.adopt[:] = exact_shadow_fixpoint(
            self._neighbors, board.active, board.vtime,
            self.cfg.drift_bound)

    def _finalize(self, specs, ctrl, timeout) -> List[object]:
        results: Dict[int, object] = {}
        finishes: Dict[int, Optional[float]] = {}
        worker_stats: List[SimStats] = []
        bytes_by_edge: Dict[str, int] = {}
        busy_total = 0.0
        traces = []
        obs_snaps = []
        for sid, conn in enumerate(ctrl):
            reply = self._expect(conn, "done", timeout)
            worker_stats.append(reply[1])
            results.update(reply[2])
            finishes.update(reply[3])
            for peer, nbytes in sorted(reply[4].items()):
                if nbytes:
                    bytes_by_edge[f"{sid}->{peer}"] = nbytes
            busy_total += reply[5]
            if reply[6] is not None:
                traces.append(reply[6])
            # The telemetry snapshot is the (optional) 8th element; stub
            # workers in the protocol tests send 7-tuples.
            snap = reply[7] if len(reply) > 7 else None
            if snap is not None:
                self.worker_rounds[sid] = snap.pop("host_rounds", [])
                obs_snaps.append(snap)
        if traces:
            from ..harness.trace import merge_traces

            self.trace = merge_traces(traces)
        missing = [i for i in range(len(specs)) if i not in results]
        if missing:
            raise SimError(
                f"workload specs {missing} produced no result; "
                f"check their root_core assignments")
        self._merge_stats(worker_stats, finishes)
        self.protocol = {
            "rounds": self.rounds,
            "rescues": self.rescues,
            "reliefs": self.reliefs,
            "waivers": self.waivers,
            "window_peak": self.window_peak,
            "bytes_by_edge": bytes_by_edge,
            "bytes_shipped": sum(bytes_by_edge.values()),
            "worker_busy_s": round(busy_total, 6),
        }
        tel = self.telemetry
        if tel is not None:
            from ..obs import merge_snapshots

            if self._profiler is not None:
                self._profiler.stop()  # lands in tel.profile pre-snapshot
                self._profiler = None

            # Mirror the protocol counters into the registry so one
            # metrics.json tells the whole story, then fold the worker
            # snapshots in exactly like stats merge above.
            counters = tel.counters
            counters["parallel.rounds"] += self.rounds
            counters["parallel.rescues"] += self.rescues
            counters["parallel.reliefs"] += self.reliefs
            counters["parallel.waivers"] += self.waivers
            counters["parallel.bytes_shipped"] += sum(bytes_by_edge.values())
            for edge, nbytes in bytes_by_edge.items():
                counters[f"parallel.bytes_edge.{edge}"] += nbytes
            tel.registry.gauge_max("parallel.window_peak", self.window_peak)
            self._merged_obs = merge_snapshots([tel.snapshot()] + obs_snaps)
        return [results[i] for i in range(len(specs))]

    def telemetry_snapshot(self) -> Optional[dict]:
        """Merged telemetry (coordinator + workers); ``None`` when
        ``cfg.telemetry`` is off or the run has not finished."""
        return self._merged_obs

    def _merge_stats(self, worker_stats, finishes) -> None:
        merged = self.stats
        for st in worker_stats:
            for name in _SUM_FIELDS:
                setattr(merged, name, getattr(merged, name) + getattr(st, name))
            merged.messages_by_kind.update(st.messages_by_kind)
            merged.parallelism_samples.extend(st.parallelism_samples)
            for cid, busy in st.core_busy_cycles.items():
                if busy:
                    merged.core_busy_cycles[cid] = busy
            for key, value in st.noc.items():
                if isinstance(value, (int, float)):
                    merged.noc[key] = merged.noc.get(key, 0) + value
        if finishes and all(f is not None for f in finishes.values()):
            merged.completion_vtime = max(finishes.values())
        else:
            merged.completion_vtime = max(
                (st.completion_vtime for st in worker_stats), default=0.0)

    # -- plumbing --------------------------------------------------------
    def _expect(self, conn, tag: str, timeout):
        """Receive one worker reply, surfacing worker errors/timeouts."""
        if timeout is not None and not conn.poll(timeout):
            raise SimError(
                f"shard worker did not reply within {timeout}s "
                f"(waiting for {tag!r})")
        reply = conn.recv()
        if reply[0] == "violation":
            _, sid, check, message, info, trace = reply
            prefix = f"[sanitize:{check}] "
            if message.startswith(prefix):
                message = message[len(prefix):]
            raise SanitizerViolation(
                check, f"shard worker {sid}: {message}",
                core=info.get("core"), vtime=info.get("vtime"),
                bound=info.get("bound"),
                details=dict(info.get("details") or {}, worker_trace=trace))
        if reply[0] == "error":
            _, sid, brief, trace = reply
            raise SimError(
                f"shard worker {sid} failed: {brief}\n{trace}")
        if reply[0] != tag:
            raise SimError(
                f"protocol error: expected {tag!r}, got {reply[0]!r}")
        return reply

    def _deadlock(self, live, statuses) -> None:
        # Leave the protocol counters inspectable on the (dead) backend:
        # the diagnostics travel with the exception, but tests and
        # harness code read ``backend.protocol`` uniformly.
        self.protocol = {
            "rounds": self.rounds,
            "rescues": self.rescues,
            "reliefs": self.reliefs,
            "waivers": self.waivers,
            "window_peak": self.window_peak,
            "bytes_by_edge": {},
            "bytes_shipped": 0,
            "worker_busy_s": 0.0,
        }
        raise SimDeadlock(
            f"sharded run cannot make progress: {live} live tasks, "
            f"no runnable work even in an unbounded relief round",
            diagnostics={
                "rounds": self.rounds,
                "rescues": self.rescues,
                "reliefs": self.reliefs,
                "waivers": self.waivers,
                "per_shard_live": [s[3] for s in statuses],
                "per_shard_min_time": [s[4] for s in statuses],
            },
        )

    def describe(self) -> str:
        """One-line backend summary (CLI banner)."""
        cfg = self.cfg
        extras = f"batch={cfg.round_batch}"
        if cfg.adaptive_window and cfg.sync == "spatial":
            extras += f", window<=x{cfg.window_max_factor:g}"
        if self.telemetry is not None:
            extras += f", telemetry {self.telemetry.describe()}"
        return (f"sharded backend: {self.partition.describe()}, "
                f"sync={cfg.sync} T={cfg.drift_bound}, {extras}, "
                f"start={resolve_start_method(cfg.worker_start_method)}")
