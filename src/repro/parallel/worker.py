"""Shard worker process: drives one region of the mesh.

Each worker builds a complete (fenced) machine replica from the shared
``ArchConfig`` — every core, the full NoC, the full fabric — but only
*drives* the cores its shard owns (``Machine.set_shard_scope``).  The
remote cores it is adjacent to act as **boundary proxy cores**: they
never execute, but the fabric anchors them at the owning worker's
published virtual times (``set_proxy_time``) so local drift checks and
relax waves see true values instead of shadowing over them.

The worker is lockstep-driven by the coordinator:

``("go", horizon, adopt, waive)``
    First apply the coordinator-computed exact shadow fixpoint from the
    previous round's global state (``adopt``; ``None`` on round 1 and
    under the unbounded policy): owned idle cores through
    ``fabric.adopt_shadow``, proxies through ``fabric.set_proxy_time``
    — both raise-only, matching the serial fast mode's monotone
    published times; the fixpoint exists to *unfreeze* shadows whose
    relaxing cores live in another shard, never to revoke permissions
    already granted.  When ``waive`` is set (coordinator escalation
    after a stalled relief round), force one slice on the earliest
    owned core first (``run_shard_waiver``).  Then run owned cores
    until quiescent, drift-stalled or parked at ``horizon``;
    exchange one boundary batch with every peer shard (send first, then
    receive — pipes buffer, so this cannot deadlock); reply with a
    status tuple that carries the owned cores' (active, vtime) state
    for the next fixpoint.
``("stop",)``
    Finalize stats and reply with results.

Module-level entry point (``worker_main``) so the ``spawn`` start
method can import it in the child process.
"""

from __future__ import annotations

import traceback
from typing import Dict, List

from ..arch.builder import build_machine
from ..core.errors import ShardBoundaryError
from ..core.fabric import INF
from ..core.messages import Message, MsgKind
from .channels import encode_message


def worker_main(sid: int, cfg, specs, edge_conns: Dict[int, object],
                ctrl_conn) -> None:
    """Process entry point for shard ``sid``.

    ``edge_conns`` maps peer shard id -> duplex connection;
    ``ctrl_conn`` is the coordinator control channel.
    """
    try:
        _worker_loop(sid, cfg, specs, edge_conns, ctrl_conn)
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            ctrl_conn.send(("error", sid, repr(exc),
                            traceback.format_exc()))
        except Exception:
            pass


def _worker_loop(sid, cfg, specs, edge_conns, ctrl_conn) -> None:
    machine = build_machine(cfg)
    part = machine.fence
    owned = part.cores_of(sid)
    owned_set = set(owned)
    boundary = part.boundary_of(sid)
    peers = part.peers_of(sid)  # sorted; iteration order is deterministic

    outbox: List[Message] = []

    def foreign_sink(msg: Message) -> None:
        if msg.kind is not MsgKind.USER:
            raise ShardBoundaryError(
                f"{msg.kind.name} message {msg.src}->{msg.dst} crosses the "
                f"shard {sid} boundary; run-time protocol messages carry "
                f"live objects and must stay shard-local (fence hole?)")
        outbox.append(msg)

    machine.set_shard_scope(owned_set, foreign_sink)
    machine.begin_run()
    roots = []  # (spec index, Task)
    for i, spec in enumerate(specs):
        if spec.root_core in owned_set:
            workload = spec.resolve()
            roots.append((i, machine.seed_root(workload.root, (),
                                               spec.root_core)))

    fabric = machine.fabric
    report_state = cfg.sync == "spatial"
    while True:
        cmd = ctrl_conn.recv()
        op = cmd[0]
        if op == "go":
            adopt = cmd[2]
            if adopt:
                for cid, value in adopt.items():
                    if value == INF:
                        continue
                    if cid in owned_set:
                        fabric.adopt_shadow(cid, value)
                    else:
                        fabric.set_proxy_time(cid, value)
            progressed = bool(cmd[3]) and machine.run_shard_waiver()
            progressed = machine.run_shard_round(cmd[1]) or progressed
            # Boundary batch out: published times of our boundary cores
            # plus any cross-shard USER messages, grouped by owner.
            by_peer: Dict[int, list] = {p: [] for p in peers}
            sent = len(outbox)
            for msg in outbox:
                by_peer[part.owner_of(msg.dst)].append(encode_message(msg))
            outbox.clear()
            published = {cid: fabric.published[cid] for cid in boundary}
            for p in peers:
                edge_conns[p].send((published, by_peer[p]))
            # Boundary batch in: anchor proxies, then inject messages.
            # Peers are visited in sorted order and each batch preserves
            # the sender's emission order, so delivery is deterministic.
            for p in peers:
                peer_pub, msgs = edge_conns[p].recv()
                for cid, value in peer_pub.items():
                    if value != INF:
                        fabric.set_proxy_time(cid, value)
                for fields in msgs:
                    machine.inject_message(*fields)
            state = ([(cid, fabric.active[cid], fabric.vtime[cid])
                      for cid in owned] if report_state else None)
            ctrl_conn.send(("status", progressed, sent, machine.live_tasks,
                            machine.shard_min_time(), state))
        elif op == "stop":
            machine.finish_run()
            results = {i: task.result for i, task in roots}
            finishes = {i: task.finish_time for i, task in roots}
            ctrl_conn.send(("done", machine.stats, results, finishes))
            return
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown coordinator command {op!r}")
