"""Shard worker process: drives one region of the mesh.

Each worker builds a complete (fenced) machine replica from the shared
``ArchConfig`` — every core, the full NoC, the full fabric — but only
*drives* the cores its shard owns (``Machine.set_shard_scope``).  The
remote cores it is adjacent to act as **boundary proxy cores**: they
never execute, but the fabric anchors them at the owning worker's
published virtual times (``set_proxy_time``) so local drift checks and
relax waves see true values instead of shadowing over them.

The worker is driven by the coordinator through the shared round board
(:class:`~repro.parallel.channels.SharedRoundBoard`) plus a slim
control pipe:

``("go", horizon, lift, waive)``
    1. Adopt the coordinator's exact-shadow fixpoint from the board's
       *adopt plane* (owned idle cores, raise-only) and re-anchor every
       boundary proxy from the peers' published plane and the adopt
       plane, plus the adaptive-window ``lift`` — the extra drift
       permission ``(window - 1) * T`` the coordinator granted for this
       round (see docs/parallel.md).
    2. Drain any cross-shard USER-message batches peers shipped last
       round (the board's count matrix says which pipes to touch).
    3. When ``waive`` is set (coordinator escalation after a stalled
       relief round), force one slice on the earliest owned core
       (``run_shard_waiver``).  Then run up to ``cfg.round_batch``
       engine sub-rounds, re-running the *scoped* exact shadow fixpoint
       (``Machine.refresh_shard_shadows``) between sub-rounds so
       shadows frozen mid-batch keep moving — and stopping the moment a
       boundary-crossing message is emitted, work runs out, or a
       sub-round can neither progress nor raise a shadow.
    4. Publish boundary times and the (active, vtime) snapshot to the
       board, ship message batches (counts into the board, columns over
       the edge pipes), and reply with a slim status tuple.
``("snapshot",)``
    Reply with this worker's machine-state capture
    (``repro.checkpoint.state``) — sent at a round barrier, where no
    slice is in flight and the capture is a pure read.
``("stop",)``
    Finalize stats and reply with results plus per-edge byte counts and
    this worker's cumulative busy wall time.

Module-level entry point (``worker_main``) so the ``spawn`` start
method can import it in the child process; under ``fork`` the child
simply inherits it.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List

import numpy as np

from ..arch.builder import build_machine
from ..core.errors import SanitizerViolation, ShardBoundaryError
from ..core.fabric import INF
from ..core.messages import Message, MsgKind
from .channels import SharedRoundBoard, decode_batch, encode_batch


def worker_main(sid: int, cfg, specs, edge_conns: Dict[int, object],
                ctrl_conn, board_name: str) -> None:
    """Process entry point for shard ``sid``.

    ``edge_conns`` maps peer shard id -> duplex connection;
    ``ctrl_conn`` is the coordinator control channel; ``board_name``
    identifies the shared round board to attach to.
    """
    try:
        _worker_loop(sid, cfg, specs, edge_conns, ctrl_conn, board_name)
    except SanitizerViolation as exc:  # structured: re-raised coordinator-side
        try:
            ctrl_conn.send(("violation", sid, exc.check, str(exc),
                            {"core": exc.core, "vtime": exc.vtime,
                             "bound": exc.bound, "details": exc.details},
                            traceback.format_exc()))
        except Exception:
            pass
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            ctrl_conn.send(("error", sid, repr(exc),
                            traceback.format_exc()))
        except Exception:
            pass


def _worker_loop(sid, cfg, specs, edge_conns, ctrl_conn, board_name) -> None:
    machine = build_machine(cfg)
    part = machine.fence
    owned = part.cores_of(sid)
    owned_set = set(owned)
    boundary = part.boundary_of(sid)
    proxies = part.proxies_of(sid)
    # Message batches may flow between *any* two shards (ctx.send is
    # unrestricted), not only mesh-adjacent ones; sorted order keeps
    # drain/ship iteration deterministic.
    peers = tuple(s for s in range(part.n_shards) if s != sid)
    board = SharedRoundBoard.attach(board_name, cfg.n_cores, part.n_shards)

    outbox: List[Message] = []

    def foreign_sink(msg: Message) -> None:
        if msg.kind is not MsgKind.USER:
            raise ShardBoundaryError(
                f"{msg.kind.name} message {msg.src}->{msg.dst} crosses the "
                f"shard {sid} boundary; run-time protocol messages carry "
                f"live objects and must stay shard-local (fence hole?)")
        outbox.append(msg)

    machine.set_shard_scope(owned_set, foreign_sink)
    machine.begin_run()
    roots = []  # (spec index, Task)
    for i, spec in enumerate(specs):
        if spec.root_core in owned_set:
            workload = spec.resolve()
            roots.append((i, machine.seed_root(workload.root, (),
                                               spec.root_core)))

    fabric = machine.fabric
    sanitizer = machine.sanitizer
    telemetry = machine.telemetry  # set by the builder when cfg.telemetry
    t_base = None  # wall-clock origin for this worker's host-round track
    profiler = None
    if telemetry is not None and "profile" in telemetry.parts:
        from ..obs.profiler import SamplingProfiler

        profiler = SamplingProfiler(telemetry).start()
    tracer = None
    if cfg.collect_trace:
        from ..harness.trace import Tracer

        tracer = Tracer(machine)
    spatial = cfg.sync == "spatial"
    # Sub-round batching only pays under spatial sync: the unbounded
    # policy gates nothing, so one run to quiescence is already maximal.
    batch_cap = cfg.round_batch if spatial else 1
    # Plane publication (step 4) is a pure float64 gather/scatter from
    # the machine's struct-of-arrays plane into the shared board, so the
    # vectorized path writes bit-identical values; the scalar loop stays
    # as the reference-kernel path.
    soa = machine.soa
    vector_pub = machine.engine_kernel != "python"
    owned_idx = np.asarray(owned, dtype=np.intp)
    boundary_idx = np.asarray(boundary, dtype=np.intp)
    counts = board.counts
    bytes_to: Dict[int, int] = {p: 0 for p in peers}
    busy = 0.0
    round_no = 0
    try:
        while True:
            cmd = ctrl_conn.recv()
            op = cmd[0]
            if op == "go":
                t0 = time.perf_counter()
                if t_base is None:
                    t_base = t0
                _, horizon, lift, waive = cmd
                if sanitizer is not None:
                    sanitizer.begin_round(lift, cfg.window_max_factor)
                prev = (round_no - 1) & 1
                cur = round_no & 1
                # 1a. Owned idle cores adopt the coordinator fixpoint
                # (+ the window lift) raise-only; stale plane values
                # from earlier rounds are harmless for the same reason.
                if spatial:
                    adopt = board.adopt
                    for cid in owned:
                        v = adopt[cid]
                        if v != INF:
                            fabric.adopt_shadow(cid, v + lift)
                    # 1b. Proxies anchor at the stronger of the owning
                    # worker's published time (plane, previous parity)
                    # and the fixpoint value, plus the lift.
                    pub_prev = board.published[prev]
                    for cid in proxies:
                        v = pub_prev[cid]
                        a = adopt[cid]
                        if a != INF and (v == INF or a > v):
                            v = a
                        if v != INF:
                            fabric.set_proxy_time(cid, v + lift)
                else:
                    pub_prev = board.published[prev]
                    for cid in proxies:
                        v = pub_prev[cid]
                        if v != INF:
                            fabric.set_proxy_time(cid, v)
                # 2. Drain last round's message batches.  Peers are
                # visited in sorted order and each batch preserves the
                # sender's emission order, so delivery is deterministic.
                for p in peers:
                    if counts[prev, p, sid]:
                        for fields in decode_batch(edge_conns[p].recv_bytes()):
                            machine.inject_message(*fields)
                # 3. Run the sub-round batch.
                progressed = bool(waive) and machine.run_shard_waiver()
                sub = 0
                while True:
                    ran = machine.run_shard_round(horizon)
                    progressed = ran or progressed
                    sub += 1
                    if (outbox or sub >= batch_cap
                            or not machine.shard_has_work()):
                        break
                    # A further sub-round can only differ if a shadow
                    # rose; the scoped fixpoint is idempotent, so this
                    # terminates (run -> raise -> run -> no raise).
                    if not machine.refresh_shard_shadows():
                        break
                # 4. Publish planes, ship batches, report status.
                vt_plane = board.vtime
                act_plane = board.active
                pub_cur = board.published[cur]
                if vector_pub:
                    vt_plane[owned_idx] = soa.vtime_np[owned_idx]
                    act_plane[owned_idx] = soa.active_np[owned_idx]
                    pub_cur[boundary_idx] = soa.published_np[boundary_idx]
                else:
                    for cid in owned:
                        vt_plane[cid] = fabric.vtime[cid]
                        act_plane[cid] = 1 if fabric.active[cid] else 0
                    for cid in boundary:
                        pub_cur[cid] = fabric.published[cid]
                sent = len(outbox)
                if sent:
                    by_peer: Dict[int, list] = {p: [] for p in peers}
                    for msg in outbox:
                        by_peer[part.owner_of(msg.dst)].append(msg)
                    outbox.clear()
                    for p in peers:
                        counts[cur, sid, p] = len(by_peer[p])
                        if by_peer[p]:
                            blob = encode_batch(by_peer[p])
                            bytes_to[p] += len(blob)
                            edge_conns[p].send_bytes(blob)
                else:
                    counts[cur, sid, :] = 0
                round_no += 1
                dt = time.perf_counter() - t0
                busy += dt
                if telemetry is not None:
                    telemetry.host_rounds.append((round_no - 1,
                                                  t0 - t_base, dt))
                    telemetry.phase = "idle"  # waiting for the next "go"
                ctrl_conn.send(("status", progressed, sent,
                                machine.live_tasks,
                                machine.shard_min_time()))
            elif op == "snapshot":
                # Round barrier: no slice in flight, inboxes and planes
                # frozen — the safe point for checkpoint capture
                # (repro.checkpoint).  Capture is a pure read.
                from ..checkpoint.state import capture_machine_state

                ctrl_conn.send(("state", capture_machine_state(machine)))
            elif op == "stop":
                machine.finish_run()
                results = {i: task.result for i, task in roots}
                finishes = {i: task.finish_time for i, task in roots}
                trace = tracer.export() if tracer is not None else None
                if profiler is not None:
                    profiler.stop()  # folds samples into the snapshot
                obs = (telemetry.snapshot()
                       if telemetry is not None else None)
                ctrl_conn.send(("done", machine.stats, results, finishes,
                                bytes_to, busy, trace, obs))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown coordinator command {op!r}")
    finally:
        board.close()
