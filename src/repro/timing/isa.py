"""Instruction-class cost model.

SiMany does not emulate an ISA.  Instead, every *block* (a straight piece of
code with no interaction with other architectural components) is annotated
with the number of instructions it executes, grouped by class.  All
instructions within a class share a single cycle cost (paper, Section V).

The default cost table is flavoured after the 32-bit PowerPC 405 scalar
5-stage pipeline the paper simulates: single-cycle integer ALU operations,
a multi-cycle integer multiply, and slower floating-point operations
(the 405 has no FPU; FP work is several cycles per operation once modelled
at this level of abstraction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping


class InstrClass(enum.Enum):
    """Instruction classes distinguished by the timing model.

    The paper groups the ISA into classes including unconditional branches,
    conditional branches, common integer arithmetic, integer multiply,
    simple floating-point arithmetic and floating-point multiply/divide.
    """

    # Enum.__hash__ hashes the member name string on every dict lookup;
    # instruction classes key every cost-table and block-annotation dict,
    # so use identity hashing (consistent with Enum's identity equality).
    __hash__ = object.__hash__

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH_UNCOND = "branch_uncond"
    BRANCH_COND = "branch_cond"
    NOP = "nop"


#: Default per-class costs, in cycles, for a scalar in-order 5-stage core.
DEFAULT_COSTS: Dict[InstrClass, float] = {
    InstrClass.INT_ALU: 1.0,
    InstrClass.INT_MUL: 4.0,
    InstrClass.INT_DIV: 35.0,
    InstrClass.FP_ADD: 5.0,
    InstrClass.FP_MUL: 6.0,
    InstrClass.FP_DIV: 30.0,
    InstrClass.LOAD: 1.0,   # L1-hit component; cache models add miss penalties
    InstrClass.STORE: 1.0,
    InstrClass.BRANCH_UNCOND: 1.0,
    InstrClass.BRANCH_COND: 1.0,  # predictor model adds mispredict penalties
    InstrClass.NOP: 1.0,
}


@dataclass(frozen=True)
class CostTable:
    """Immutable per-class instruction cost table.

    A ``speed_factor`` scales all costs; polymorphic architectures are built
    by giving cores factors such as ``2.0`` (twice slower) or ``2/3``
    (1.5x faster) while keeping a single shared table.
    """

    costs: Mapping[InstrClass, float] = field(
        default_factory=lambda: dict(DEFAULT_COSTS)
    )

    def __post_init__(self) -> None:
        for klass in InstrClass:
            if klass not in self.costs:
                raise ValueError(f"cost table missing class {klass}")
            if self.costs[klass] < 0:
                raise ValueError(f"negative cost for {klass}")

    def cost_of(self, klass: InstrClass, count: float = 1.0) -> float:
        """Cycles consumed by ``count`` instructions of ``klass``."""
        if count < 0:
            raise ValueError("instruction count must be non-negative")
        return self.costs[klass] * count

    def scaled(self, factor: float) -> "CostTable":
        """Return a table with every cost multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        if factor == 1.0:
            # Identity scaling: share the table (it is immutable).  Saves
            # one table construction per core on uniform machines.
            return self
        return CostTable({k: v * factor for k, v in self.costs.items()})

    def with_cost(self, klass: InstrClass, cycles: float) -> "CostTable":
        """Return a table with one class cost replaced."""
        new = dict(self.costs)
        new[klass] = cycles
        return replace(self, costs=new)


def default_cost_table() -> CostTable:
    """The PowerPC-405-flavoured default cost table."""
    return CostTable()
