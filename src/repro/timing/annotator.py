"""Block timing annotations.

A *block* is a piece of code directly executed by the local CPU without any
interaction with other components (paper, Section II-A).  Its virtual-time
cost is the sum of its instruction-class costs plus branch-prediction
penalties.  Annotations may be static (``Block`` instances built once) or
computed during execution (``BlockAnnotator.dynamic_cost``), matching the
paper's two annotation styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .branch import BranchPredictorModel
from .isa import CostTable, InstrClass


@dataclass(frozen=True)
class Block:
    """A statically annotated instruction block.

    ``instr_counts`` maps instruction classes to (possibly fractional,
    when amortized) instruction counts.  ``cond_branches`` are the
    dynamically predicted conditional branches in the block;
    ``static_exits`` are statically known mispredictions (loop exits).
    """

    name: str
    instr_counts: Mapping[InstrClass, float] = field(default_factory=dict)
    cond_branches: float = 0.0
    static_exits: float = 0.0

    def __post_init__(self) -> None:
        for klass, count in self.instr_counts.items():
            if not isinstance(klass, InstrClass):
                raise TypeError(f"instruction class expected, got {klass!r}")
            if count < 0:
                raise ValueError(f"negative count for {klass}")
        if self.cond_branches < 0 or self.static_exits < 0:
            raise ValueError("branch counts must be non-negative")

    def scaled(self, factor: float) -> "Block":
        """A block repeated ``factor`` times (e.g. a loop body x trip count)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Block(
            name=self.name,
            instr_counts={k: v * factor for k, v in self.instr_counts.items()},
            cond_branches=self.cond_branches * factor,
            static_exits=self.static_exits * factor,
        )

    def merged(self, other: "Block", name: Optional[str] = None) -> "Block":
        """Concatenate two blocks into one annotation."""
        counts: Dict[InstrClass, float] = dict(self.instr_counts)
        for klass, count in other.instr_counts.items():
            counts[klass] = counts.get(klass, 0.0) + count
        return Block(
            name=name or f"{self.name}+{other.name}",
            instr_counts=counts,
            cond_branches=self.cond_branches + other.cond_branches,
            static_exits=self.static_exits + other.static_exits,
        )


class BlockAnnotator:
    """Computes virtual-time costs of blocks for one core.

    Each simulated core owns an annotator so that probabilistic branch
    outcomes are drawn from a per-core deterministic stream and so that
    polymorphic architectures can scale each core's cost table.
    """

    def __init__(
        self,
        cost_table: CostTable,
        predictor: Optional[BranchPredictorModel] = None,
        sample_branches: bool = True,
    ) -> None:
        self.cost_table = cost_table
        self.predictor = predictor or BranchPredictorModel()
        self.sample_branches = sample_branches
        self._static_cache: Dict[int, float] = {}
        self._repeat_cache: Dict[tuple, float] = {}

    def base_cost(self, block: Block) -> float:
        """Instruction cost of a block, without dynamic branch penalties."""
        key = id(block)
        cached = self._static_cache.get(key)
        if cached is not None:
            return cached
        cost = 0.0
        for klass, count in block.instr_counts.items():
            cost += self.cost_table.cost_of(klass, count)
        # Conditional branches execute as 1-cycle instructions on top of any
        # penalty; static exits are unconditional-class instructions that
        # always pay the pipeline-flush penalty.
        cost += self.cost_table.cost_of(InstrClass.BRANCH_COND, block.cond_branches)
        cost += self.cost_table.cost_of(InstrClass.BRANCH_UNCOND, block.static_exits)
        cost += block.static_exits * self.predictor.static_exit_penalty()
        self._static_cache[key] = cost
        return cost

    def cost(self, block: Block) -> float:
        """Full virtual-time cost of executing ``block`` once."""
        cost = self.base_cost(block)
        branches = block.cond_branches
        if branches:
            if self.sample_branches and float(branches).is_integer():
                cost += self.predictor.sample(int(branches))
            else:
                cost += self.predictor.expected(branches)
        return cost

    def cost_repeated(self, block: Block, repeat: float) -> float:
        """Cost of executing ``block`` ``repeat`` times.

        Integral single executions sample branch outcomes; repeated or
        fractional executions use the expected branch penalty (amortized),
        which is how the paper attributes approximate timings to coarse
        program parts at once.
        """
        if repeat == 1.0:
            return self.cost(block)
        if repeat == 0.0:
            return 0.0
        # Fully deterministic (amortized branches use the expected
        # penalty, never the sampled one), so the result is cacheable
        # per (block, repeat); only single executions above draw from
        # the stochastic predictor stream.
        key = (id(block), repeat)
        cached = self._repeat_cache.get(key)
        if cached is not None:
            return cached
        base = self.base_cost(block) * repeat
        branches = block.cond_branches * repeat
        if branches:
            base += self.predictor.expected(branches)
        self._repeat_cache[key] = base
        return base

    def dynamic_cost(
        self,
        instr_counts: Mapping[InstrClass, float],
        cond_branches: float = 0.0,
        static_exits: float = 0.0,
    ) -> float:
        """Annotation computed during execution (paper's dynamic mode).

        Used by workloads whose block sizes depend on run-time values, e.g.
        a partition step over ``n`` elements.
        """
        block = Block(
            "dynamic",
            instr_counts=instr_counts,
            cond_branches=cond_branches,
            static_exits=static_exits,
        )
        # Bypass the static cache: dynamic blocks are throwaway objects.
        cost = 0.0
        for klass, count in block.instr_counts.items():
            cost += self.cost_table.cost_of(klass, count)
        cost += self.cost_table.cost_of(InstrClass.BRANCH_COND, block.cond_branches)
        cost += self.cost_table.cost_of(InstrClass.BRANCH_UNCOND, block.static_exits)
        cost += block.static_exits * self.predictor.static_exit_penalty()
        if cond_branches:
            if self.sample_branches and float(cond_branches).is_integer():
                cost += self.predictor.sample(int(cond_branches))
            else:
                cost += self.predictor.expected(cond_branches)
        return cost
