"""Branch prediction timing model.

The paper (Section V) distinguishes two cases:

* Branches whose outcome is known with certainty at compilation time
  (unconditional branches, loop constructs): their effect is folded into
  static timing annotations, and a fixed penalty is applied to the
  mispredicted exit branch of each loop.

* All other conditional branches: a probabilistic predictor that succeeds
  at least 90 % of the time is assumed, with a misprediction penalty equal
  to the pipeline depth (5 cycles for the PowerPC 405's 5-stage pipeline).

The probabilistic model here is deterministic given its seed, which keeps
whole simulations reproducible.  Two evaluation modes are provided:
``sample`` draws per-branch outcomes from the RNG (what the paper's run-time
annotation computation does), and ``expected`` charges the expected penalty
``(1 - accuracy) * penalty`` per branch, useful when a workload wants to
aggregate thousands of branches into one annotation cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper parameters: >= 90 % prediction success, 5-stage pipeline.
DEFAULT_ACCURACY = 0.90
DEFAULT_PENALTY_CYCLES = 5.0


@dataclass
class BranchPredictorModel:
    """Probabilistic branch predictor with a fixed mispredict penalty."""

    accuracy: float = DEFAULT_ACCURACY
    penalty_cycles: float = DEFAULT_PENALTY_CYCLES
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be within [0, 1]")
        if self.penalty_cycles < 0:
            raise ValueError("penalty must be non-negative")
        # The RNG is built lazily: machines construct one predictor per
        # core, and ``np.random.default_rng`` dominates that cost while
        # most runs (expectation mode) never draw from it.
        self._rng = None
        self.predictions = 0
        self.mispredictions = 0

    # -- sampling mode -----------------------------------------------------
    def sample(self, count: int = 1) -> float:
        """Draw outcomes for ``count`` branches; return total penalty cycles."""
        if count < 0:
            raise ValueError("branch count must be non-negative")
        if count == 0:
            return 0.0
        rng = self._rng
        if rng is None:
            rng = self._rng = np.random.default_rng(self.seed)
        misses = int(rng.binomial(count, 1.0 - self.accuracy))
        self.predictions += count
        self.mispredictions += misses
        return misses * self.penalty_cycles

    # -- expectation mode --------------------------------------------------
    def expected(self, count: float = 1.0) -> float:
        """Expected penalty cycles for ``count`` branches (no RNG draw)."""
        if count < 0:
            raise ValueError("branch count must be non-negative")
        return (1.0 - self.accuracy) * self.penalty_cycles * count

    # -- static branches ---------------------------------------------------
    def static_exit_penalty(self) -> float:
        """Penalty of the statically-mispredicted loop exit branch.

        Loop back-edges are predicted perfectly; the final not-taken exit is
        the one guaranteed miss, charged once per loop execution.
        """
        return self.penalty_cycles

    @property
    def observed_accuracy(self) -> float:
        """Empirical accuracy over all sampled branches so far."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Clear the prediction counters."""
        self.predictions = 0
        self.mispredictions = 0
