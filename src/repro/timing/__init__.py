"""Timing annotation substrate: instruction classes, block costs, branches."""

from .annotator import Block, BlockAnnotator
from .branch import (
    DEFAULT_ACCURACY,
    DEFAULT_PENALTY_CYCLES,
    BranchPredictorModel,
)
from .isa import DEFAULT_COSTS, CostTable, InstrClass, default_cost_table

__all__ = [
    "Block",
    "BlockAnnotator",
    "BranchPredictorModel",
    "CostTable",
    "DEFAULT_ACCURACY",
    "DEFAULT_COSTS",
    "DEFAULT_PENALTY_CYCLES",
    "InstrClass",
    "default_cost_table",
]
