"""Architecture presets matching the paper's evaluation (Section V).

* ``shared_mesh`` — optimistic shared memory, uniform 2D mesh (Fig. 8);
* ``shared_mesh_validation`` — shared memory with coherence timings
  enabled, used when comparing against the cycle-level referee (Figs. 5-6);
* ``dist_mesh`` — distributed memory without hardware coherence (Fig. 9);
* ``clustered_dist`` — 4 or 8 clusters, inter-cluster links 4 cycles,
  intra-cluster links half a cycle (Fig. 12);
* ``polymorphic_*`` — one core out of two twice slower, the other 1.5x
  faster; same cumulated computing power (Figs. 6 and 13);
* ``single_core`` — the sequential baseline all speedups are measured
  against.

The paper's uniform meshes are 8, 64, 256 and 1024 cores.
"""

from __future__ import annotations

from .config import ArchConfig

#: Core counts used in the paper's scalability figures.
PAPER_MESH_SIZES = (1, 8, 64, 256, 1024)
#: Core counts in the cycle-level validation figures.
VALIDATION_SIZES = (1, 2, 4, 8, 16, 32, 64)


def single_core(memory: str = "shared", seed: int = 0) -> ArchConfig:
    """The 1-core baseline for speedup computations."""
    return ArchConfig(
        name="single-core", n_cores=1, topology="mesh", memory=memory, seed=seed
    )


def shared_mesh(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """Optimistic shared-memory uniform 2D mesh."""
    return ArchConfig(
        name=f"shared-mesh-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="shared",
        coherence_enabled=False,
        seed=seed,
        **kwargs,
    )


def shared_mesh_validation(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """Shared memory with coherence timings enabled (validation mode)."""
    return ArchConfig(
        name=f"shared-mesh-coh-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="shared",
        coherence_enabled=True,
        seed=seed,
        **kwargs,
    )


def dist_mesh(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """Distributed-memory mesh: L2 10 cycles, links 1 cycle / 128 B/cycle."""
    return ArchConfig(
        name=f"dist-mesh-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="distributed",
        seed=seed,
        **kwargs,
    )


def numa_mesh(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """NUMA mesh: distributed banks with hardware coherence.

    The middle point of the paper's memory-organization spectrum: data is
    home-pinned in per-core banks, accesses travel over the NoC, and a
    hardware directory keeps caches coherent.
    """
    return ArchConfig(
        name=f"numa-mesh-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="numa",
        coherence_enabled=True,
        seed=seed,
        **kwargs,
    )


def clustered_dist(
    n_cores: int, n_clusters: int = 4, seed: int = 0, **kwargs
) -> ArchConfig:
    """Clustered distributed-memory architecture (Fig. 12)."""
    return ArchConfig(
        name=f"clustered-{n_cores}c{n_clusters}",
        n_cores=n_cores,
        topology="clustered",
        n_clusters=n_clusters,
        memory="distributed",
        seed=seed,
        **kwargs,
    )


def polymorphic_shared(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """Polymorphic shared-memory mesh (validation counterpart of Fig. 6)."""
    return ArchConfig(
        name=f"poly-shared-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="shared",
        polymorphic=n_cores > 1,
        coherence_enabled=False,
        seed=seed,
        **kwargs,
    )


def polymorphic_shared_validation(
    n_cores: int, seed: int = 0, **kwargs
) -> ArchConfig:
    """Polymorphic shared-memory mesh with coherence timings (Fig. 6)."""
    return ArchConfig(
        name=f"poly-shared-coh-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="shared",
        polymorphic=n_cores > 1,
        coherence_enabled=True,
        seed=seed,
        **kwargs,
    )


def polymorphic_dist(n_cores: int, seed: int = 0, **kwargs) -> ArchConfig:
    """Polymorphic distributed-memory mesh (Fig. 13)."""
    return ArchConfig(
        name=f"poly-dist-{n_cores}",
        n_cores=n_cores,
        topology="mesh",
        memory="distributed",
        polymorphic=n_cores > 1,
        seed=seed,
        **kwargs,
    )
