"""Configuration file I/O and canonical config identity.

The paper specifies network topology "in a configuration file as an
adjacency matrix that gives the connections between the cores".  This
module round-trips both the full :class:`ArchConfig` (JSON) and raw
topologies (whitespace-separated adjacency matrices whose nonzero entries
are per-link latencies).

It also defines the **content identity** of a configuration
(:func:`config_canonical_dict` / :func:`config_content_hash`): a stable
sha256 over the *semantic* fields only, used by the service layer
(``repro.service``) to key its result cache.  Two configs share a hash
iff the simulator guarantees they produce bit-identical results — see
:data:`NON_SEMANTIC_FIELDS` for the exclusion list and its rationale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Union

import numpy as np

from .config import ArchConfig
from ..core.errors import SimConfigError
from ..network.topology import Topology, from_adjacency

PathLike = Union[str, pathlib.Path]


# -- ArchConfig JSON ---------------------------------------------------------

def config_to_json(cfg: ArchConfig) -> str:
    """Serialize a configuration to a JSON string."""
    payload = dataclasses.asdict(cfg)
    if payload.get("speed_factors") is not None:
        payload["speed_factors"] = list(payload["speed_factors"])
    return json.dumps(payload, indent=2, sort_keys=True)


def config_from_json(text: str) -> ArchConfig:
    """Parse a configuration from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimConfigError(f"invalid config JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SimConfigError("config JSON must be an object")
    known = {f.name for f in dataclasses.fields(ArchConfig)}
    unknown = set(payload) - known
    if unknown:
        raise SimConfigError(f"unknown config keys: {sorted(unknown)}")
    return ArchConfig(**payload)


def save_config(cfg: ArchConfig, path: PathLike) -> None:
    """Write a configuration to a JSON file."""
    pathlib.Path(path).write_text(config_to_json(cfg) + "\n")


def load_config(path: PathLike) -> ArchConfig:
    """Read a configuration from a JSON file."""
    return config_from_json(pathlib.Path(path).read_text())


# -- canonical config identity ------------------------------------------------

def config_field_names() -> frozenset:
    """The set of :class:`ArchConfig` field names.

    The single source of truth for "is this a real config field?" checks
    outside the dataclass itself — the service spec resolver
    (:mod:`repro.service.hashing`) and the sweep-space validator
    (:mod:`repro.dse.space`) both reject unknown arch keys against this
    set, so a typo in a request or a sweep axis fails loudly with the
    same vocabulary everywhere.
    """
    return frozenset(f.name for f in dataclasses.fields(ArchConfig))


def config_overrides_dict(base: ArchConfig, cfg: ArchConfig) -> dict:
    """The semantic fields where ``cfg`` differs from ``base``.

    Both configs are reduced to their canonical dicts first, so
    non-semantic knobs (telemetry, kernel selection, labels) never show
    up as differences.  Used by the DSE result frame to display each
    sweep cell as a minimal delta against the family's base point.
    """
    a = config_canonical_dict(base)
    b = config_canonical_dict(cfg)
    return {k: v for k, v in b.items() if a.get(k) != v}



#: :class:`ArchConfig` fields excluded from the content hash.  A field
#: belongs here only when the verification subsystem *proves* it cannot
#: change simulation results:
#:
#: * ``name`` — a human-readable label, never consulted by the engine;
#: * ``telemetry`` / ``collect_trace`` / ``sanitize`` — observation-only;
#:   golden numbers and trace digests are pinned bit-identical with them
#:   on (``tests/test_obs.py``, ``tests/test_verify.py``);
#: * ``engine_kernel`` — the kernel sweep in ``tests/test_determinism.py``
#:   pins all kernels bit-identical;
#: * ``inbox_heap`` — delivery semantics are identical with the heap on
#:   or off (only the scan strategy changes);
#: * ``worker_start_method`` — how worker processes boot on the host
#:   cannot reach the simulated machine.
#:
#: Everything else is semantic.  Note that ``backend``, ``shards``,
#: ``round_batch``, ``adaptive_window`` and ``window_max_factor`` are
#: deliberately *included*: shard fences change dispatch semantics, and
#: for runs with cross-shard traffic the sharded trajectory may
#: legitimately differ from serial (the fuzzer's two-tier conformance
#: contract, docs/testing.md) — so they must separate cache entries.
NON_SEMANTIC_FIELDS = frozenset({
    "name",
    "telemetry",
    "collect_trace",
    "sanitize",
    "engine_kernel",
    "inbox_heap",
    "worker_start_method",
})


def config_canonical_dict(cfg: ArchConfig) -> dict:
    """The semantic content of a configuration as a plain-JSON dict.

    Drops every :data:`NON_SEMANTIC_FIELDS` entry and normalizes
    container types (``speed_factors`` tuples become lists) so that two
    semantically identical configs — however they were constructed —
    produce structurally equal dicts.  Key order is irrelevant:
    :func:`config_content_hash` serializes with sorted keys.
    """
    payload = dataclasses.asdict(cfg)
    for name in NON_SEMANTIC_FIELDS:
        payload.pop(name, None)
    if payload.get("speed_factors") is not None:
        payload["speed_factors"] = [float(f) for f in payload["speed_factors"]]
    return payload


def config_content_hash(cfg: ArchConfig) -> str:
    """Stable sha256 hex digest of the semantic config content.

    Identical semantics give identical hashes regardless of field
    ordering or non-semantic settings; any change to a semantic field
    (drift bound, sync policy, topology, shard fences, ...) changes the
    hash.  The service result cache (``repro.service``) combines this
    with the workload identity to key cached simulation results.
    """
    text = json.dumps(config_canonical_dict(cfg), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# -- adjacency-matrix topology files ------------------------------------------

def save_topology(topo: Topology, path: PathLike) -> None:
    """Write a topology as an adjacency matrix (per-link latencies).

    The file holds one row per core; entry (i, j) is 0 when cores i and j
    are not connected, otherwise the link latency in cycles.
    """
    mat = np.zeros((topo.n_cores, topo.n_cores))
    for u, v, spec in topo.directed_edges():
        if spec.latency == 0:
            raise SimConfigError(
                "zero-latency links cannot be stored in the adjacency "
                "format (0 means no link)"
            )
        mat[u, v] = spec.latency
    lines = [f"# topology {topo.name}: {topo.n_cores} cores"]
    for row in mat:
        lines.append(" ".join(f"{x:g}" for x in row))
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_topology(path: PathLike, bandwidth: float = 128.0,
                  name: str = "") -> Topology:
    """Read a topology from an adjacency matrix file."""
    rows = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append([float(x) for x in line.split()])
    if not rows:
        raise SimConfigError(f"no adjacency rows in {path}")
    widths = {len(r) for r in rows}
    if widths != {len(rows)}:
        raise SimConfigError("adjacency matrix must be square")
    return from_adjacency(rows, bandwidth=bandwidth,
                          name=name or pathlib.Path(path).stem)
