"""Configuration file I/O.

The paper specifies network topology "in a configuration file as an
adjacency matrix that gives the connections between the cores".  This
module round-trips both the full :class:`ArchConfig` (JSON) and raw
topologies (whitespace-separated adjacency matrices whose nonzero entries
are per-link latencies).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from .config import ArchConfig
from ..core.errors import SimConfigError
from ..network.topology import Topology, from_adjacency

PathLike = Union[str, pathlib.Path]


# -- ArchConfig JSON ---------------------------------------------------------

def config_to_json(cfg: ArchConfig) -> str:
    """Serialize a configuration to a JSON string."""
    payload = dataclasses.asdict(cfg)
    if payload.get("speed_factors") is not None:
        payload["speed_factors"] = list(payload["speed_factors"])
    return json.dumps(payload, indent=2, sort_keys=True)


def config_from_json(text: str) -> ArchConfig:
    """Parse a configuration from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimConfigError(f"invalid config JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SimConfigError("config JSON must be an object")
    known = {f.name for f in dataclasses.fields(ArchConfig)}
    unknown = set(payload) - known
    if unknown:
        raise SimConfigError(f"unknown config keys: {sorted(unknown)}")
    return ArchConfig(**payload)


def save_config(cfg: ArchConfig, path: PathLike) -> None:
    """Write a configuration to a JSON file."""
    pathlib.Path(path).write_text(config_to_json(cfg) + "\n")


def load_config(path: PathLike) -> ArchConfig:
    """Read a configuration from a JSON file."""
    return config_from_json(pathlib.Path(path).read_text())


# -- adjacency-matrix topology files ------------------------------------------

def save_topology(topo: Topology, path: PathLike) -> None:
    """Write a topology as an adjacency matrix (per-link latencies).

    The file holds one row per core; entry (i, j) is 0 when cores i and j
    are not connected, otherwise the link latency in cycles.
    """
    mat = np.zeros((topo.n_cores, topo.n_cores))
    for u, v, spec in topo.directed_edges():
        if spec.latency == 0:
            raise SimConfigError(
                "zero-latency links cannot be stored in the adjacency "
                "format (0 means no link)"
            )
        mat[u, v] = spec.latency
    lines = [f"# topology {topo.name}: {topo.n_cores} cores"]
    for row in mat:
        lines.append(" ".join(f"{x:g}" for x in row))
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_topology(path: PathLike, bandwidth: float = 128.0,
                  name: str = "") -> Topology:
    """Read a topology from an adjacency matrix file."""
    rows = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append([float(x) for x in line.split()])
    if not rows:
        raise SimConfigError(f"no adjacency rows in {path}")
    widths = {len(r) for r in rows}
    if widths != {len(rows)}:
        raise SimConfigError("adjacency matrix must be square")
    return from_adjacency(rows, bandwidth=bandwidth,
                          name=name or pathlib.Path(path).stem)
