"""Build runnable machines from architecture configurations."""

from __future__ import annotations

import os

from .config import ArchConfig
from ..core.engine import EngineParams, Machine
from ..core.sync import make_policy
from ..memory.coherence import CoherenceModel
from ..memory.distmem import DistributedMemoryModel
from ..memory.numa import NumaMemoryModel
from ..memory.sharedmem import SharedMemoryModel
from ..network.topology import (
    Topology,
    clustered_mesh,
    crossbar,
    ring,
    square_mesh,
    torus2d,
)
from ..runtime.dispatch import make_dispatch
from ..runtime.runtime import Runtime


def build_topology(cfg: ArchConfig) -> Topology:
    """Instantiate the configured interconnect."""
    if cfg.topology == "mesh":
        return square_mesh(
            cfg.n_cores, latency=cfg.link_latency, bandwidth=cfg.link_bandwidth
        )
    if cfg.topology == "clustered":
        return clustered_mesh(
            cfg.n_cores,
            cfg.n_clusters,
            intra_latency=cfg.intra_cluster_latency,
            inter_latency=cfg.inter_cluster_latency,
            bandwidth=cfg.link_bandwidth,
        )
    if cfg.topology == "ring":
        return ring(cfg.n_cores, latency=cfg.link_latency,
                    bandwidth=cfg.link_bandwidth)
    if cfg.topology == "torus":
        import math

        side = int(math.isqrt(cfg.n_cores))
        while side > 1 and cfg.n_cores % side:
            side -= 1
        return torus2d(cfg.n_cores // side, side, latency=cfg.link_latency,
                       bandwidth=cfg.link_bandwidth)
    if cfg.topology == "crossbar":
        return crossbar(cfg.n_cores, latency=cfg.link_latency,
                        bandwidth=cfg.link_bandwidth)
    raise ValueError(f"unknown topology {cfg.topology!r}")


def build_memory(cfg: ArchConfig):
    """Instantiate the configured memory model."""
    if cfg.memory == "shared":
        coherence = CoherenceModel() if cfg.coherence_enabled else None
        return SharedMemoryModel(
            bank_latency=cfg.bank_latency,
            l1_latency=cfg.l1_latency,
            coherence=coherence,
            scale_l1_with_core=cfg.scale_l1_with_core,
        )
    if cfg.memory == "numa":
        return NumaMemoryModel(
            bank_latency=cfg.bank_latency,
            l1_latency=cfg.l1_latency,
            coherence=CoherenceModel() if cfg.coherence_enabled else None,
            scale_l1_with_core=cfg.scale_l1_with_core,
        )
    return DistributedMemoryModel(
        l2_latency=cfg.l2_latency,
        l1_latency=cfg.l1_latency,
        scale_l1_with_core=cfg.scale_l1_with_core,
    )


def resolve_engine_kernel(cfg: ArchConfig) -> str:
    """The engine kernel this configuration will actually request.

    ``auto`` resolves to the ``REPRO_ENGINE_KERNEL`` environment variable
    (when set to a valid kernel name) or ``vectorized``; explicit values
    pass through untouched, so tests pinning a kernel are immune to the
    environment.  ``sanitize`` always forces ``python``: the runtime
    checker monkeypatches the reference code paths and must observe them.
    Note ``compiled`` may still degrade to ``vectorized`` inside the
    engine when no C toolchain is available.
    """
    kernel = cfg.engine_kernel
    if kernel == "auto":
        env = os.environ.get("REPRO_ENGINE_KERNEL", "")
        kernel = env if env in ("python", "vectorized", "compiled") \
            else "vectorized"
    if cfg.sanitize:
        kernel = "python"
    return kernel


def build_machine(cfg: ArchConfig) -> Machine:
    """Assemble a ready-to-run (serial) machine from a configuration.

    With ``cfg.shards > 0`` the machine is *fenced*: a
    :class:`~repro.parallel.partition.Partition` is attached as
    ``machine.fence`` and the run-time restricts dispatch, queue-state
    gossip, steal victims and distributed-memory homes to shard-local
    cores.  The fence changes simulation semantics identically under
    both backends; use :func:`build_backend` to honour ``cfg.backend``.

    Example::

        from repro.arch import build_machine, shared_mesh
        machine = build_machine(shared_mesh(64))
        result = machine.run(my_root_fn)
        print(machine.stats.completion_vtime)
    """
    topo = build_topology(cfg)
    policy = make_policy(cfg.sync, **cfg.sync_kwargs)
    params = EngineParams(
        task_start_cycles=cfg.task_start_cycles,
        context_switch_cycles=cfg.context_switch_cycles,
        queue_capacity=cfg.queue_capacity,
        slice_actions=cfg.slice_actions,
        parallelism_sample_interval=cfg.parallelism_sample_interval,
    )
    machine = Machine(
        topo,
        policy,
        params,
        drift_bound=cfg.drift_bound,
        shadow_enabled=cfg.shadow_enabled,
        shadow_mode=cfg.shadow_mode,
        speed_factors=cfg.resolved_speed_factors(),
        branch_accuracy=cfg.branch_accuracy,
        branch_penalty=cfg.branch_penalty,
        sample_branches=cfg.sample_branches,
        router_penalty=cfg.router_penalty,
        chunk_bytes=cfg.chunk_bytes,
        model_contention=cfg.model_contention,
        inbox_heap=cfg.inbox_heap,
        seed=cfg.seed,
        engine_kernel=resolve_engine_kernel(cfg),
    )
    if cfg.shards > 0:
        from ..parallel.partition import contiguous_partition

        machine.fence = contiguous_partition(topo, cfg.shards)
    if cfg.telemetry:
        from ..obs import Telemetry

        # Before runtime attach: Runtime caches machine.telemetry.
        machine.attach_telemetry(Telemetry(cfg.telemetry, cfg.n_cores))
    machine.attach_memory(build_memory(cfg))
    machine.attach_runtime(
        Runtime(
            dispatch=make_dispatch(cfg.dispatch, **cfg.dispatch_kwargs),
            work_stealing=cfg.work_stealing,
        )
    )
    if cfg.sanitize:
        from ..verify.sanitizer import Sanitizer

        Sanitizer(machine)
    return machine


def build_backend(cfg: ArchConfig):
    """Build the execution backend ``cfg.backend`` selects.

    Returns a serial :class:`~repro.core.engine.Machine` or a
    :class:`~repro.parallel.coordinator.ShardedMachine`; both expose
    ``run_workloads(...)`` / ``stats``, so callers can treat the result
    uniformly.  The sharded backend additionally requires picklable
    workload *specs* (it rebuilds roots inside each worker), hence the
    distinct entry point rather than ``run(root_fn)``.

    This is the single execution entry shared by ``python -m repro run``
    and the job queue behind ``python -m repro serve`` — the service
    adds queuing and caching around it but never its own semantics.
    Note that ``cfg.backend`` (and the sharding knobs it activates) is
    *semantic* for result identity: serial and sharded trajectories may
    legitimately differ for runs with cross-shard traffic, so the
    service's content hash keeps them as separate cache entries.

    Example::

        import dataclasses
        from repro.arch import build_backend, shared_mesh
        cfg = dataclasses.replace(shared_mesh(16), shards=2,
                                  backend="sharded")
        backend = build_backend(cfg)
    """
    if cfg.backend == "sharded":
        from ..parallel.coordinator import ShardedMachine

        return ShardedMachine(cfg)
    return build_machine(cfg)
