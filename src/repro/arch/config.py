"""Architecture configuration (paper, Section V).

An :class:`ArchConfig` captures everything the paper varies: core count and
per-core computing power (polymorphic architectures), memory organization
(shared with uniform latency, or fully distributed without hardware
coherence), network topology (regular/clustered 2D meshes or arbitrary
adjacency matrices), per-link latency and bandwidth, and the virtual-timing
parameters (the drift bound ``T``, run-time overheads).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from ..core.errors import SimConfigError

#: Paper reference values.
DEFAULT_T = 100.0
SHARED_BANK_LATENCY = 10.0
L1_LATENCY = 1.0
L2_LATENCY = 10.0
BASE_LINK_LATENCY = 1.0
BASE_LINK_BANDWIDTH = 128.0
CLUSTER_INTER_LATENCY = 4.0
CLUSTER_INTRA_LATENCY = 0.5
#: Polymorphic architectures: one core out of two twice slower, the other
#: faster by 3/2 — identical cumulated computing power.
POLY_SLOW_FACTOR = 2.0
POLY_FAST_FACTOR = 2.0 / 3.0


@dataclass
class ArchConfig:
    """Declarative architecture + simulator configuration."""

    name: str = "arch"
    n_cores: int = 8
    topology: str = "mesh"           # mesh | clustered | ring | torus | crossbar
    n_clusters: int = 4              # for the clustered topology
    memory: str = "shared"           # shared | distributed | numa
    coherence_enabled: bool = False  # charge coherence timings (validation)
    polymorphic: bool = False
    speed_factors: Optional[Sequence[float]] = None

    # Interconnect.
    link_latency: float = BASE_LINK_LATENCY
    link_bandwidth: float = BASE_LINK_BANDWIDTH
    inter_cluster_latency: float = CLUSTER_INTER_LATENCY
    intra_cluster_latency: float = CLUSTER_INTRA_LATENCY
    router_penalty: float = 1.0
    chunk_bytes: int = 64
    model_contention: bool = True

    # Memory latencies.
    bank_latency: float = SHARED_BANK_LATENCY
    l1_latency: float = L1_LATENCY
    l2_latency: float = L2_LATENCY
    scale_l1_with_core: bool = True

    # Virtual timing.
    sync: str = "spatial"            # spatial | conservative | quantum | ...
    drift_bound: float = DEFAULT_T
    shadow_enabled: bool = True
    shadow_mode: str = "fast"
    sync_kwargs: Dict = field(default_factory=dict)
    #: Maintain per-core arrival-ordered inbox heaps (False falls back to
    #: linear earliest-arrival scans; delivery semantics are identical).
    inbox_heap: bool = True

    # Run-time task dispatch: occupancy (paper default) | speed_aware |
    # latency_aware | random (see repro.runtime.dispatch).
    dispatch: str = "occupancy"
    dispatch_kwargs: Dict = field(default_factory=dict)
    #: Extension: idle cores pull NEW tasks from loaded neighbours
    #: (Cilk-style stealing; the paper's run-time only pushes).
    work_stealing: bool = False

    # Engine / run-time overheads (paper values).
    task_start_cycles: float = 10.0
    context_switch_cycles: float = 15.0
    queue_capacity: int = 4
    slice_actions: int = 64
    parallelism_sample_interval: int = None  # None = no sampling
    #: Engine hot-loop implementation: "python" (reference scalar loops),
    #: "vectorized" (struct-of-arrays fast paths + numpy wave priming) or
    #: "compiled" (native relax kernel, built on first use; degrades to
    #: vectorized when no C toolchain is available).  "auto" resolves to
    #: the REPRO_ENGINE_KERNEL environment variable or "vectorized".
    #: All kernels are bit-identical; ``sanitize`` forces "python"
    #: (the checker cross-checks the reference code paths).  Because of
    #: that bit-identity guarantee — pinned by the golden suite and the
    #: differential fuzzer — kernel selection is a *non-semantic* field:
    #: the service result cache (``repro.arch.io.NON_SEMANTIC_FIELDS``)
    #: deliberately excludes it, so the same spec run under any kernel
    #: shares one cache entry.
    engine_kernel: str = "auto"       # auto | python | vectorized | compiled

    # Timing annotations.
    branch_accuracy: float = 0.9
    branch_penalty: float = 5.0
    sample_branches: bool = True

    seed: int = 0

    # Sharded execution (repro.parallel).  ``shards > 0`` is a *semantic*
    # switch honoured by both backends: the mesh is split into that many
    # contiguous regions and the run-time fences dispatch, queue-state
    # gossip, steal victims and distributed-memory homes to the region
    # (USER messages may still cross).  ``backend`` then picks the
    # execution strategy — "serial" runs everything in-process,
    # "sharded" runs one worker process per shard; a fenced config
    # produces bit-identical results under either.
    backend: str = "serial"          # serial | sharded
    shards: int = 0                  # 0 = unfenced (single region)
    #: Adaptive drift windows (sharded backend, spatial sync): the
    #: coordinator widens the per-round window while no cross-shard
    #: messages flow and shrinks it back to ``T`` on a traffic burst.
    #: Quiet mesh regions then synchronize every ``window_max_factor*T``
    #: cycles instead of every ``T``; the extra boundary drift this
    #: admits is bounded by ``window_max_factor * T`` (see
    #: docs/parallel.md for the determinism argument).
    adaptive_window: bool = True
    #: Upper bound on the adaptive window multiplier (>= 1; 1 disables
    #: widening even when ``adaptive_window`` is set).
    window_max_factor: float = 64.0
    #: Max engine sub-rounds a worker may execute locally per
    #: coordination round before re-synchronizing (>= 1; 1 restores
    #: one-round-per-go lockstep).  Workers stop early the moment they
    #: emit a boundary-crossing message.
    round_batch: int = 16
    #: Worker process start method: "auto" picks fork where the host
    #: supports it (workers inherit the parent's imports instead of
    #: booting fresh interpreters) and falls back to spawn elsewhere.
    worker_start_method: str = "auto"  # auto | fork | spawn

    # Verification (repro.verify).  ``sanitize`` attaches the runtime
    # invariant checker to every machine the build produces (serial and
    # per-worker): drift-bound admission, causal/FIFO message delivery,
    # publish monotonicity, lock accounting and the sharded adopt/lift
    # protocol all assert continuously, raising SanitizerViolation on the
    # first breach.  Costs ~2x; compute fusion is disabled while checking
    # (fused and unfused execution are bit-identical, so timing results
    # do not change).  ``collect_trace`` makes the sharded backend attach
    # a Tracer inside each worker and ship the merged trace back as
    # ``backend.trace`` for canonical digesting.
    sanitize: bool = False
    collect_trace: bool = False

    # Observability (repro.obs).  Non-empty ``telemetry`` attaches the
    # structured-metrics registry to every machine the build produces
    # (serial and per-worker; snapshots merge coordinator-side like
    # stats do): "all" or a comma list of "counters", "timeline",
    # "profile".  Telemetry is observation-only — results stay
    # bit-identical with it on — and costs nothing when off beyond one
    # cached attribute check per hot-path guard.
    telemetry: str = ""

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimConfigError("need at least one core")
        if self.telemetry:
            from ..obs.registry import parse_spec

            try:
                parse_spec(self.telemetry)
            except ValueError as exc:
                raise SimConfigError(str(exc)) from None
        if self.memory not in ("shared", "distributed", "numa"):
            raise SimConfigError(f"unknown memory organization {self.memory!r}")
        if self.topology not in ("mesh", "clustered", "ring", "torus", "crossbar"):
            raise SimConfigError(f"unknown topology {self.topology!r}")
        if self.polymorphic and self.speed_factors is not None:
            raise SimConfigError("set either polymorphic or speed_factors")
        if self.backend not in ("serial", "sharded"):
            raise SimConfigError(f"unknown backend {self.backend!r}")
        if self.shards < 0 or self.shards > self.n_cores:
            raise SimConfigError(
                f"shards must be in [0, n_cores], got {self.shards}")
        if self.backend == "sharded" and self.shards < 1:
            raise SimConfigError(
                "the sharded backend needs shards >= 1 "
                "(e.g. --shards 4)")
        if self.window_max_factor < 1.0:
            raise SimConfigError(
                f"window_max_factor must be >= 1, got {self.window_max_factor}")
        if self.round_batch < 1:
            raise SimConfigError(
                f"round_batch must be >= 1, got {self.round_batch}")
        if self.worker_start_method not in ("auto", "fork", "spawn"):
            raise SimConfigError(
                f"unknown worker_start_method {self.worker_start_method!r}")
        if self.engine_kernel not in ("auto", "python", "vectorized",
                                      "compiled"):
            raise SimConfigError(
                f"unknown engine_kernel {self.engine_kernel!r}")

    def resolved_speed_factors(self) -> list:
        """Per-core speed factors (cost multipliers; >1 = slower)."""
        if self.speed_factors is not None:
            if len(self.speed_factors) != self.n_cores:
                raise SimConfigError("speed_factors length mismatch")
            return [float(f) for f in self.speed_factors]
        if self.polymorphic:
            return [
                POLY_SLOW_FACTOR if c % 2 == 0 else POLY_FAST_FACTOR
                for c in range(self.n_cores)
            ]
        return [1.0] * self.n_cores

    def with_cores(self, n_cores: int) -> "ArchConfig":
        """Copy of this config at a different scale."""
        return replace(self, n_cores=n_cores)

    def with_drift(self, T: float) -> "ArchConfig":
        """Copy with a different maximum local drift T."""
        return replace(self, drift_bound=T)
