"""Task-dispatch policies for conditional spawning.

The paper's run-time picks the neighbour most likely to have a free task
slot, which works well on homogeneous meshes but — as its conclusion notes
— "the results we obtained for the polymorphic and clustered architectures
could be improved substantially with specific scheduling policies that
would take into account the latency and computing power disparity among
cores".  This module implements that future work as pluggable policies:

* ``occupancy``    — the paper's default: least-loaded neighbour;
* ``speed_aware``  — estimated-completion dispatch: a neighbour's queue is
  weighted by its core's speed factor, so a 2x-slower core must be twice
  as idle to win a task (polymorphic meshes);
* ``latency_aware``— occupancy plus a link-latency penalty, biasing
  dispatch toward fast intra-cluster links unless the far side is much
  emptier (clustered meshes);
* ``random``       — seeded uniform choice (a baseline for ablations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Machine

DISPATCH_POLICIES = ("occupancy", "speed_aware", "latency_aware", "random")


class DispatchPolicy:
    """Chooses the probe target among a core's neighbours."""

    name = "base"

    def attach(self, machine: "Machine") -> None:
        self.machine = machine

    def pick(self, cid: int, proxies: Dict[int, int], cursor: int,
             capacity: int) -> Optional[int]:
        """Return the neighbour to probe, or None to run inline.

        ``proxies`` maps each neighbour to its believed queue occupancy;
        ``cursor`` is a rotating tie-break offset.
        """
        raise NotImplementedError

    def _scan(self, proxies: Dict[int, int], cursor: int, capacity: int,
              score) -> Optional[int]:
        """Pick the candidate with the smallest score among those whose
        believed occupancy leaves a free slot."""
        neighbors = list(proxies.keys())
        n = len(neighbors)
        if n == 0:
            return None
        start = cursor % n
        best = None
        best_score = float("inf")
        for i in range(n):
            cand = neighbors[(start + i) % n]
            occ = proxies[cand]
            if occ >= capacity:
                continue
            s = score(cand, occ)
            if s < best_score:
                best = cand
                best_score = s
        return best


class OccupancyDispatch(DispatchPolicy):
    """The paper's default: least believed occupancy wins."""

    name = "occupancy"

    def pick(self, cid, proxies, cursor, capacity):
        return self._scan(proxies, cursor, capacity,
                          lambda cand, occ: occ)


class SpeedAwareDispatch(DispatchPolicy):
    """Estimated-completion dispatch for heterogeneous cores.

    A queue entry on a slow core takes ``speed_factor`` times longer to
    drain, so the effective backlog of a neighbour is
    ``(occupancy + 1) * speed_factor`` — the ``+1`` accounts for the task
    being placed.
    """

    name = "speed_aware"

    def pick(self, cid, proxies, cursor, capacity):
        cores = self.machine.cores
        return self._scan(
            proxies, cursor, capacity,
            lambda cand, occ: (occ + 1) * cores[cand].speed_factor,
        )


class LatencyAwareDispatch(DispatchPolicy):
    """Occupancy with a link-latency penalty for clustered meshes.

    Crossing a slow inter-cluster link costs the spawn round trip and the
    task transfer; a far neighbour must be ``latency_weight`` queue slots
    emptier per extra cycle of link latency to win the task.
    """

    name = "latency_aware"

    def __init__(self, latency_weight: float = 0.5) -> None:
        if latency_weight < 0:
            raise ValueError("latency weight must be non-negative")
        self.latency_weight = latency_weight

    def pick(self, cid, proxies, cursor, capacity):
        topo = self.machine.topo
        weight = self.latency_weight

        def score(cand, occ):
            latency = topo.link_spec(cid, cand).latency
            return occ + weight * latency

        return self._scan(proxies, cursor, capacity, score)


class RandomDispatch(DispatchPolicy):
    """Seeded uniform choice among believed-free neighbours (baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, cid, proxies, cursor, capacity):
        candidates = [n for n, occ in proxies.items() if occ < capacity]
        if not candidates:
            return None
        return int(candidates[self._rng.integers(len(candidates))])


def make_dispatch(name: str, **kwargs) -> DispatchPolicy:
    """Factory: build a dispatch policy by name."""
    table = {
        "occupancy": OccupancyDispatch,
        "speed_aware": SpeedAwareDispatch,
        "latency_aware": LatencyAwareDispatch,
        "random": RandomDispatch,
    }
    if name not in table:
        raise ValueError(
            f"unknown dispatch policy {name!r}; choose from {sorted(table)}"
        )
    return table[name](**kwargs)
