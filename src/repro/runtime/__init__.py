"""Task run-time system: conditional spawning, groups/join, locks."""

from .dispatch import (
    DISPATCH_POLICIES,
    DispatchPolicy,
    LatencyAwareDispatch,
    OccupancyDispatch,
    RandomDispatch,
    SpeedAwareDispatch,
    make_dispatch,
)
from .locks import SimLock
from .runtime import Runtime

__all__ = [
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "LatencyAwareDispatch",
    "OccupancyDispatch",
    "RandomDispatch",
    "Runtime",
    "SimLock",
    "SpeedAwareDispatch",
    "make_dispatch",
]
