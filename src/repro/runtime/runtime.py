"""The task run-time system (paper, Section IV).

Implements conditional spawning in the spirit of TBB/Capsule:

* ``probe`` — before spawning, the run-time checks proxies of the
  neighbours' task-queue occupancy; only when some neighbour is likely to
  have a free slot does it send a PROBE reservation message.  The neighbour
  accepts (PROBE_ACK) or denies (PROBE_NACK).
* ``spawn`` — on a successful probe, the TASK_SPAWN message carries the new
  task to the reserved slot; the accepting core then broadcasts its new
  queue state to its own neighbours, keeping proxies fresh.
* denied probes mean the program executes the task's code sequentially.

Dispatch is to *neighbouring cores only*, avoiding communication with far
away cores; tasks progressively migrate outward when local cores are
overloaded because remotely started tasks spawn onward from their own core.

Task grouping gives coarse synchronization: terminating tasks decrement
their group's active counter; ``join`` suspends until the counter reaches
zero, woken by a JOINER_REQUEST notification from the last finishing task.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .dispatch import DispatchPolicy, OccupancyDispatch
from .locks import SimLock
from ..core.actions import TrySpawn
from ..core.errors import ProtocolError
from ..core.messages import MsgKind
from ..core.task import Task, TaskGroup, TaskState


class Runtime:
    """Per-machine run-time system instance."""

    def __init__(self, spawn_msg_size: float = 64.0,
                 dispatch: DispatchPolicy = None,
                 work_stealing: bool = False,
                 steal_threshold: int = 2) -> None:
        self.spawn_msg_size = spawn_msg_size
        self.dispatch = dispatch or OccupancyDispatch()
        self.work_stealing = work_stealing
        #: A victim must advertise at least this many queued tasks.
        self.steal_threshold = steal_threshold
        self.steals_attempted = 0
        self.steals_successful = 0
        self.machine = None
        self._obs = None  # telemetry; rebound from the machine in attach()
        # Per-core run-time neighbourhood: the full topological
        # neighbours, or the shard-local subset when the machine is
        # fenced (see attach()).
        self._neighbors: List[Tuple[int, ...]] = []
        self._steal_pending: List[bool] = []
        # Occupancy proxies: proxy[c][n] = believed occupancy of neighbour n.
        self._proxy: List[Dict[int, int]] = []
        # Rotating cursor per core for neighbour tie-breaking.
        self._cursor: List[int] = []
        self._last_broadcast: List[int] = []
        # Group completion bookkeeping for the fast-path join.
        self._group_last_finish: Dict[int, Tuple[float, int]] = {}

    # -- wiring ---------------------------------------------------------
    def attach(self, machine) -> None:
        self.machine = machine
        # Opt-in telemetry (repro.obs), attached before the runtime by
        # the builder; every use below guards on ``is not None``.
        self._obs = machine.telemetry
        n = machine.n_cores
        fence = machine.fence
        if fence is None:
            self._neighbors = [machine.topo.neighbors(c) for c in range(n)]
        else:
            # Shard fencing (ArchConfig.shards > 0): the run-time only
            # gossips with, dispatches to and steals from same-shard
            # neighbours, so protocol messages — which carry live Task
            # and lock objects — never cross a shard boundary.  Applied
            # on both backends, so fenced serial and sharded runs see
            # the same run-time behaviour.
            owner = fence.owner
            self._neighbors = [
                tuple(j for j in machine.topo.neighbors(c)
                      if owner[j] == owner[c])
                for c in range(n)
            ]
        self._proxy = [
            {j: 0 for j in self._neighbors[c]} for c in range(n)
        ]
        self._cursor = [0] * n
        self._last_broadcast = [-1] * n
        self._steal_pending = [False] * n
        self.dispatch.attach(machine)
        machine.register_handler(MsgKind.PROBE, self._on_probe)
        machine.register_handler(MsgKind.PROBE_ACK, self._on_probe_ack)
        machine.register_handler(MsgKind.PROBE_NACK, self._on_probe_nack)
        machine.register_handler(MsgKind.TASK_SPAWN, self._on_task_spawn)
        machine.register_handler(MsgKind.QUEUE_STATE, self._on_queue_state)
        machine.register_handler(MsgKind.JOINER_REQUEST, self._on_joiner_request)
        machine.register_handler(MsgKind.LOCK_REQUEST, self._on_lock_request)
        machine.register_handler(MsgKind.LOCK_GRANT, self._on_lock_grant)
        machine.register_handler(MsgKind.LOCK_RELEASE, self._on_lock_release)
        machine.register_handler(MsgKind.STEAL_REQUEST, self._on_steal_request)
        machine.register_handler(MsgKind.STEAL_REPLY, self._on_steal_reply)

    # -- conditional spawning ----------------------------------------------
    def try_spawn(self, core, task: Task, action: TrySpawn) -> None:
        """Engine entry point for the TrySpawn action."""
        machine = self.machine
        params = machine.params
        machine.advance_by(core, core.scaled(params.probe_check_cycles))
        target = self._pick_target(core)
        tel = self._obs
        if target is None:
            machine.stats.tasks_run_inline += 1
            if tel is not None:
                tel.counters["runtime.spawn_inline_no_target"] += 1
            task.resume_value = False
            return
        if tel is not None:
            tel.counters["runtime.spawn_probes"] += 1
        # Send the reservation; the probing task blocks for the round trip.
        suspended = machine.suspend_current(core, "probe")
        machine.send_with_overhead(
            MsgKind.PROBE, core, target, payload=(suspended, action)
        )

    def _pick_target(self, core) -> Optional[int]:
        """Delegate target choice to the dispatch policy."""
        proxies = self._proxy[core.cid]
        if not proxies:
            return None
        capacity = self.machine.params.queue_capacity
        target = self.dispatch.pick(
            core.cid, proxies, self._cursor[core.cid], capacity
        )
        self._cursor[core.cid] += 1
        return target

    def _on_probe(self, core, msg) -> None:
        machine = self.machine
        capacity = machine.params.queue_capacity
        if core.occupancy() < capacity:
            core.reserved_slots += 1
            machine.send_service_message(
                MsgKind.PROBE_ACK, core, msg.src, payload=msg.payload
            )
        else:
            machine.send_service_message(
                MsgKind.PROBE_NACK,
                core,
                msg.src,
                payload=(msg.payload, core.occupancy()),
            )

    def _on_probe_ack(self, core, msg) -> None:
        machine = self.machine
        tel = self._obs
        if tel is not None:
            tel.counters["runtime.spawn_remote"] += 1
        parent_task, action = msg.payload
        birth = machine.service_now(core)
        child = Task(
            action.fn, action.args, group=action.group, birth_time=birth
        )
        if action.group is not None:
            action.group.register()
        machine.fabric.add_birth(core.cid, birth)
        machine.register_task(child)
        machine.send_service_message(
            MsgKind.TASK_SPAWN,
            core,
            msg.src,
            payload=(child, core.cid, birth),
            size=self.spawn_msg_size,
        )
        # Optimistically bump the proxy so back-to-back spawns spread out.
        self._proxy[core.cid][msg.src] = self._proxy[core.cid][msg.src] + 1
        machine.wake_task(parent_task, True, birth, ctx_switch=False)

    def _on_probe_nack(self, core, msg) -> None:
        machine = self.machine
        tel = self._obs
        if tel is not None:
            tel.counters["runtime.spawn_denied"] += 1
        payload, occupancy = msg.payload
        parent_task, action = payload
        self._proxy[core.cid][msg.src] = occupancy
        machine.stats.tasks_run_inline += 1
        machine.wake_task(parent_task, False, machine.service_now(core),
                          ctx_switch=False)

    def _on_task_spawn(self, core, msg) -> None:
        machine = self.machine
        child, parent_core, birth = msg.payload
        core.reserved_slots -= 1
        if core.reserved_slots < 0:
            raise ProtocolError("TASK_SPAWN without a reservation")
        child.ready_time = machine.service_now(core)
        child.core = core.cid
        core.queue.append(child)
        hook = getattr(machine.policy, "on_event_enqueued", None)
        if hook is not None:
            hook(core)
        machine.fabric.remove_birth(parent_core, birth)
        # Removing the birth may raise the parent's drift floor.
        parent = machine.cores[parent_core]
        if parent.stalled:
            machine._make_ready(parent)
        self._broadcast_queue_state(core, at_time=child.ready_time)

    def _broadcast_queue_state(self, core, at_time=None) -> None:
        occupancy = core.occupancy()
        if occupancy == self._last_broadcast[core.cid]:
            return
        self._last_broadcast[core.cid] = occupancy
        machine = self.machine
        if at_time is None:
            at_time = machine.now(core)
        for nbr in self._neighbors[core.cid]:
            machine.send_message_at(
                MsgKind.QUEUE_STATE, core, nbr, at_time, payload=occupancy
            )

    def _on_queue_state(self, core, msg) -> None:
        self._proxy[core.cid][msg.src] = msg.payload

    def on_task_dequeued(self, core) -> None:
        """Engine hook: a task left the queue; refresh neighbour proxies."""
        self._broadcast_queue_state(core)

    # -- groups and join -----------------------------------------------------
    def join(self, core, task: Task, group: TaskGroup) -> None:
        machine = self.machine
        if group.count == 0:
            # All members already finished (in host order); causally the
            # joiner cannot proceed before the completion news could reach
            # this core.
            last = self._group_last_finish.get(group.gid)
            if last is not None:
                finish_time, finish_core = last
                arrival = finish_time + machine.noc.min_latency(
                    finish_core, core.cid
                )
                machine.advance_to(core, arrival)
            task.resume_value = None
            return
        machine.suspend_current(core, "join")
        group.joiners.append(task)

    def on_task_finished(self, core, task: Task) -> None:
        """Engine hook: group accounting + queue-state refresh."""
        machine = self.machine
        group = task.group
        if group is not None:
            machine.advance_by(
                core, core.scaled(machine.params.group_decrement_cycles)
            )
            remaining = group.deregister()
            now = machine.now(core)
            last = self._group_last_finish.get(group.gid)
            if last is None or now > last[0]:
                self._group_last_finish[group.gid] = (now, core.cid)
            if remaining == 0 and group.joiners:
                joiners, group.joiners = group.joiners, []
                for joiner in joiners:
                    machine.send_with_overhead(
                        MsgKind.JOINER_REQUEST,
                        core,
                        joiner.core,
                        payload=joiner,
                    )
        self._broadcast_queue_state(core)

    def _on_joiner_request(self, core, msg) -> None:
        machine = self.machine
        joiner = msg.payload
        machine.wake_task(joiner, None, machine.service_now(core),
                          ctx_switch=True)

    # -- work stealing (extension) -----------------------------------------
    #
    # The paper's run-time only pushes work (conditional spawning); Cilk's
    # distributed version steals remotely when local task sources are
    # depleted.  This optional extension lets an idle core pull a NEW
    # (not-yet-started) task from its most loaded neighbour: one
    # outstanding request at a time, and only when the neighbour's proxied
    # occupancy reaches the steal threshold.

    def on_core_idle(self, core) -> None:
        """Engine hook: a core ran out of work."""
        if not self.work_stealing or self._steal_pending[core.cid]:
            return
        proxies = self._proxy[core.cid]
        if not proxies:
            return
        victim = max(proxies, key=proxies.get)
        if proxies[victim] < self.steal_threshold:
            return
        machine = self.machine
        self._steal_pending[core.cid] = True
        self.steals_attempted += 1
        tel = self._obs
        if tel is not None:
            tel.counters["runtime.steals_attempted"] += 1
        machine.send_message_at(
            MsgKind.STEAL_REQUEST, core, victim,
            machine.fabric.vtime[core.cid], payload=core.cid,
        )

    def _on_steal_request(self, core, msg) -> None:
        machine = self.machine
        # Only NEW tasks may migrate; started tasks are bound to their core.
        stolen = None
        for i in range(len(core.queue) - 1, -1, -1):
            task = core.queue[i]
            if task.gen is None:
                stolen = task
                del core.queue[i]
                break
        if stolen is not None:
            self._broadcast_queue_state(core,
                                        at_time=machine.service_now(core))
        machine.send_service_message(
            MsgKind.STEAL_REPLY, core, msg.src, payload=stolen,
            size=self.spawn_msg_size if stolen is not None else 8.0,
        )

    def _on_steal_reply(self, core, msg) -> None:
        machine = self.machine
        self._steal_pending[core.cid] = False
        task = msg.payload
        if task is None:
            return
        self.steals_successful += 1
        tel = self._obs
        if tel is not None:
            tel.counters["runtime.steals_successful"] += 1
        task.ready_time = machine.service_now(core)
        task.core = core.cid
        core.queue.append(task)
        hook = getattr(machine.policy, "on_event_enqueued", None)
        if hook is not None:
            hook(core)
        self._broadcast_queue_state(core, at_time=task.ready_time)

    # -- locks -------------------------------------------------------------
    def acquire(self, core, task: Task, lock: SimLock) -> None:
        machine = self.machine
        if lock.home_core is not None and lock.home_core != core.cid:
            suspended = machine.suspend_current(core, "lock")
            machine.send_with_overhead(
                MsgKind.LOCK_REQUEST, core, lock.home_core, payload=(suspended, lock)
            )
            return
        # Local (or home) acquisition: atomic RMW on the lock word.
        machine.advance_by(core, self._lock_rmw_cycles(core))
        if lock.holder is None:
            self._grant_local(core, task, lock)
            task.resume_value = None
        else:
            lock.contended_acquisitions += 1
            tel = self._obs
            if tel is not None:
                tel.counters["runtime.lock_contended"] += 1
            suspended = machine.suspend_current(core, "lock")
            lock.waiters.append(suspended)

    def _lock_rmw_cycles(self, core) -> float:
        memory = self.machine.memory
        base = getattr(memory, "bank_latency", None)
        if base is None:
            base = getattr(memory, "l2_latency", 10.0)
        return base + getattr(memory, "atomic_op_cycles", 2.0)

    def _grant_local(self, core, task: Task, lock: SimLock) -> None:
        lock.holder = task
        lock.acquisitions += 1
        core.locks_held += 1

    def release(self, core, task: Task, lock: SimLock) -> None:
        machine = self.machine
        if lock.holder is not task:
            raise ProtocolError(
                f"{lock.name}: released by {task!r} but held by {lock.holder!r}"
            )
        machine.advance_by(core, self._lock_rmw_cycles(core))
        core.locks_held -= 1
        if core.locks_held < 0:
            raise ProtocolError("core lock count went negative")
        task.resume_value = None
        if lock.home_core is not None and lock.home_core != core.cid:
            # Homed lock released remotely: notify the home core, which
            # grants the next waiter when it processes the release.
            machine.send_with_overhead(
                MsgKind.LOCK_RELEASE, core, lock.home_core, payload=(task, lock)
            )
            return
        lock.holder = None
        self._grant_next(core, lock)

    def _grant_next(self, core, lock: SimLock, at_time=None) -> None:
        """Hand the lock to the next FIFO waiter (possibly remote)."""
        if lock.holder is not None or not lock.waiters:
            return
        machine = self.machine
        if at_time is None:
            at_time = machine.now(core)
        waiter = lock.waiters.popleft()
        lock.holder = waiter
        lock.acquisitions += 1
        waiter_core = machine.cores[waiter.core]
        waiter_core.locks_held += 1
        handoff = machine.noc.min_latency(core.cid, waiter.core)
        machine.wake_task(
            waiter, None, at_time + handoff, ctx_switch=True
        )

    def _on_lock_request(self, core, msg) -> None:
        machine = self.machine
        task, lock = msg.payload
        if lock.holder is None:
            lock.holder = task
            lock.acquisitions += 1
            machine.cores[task.core].locks_held += 1
            machine.send_service_message(
                MsgKind.LOCK_GRANT, core, msg.src, payload=(task, lock),
                extra_delay=self._lock_rmw_cycles(core),
            )
        else:
            lock.contended_acquisitions += 1
            tel = self._obs
            if tel is not None:
                tel.counters["runtime.lock_contended"] += 1
            lock.waiters.append(task)

    def _on_lock_grant(self, core, msg) -> None:
        task, lock = msg.payload
        self.machine.wake_task(
            task, None, self.machine.service_now(core), ctx_switch=True
        )

    def _on_lock_release(self, core, msg) -> None:
        task, lock = msg.payload
        # The releaser already dropped its local hold count in release().
        lock.holder = None
        self._grant_next(core, lock, at_time=self.machine.service_now(core))
