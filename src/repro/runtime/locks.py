"""Simulation-visible locks.

A task holding a lock exempts its core from drift stalls until release
(the paper's Section II-B deadlock-avoidance scheme), because a very-late
contender would otherwise prevent the holder from ever advancing far enough
to release.

Two flavours:

* *local* locks (``home_core=None``): shared-memory style; acquisition is
  an atomic RMW on the lock's memory word;
* *homed* locks: the lock lives on a home core; remote acquisition runs a
  LOCK_REQUEST / LOCK_GRANT message protocol over the NoC.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Optional

_lock_counter = itertools.count()


class SimLock:
    """One lock instance (FIFO grant order)."""

    __slots__ = ("lid", "name", "home_core", "holder", "waiters",
                 "acquisitions", "contended_acquisitions")

    def __init__(self, name: str = "", home_core: Optional[int] = None) -> None:
        self.lid = next(_lock_counter)
        self.name = name or f"lock{self.lid}"
        self.home_core = home_core
        self.holder: Optional[object] = None  # Task
        self.waiters: Deque[object] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def is_held(self) -> bool:
        """Whether some task currently holds the lock."""
        return self.holder is not None

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimLock({self.name}, held={self.is_held}, waiters={len(self.waiters)})"
