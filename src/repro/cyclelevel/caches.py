"""Cycle-level memory system: split L1 I/D caches with residency tracking.

The validation referee (standing in for the paper's UNISIM-based hybrid
cycle-level/system-level simulator) models architectures of the
shared-memory type with fully simulated cache-coherence effects and L1
caches split into separate instruction and data caches (paper, Section V).

Unlike SiMany's pessimistic annotation-driven L1, the referee tracks object
residency in per-core LRU caches, so its timing derives from the actual
access stream — a genuinely independent (and slower, more detailed) timing
model to validate trends against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..memory.base import MemoryModel
from ..memory.cache import LruCache
from ..memory.cells import Cell, Link
from ..memory.coherence import CoherenceModel


class CycleLevelMemory(MemoryModel):
    """Shared banks + per-core LRU L1D caches + directory coherence."""

    def __init__(
        self,
        bank_latency: float = 10.0,
        l1_latency: float = 1.0,
        l1_capacity: int = 64,
        coherence: Optional[CoherenceModel] = None,
        atomic_op_cycles: float = 2.0,
    ) -> None:
        self.bank_latency = bank_latency
        self.l1_latency = l1_latency
        self.l1_capacity = l1_capacity
        self.atomic_op_cycles = atomic_op_cycles
        self.coherence = coherence or CoherenceModel(
            invalidate_hook=self._invalidate
        )
        if self.coherence.invalidate_hook is None:
            self.coherence.invalidate_hook = self._invalidate
        self._l1d: List[LruCache] = []

    def attach(self, machine) -> None:
        super().attach(machine)
        # The UNISIM referee keeps L1 speed equal across cores even on
        # polymorphic architectures (the detail behind the Fig. 6 offset).
        self._l1d = [
            LruCache(self.l1_capacity, self.l1_latency, self.bank_latency)
            for _ in range(machine.n_cores)
        ]

    def _invalidate(self, cid: int, obj) -> None:
        if self._l1d:
            self._l1d[cid].invalidate(obj)

    def access(self, core, action) -> float:
        n = action.reads + action.writes
        if n == 0:
            return 0.0
        cache = self._l1d[core.cid]
        obj = action.obj if action.obj is not None else ("anon", core.cid)
        # First touch pays the residency outcome; the remaining accesses of
        # the aggregate run hit the now-resident object.
        cost = cache.access(obj)
        if n > 1:
            cost += (n - 1) * self.l1_latency
            cache.stats.hits += n - 1
        if action.obj is not None:
            cost += self.coherence.penalty(
                core.cid, action.obj, action.reads, action.writes
            )
        return cost

    def cell_access(self, core, task, action) -> Optional[float]:
        cell = action.cell.deref() if isinstance(action.cell, Link) else action.cell
        cost = self._l1d[core.cid].access(cell) + self.atomic_op_cycles
        reads = 1 if "r" in action.mode else 0
        writes = 1 if "w" in action.mode else 0
        cost += self.coherence.penalty(core.cid, cell, reads, writes)
        return cost

    def new_cell(self, data=None, size: float = 64.0, home: int = 0) -> Cell:
        return Cell(data=data, size=size, owner=home)

    def hit_rates(self) -> Dict[int, float]:
        """Per-core L1D hit rates (diagnostics)."""
        return {i: c.stats.hit_rate for i, c in enumerate(self._l1d)}
