"""Cycle-level validation referee (UNISIM stand-in)."""

from .caches import CycleLevelMemory
from .pipeline import PIPELINE_DEPTH, PipelineModel
from .simulator import build_cycle_level_machine, cycle_level_config

__all__ = [
    "CycleLevelMemory",
    "PIPELINE_DEPTH",
    "PipelineModel",
    "build_cycle_level_machine",
    "cycle_level_config",
]
