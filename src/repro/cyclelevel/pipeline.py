"""Cycle-level pipeline timing parameters.

The referee models a scalar 5-stage in-order pipeline (PowerPC 405 class)
at a finer grain than SiMany's flat instruction-class costs: structural
stalls and fetch effects appear as a constant CPI overhead factor applied
to every instruction block, plus a per-block instruction-fetch cost for the
split L1 I-cache.

These are referee-internal constants — SiMany never sees them, which is
what makes the two simulators genuinely independent referees of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

#: 5-stage in-order scalar pipeline parameters.
PIPELINE_DEPTH = 5


@dataclass(frozen=True)
class PipelineModel:
    """Constant-overhead pipeline timing refinement."""

    #: CPI multiplier for hazards and structural stalls an in-order
    #: 5-stage scalar core suffers beyond the ideal class costs.
    overhead_factor: float = 1.15
    #: Per-block instruction fetch cost charged to the split L1 I-cache.
    icache_block_cycles: float = 1.0
    #: Mispredict penalty equals a full pipeline flush.
    mispredict_penalty: float = float(PIPELINE_DEPTH)

    def __post_init__(self) -> None:
        if self.overhead_factor < 1.0:
            raise ValueError("pipeline overhead factor must be >= 1")
        if self.icache_block_cycles < 0 or self.mispredict_penalty < 0:
            raise ValueError("pipeline cycle costs must be non-negative")
