"""The cycle-level validation referee.

Stands in for the paper's hybrid cycle-level/system-level simulator based
on the UNISIM framework (Section V): a conservative (strict virtual-time
order) engine over the same workloads, with

* fully simulated cache-coherence effects (directory + L1 invalidations),
* L1 caches split into separate instruction and data caches (per-block
  I-fetch costs and residency-tracked D-caches),
* a 5-stage pipeline CPI overhead,
* L1 speed *not* scaled with core speed on polymorphic architectures
  (the implementation difference the paper says offsets Fig. 6's CL curves).

The comparison protocol matches the paper: coherence timings are also
enabled in SiMany during validation runs, so the two simulators charge the
same kinds of penalties and differ in *how* they time them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .caches import CycleLevelMemory
from .pipeline import PipelineModel
from ..arch.config import ArchConfig, POLY_FAST_FACTOR, POLY_SLOW_FACTOR
from ..core.engine import EngineParams, Machine
from ..core.sync import ConservativeSync
from ..network.topology import square_mesh
from ..runtime.runtime import Runtime


def cycle_level_config(
    n_cores: int, polymorphic: bool = False, seed: int = 0
) -> ArchConfig:
    """Declarative description of a referee machine (for reports)."""
    return ArchConfig(
        name=f"cycle-level-{n_cores}{'p' if polymorphic else ''}",
        n_cores=n_cores,
        topology="mesh",
        memory="shared",
        coherence_enabled=True,
        polymorphic=polymorphic and n_cores > 1,
        sync="conservative",
        scale_l1_with_core=False,
        seed=seed,
    )


def build_cycle_level_machine(
    n_cores: int,
    polymorphic: bool = False,
    seed: int = 0,
    pipeline: Optional[PipelineModel] = None,
    speed_factors: Optional[Sequence[float]] = None,
    l1_capacity: int = 64,
) -> Machine:
    """Assemble a conservative, coherence-detailed referee machine."""
    pipeline = pipeline or PipelineModel()
    topo = square_mesh(n_cores)
    params = EngineParams(
        compute_overhead_factor=pipeline.overhead_factor,
        icache_block_cycles=pipeline.icache_block_cycles,
        # Strict ordering wants short slices so cores interleave finely.
        slice_actions=4,
    )
    if speed_factors is None and polymorphic and n_cores > 1:
        speed_factors = [
            POLY_SLOW_FACTOR if c % 2 == 0 else POLY_FAST_FACTOR
            for c in range(n_cores)
        ]
    machine = Machine(
        topo,
        ConservativeSync(),
        params,
        drift_bound=100.0,  # unused by the conservative policy
        shadow_enabled=False,
        speed_factors=speed_factors,
        branch_penalty=pipeline.mispredict_penalty,
        seed=seed,
    )
    machine.attach_memory(CycleLevelMemory(l1_capacity=l1_capacity))
    machine.attach_runtime(Runtime())
    return machine
