"""The simulated core: task queue, inbox, suspended-task bookkeeping.

In the paper's implementation, the code running on a given core is simulated
in a dedicated userland thread with non-preemptive scheduling; here each
core multiplexes a current task (a generator) with a queue of ready tasks
and an inbox of architectural messages, all driven cooperatively by the
engine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .messages import Message
from .task import Task
from ..timing.annotator import BlockAnnotator


class CoreUnit:
    """Run-time state of one simulated core."""

    __slots__ = (
        "cid", "speed_factor", "annotator",
        "queue", "inbox", "current", "reserved_slots",
        "locks_held", "user_mailbox", "recv_waiters",
        "last_processed_arrival", "busy_cycles", "service_clock",
        "in_ready", "stalled", "lax_ref", "lax_next_check",
    )

    def __init__(
        self,
        cid: int,
        annotator: BlockAnnotator,
        speed_factor: float = 1.0,
    ) -> None:
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        self.cid = cid
        self.speed_factor = speed_factor
        self.annotator = annotator
        self.queue: Deque[Task] = deque()
        self.inbox: Deque[Message] = deque()
        self.current: Optional[Task] = None
        self.reserved_slots = 0
        self.locks_held = 0
        self.user_mailbox: Deque[Message] = deque()
        self.recv_waiters: List[Tuple[Task, object]] = []
        self.last_processed_arrival = 0.0
        self.busy_cycles = 0.0
        #: Virtual timeline of the core's run-time/NI message servicing.
        #: Requests are serviced at max(arrival, service_clock): the
        #: run-time handles incoming messages independently of the task
        #: clock, and replies are dated with the request time plus a local
        #: processing time (paper, Section II-A).
        self.service_clock = 0.0
        self.in_ready = False
        self.stalled = False
        # LaxP2P bookkeeping (used only under that policy).
        self.lax_ref: Optional[int] = None
        self.lax_next_check = 0.0

    def has_work(self) -> bool:
        """True when the core has something to execute right now."""
        return self.current is not None or bool(self.queue) or bool(self.inbox)

    def occupancy(self) -> int:
        """Task-queue occupancy as advertised to neighbours (incl. holds)."""
        return len(self.queue) + self.reserved_slots + (1 if self.current else 0)

    def next_event_time(self) -> float:
        """Earliest pending inbox message arrival (INF when none)."""
        if not self.inbox:
            return float("inf")
        return min(m.arrival for m in self.inbox)

    def next_start_time(self) -> float:
        """Earliest start/resume time among queued tasks (INF when none).

        Only meaningful when the core is free: scheduling is
        non-preemptive, so a busy core cannot promise queued work.
        """
        earliest = float("inf")
        for task in self.queue:
            t = task.resume_time if task.gen is not None else task.ready_time
            if t < earliest:
                earliest = t
        return earliest

    def scaled(self, cycles: float) -> float:
        """Apply this core's speed factor to a raw cycle count."""
        return cycles * self.speed_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Core{self.cid}(q={len(self.queue)}, inbox={len(self.inbox)}, "
            f"current={self.current is not None})"
        )
