"""The simulated core: task queue, inbox, suspended-task bookkeeping.

In the paper's implementation, the code running on a given core is simulated
in a dedicated userland thread with non-preemptive scheduling; here each
core multiplexes a current task (a generator) with a queue of ready tasks
and an inbox of architectural messages, all driven cooperatively by the
engine.

The inbox is a FIFO deque (host delivery order) with an optional
arrival-ordered heap maintained incrementally alongside it.  Policies that
consume messages in arrival order (the conservative referee) or that track
per-core event horizons (quantum, bounded slack) enable the heap via
``track_arrivals``; earliest-message queries then cost O(log n) instead of
an O(n) scan.  The two structures stay coherent through tombstones: a
message popped from either side is marked ``consumed`` and lazily purged
from the other.  The deque's front is never a tombstone, so its truthiness
(``has_work``) stays exact.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Deque, List, Optional, Tuple

from .messages import Message
from .soa import CoreStateArrays
from .task import Task
from ..timing.annotator import BlockAnnotator

_INF = float("inf")


def _plane_scalar(column: str, doc: str) -> property:
    """A CoreUnit attribute backed by a :class:`CoreStateArrays` column.

    The engine's hot loops index the columns directly (cached array
    aliases); these properties are the *thin-view* access path for cold
    code and existing call sites — both alias the same memory, so they
    can never disagree.
    """

    def fget(self):
        return getattr(self._soa, column)[self.cid]

    def fset(self, value):
        getattr(self._soa, column)[self.cid] = value

    return property(fget, fset, doc=doc)


class CoreUnit:
    """Run-time state of one simulated core.

    The hot per-core scalars (service clock, busy cycles, scheduler
    flags, last processed arrival) live in the machine-wide
    :class:`~repro.core.soa.CoreStateArrays` plane; this object is a
    thin view over its ``cid`` slot plus the genuinely per-core
    containers (task queue, inbox, mailbox) the cold paths use.
    """

    __slots__ = (
        "cid", "speed_factor", "annotator", "_soa",
        "queue", "inbox", "current", "reserved_slots",
        "locks_held", "user_mailbox", "recv_waiters",
        "lax_ref", "lax_next_check",
        "track_arrivals", "_inbox_heap",
    )

    last_processed_arrival = _plane_scalar(
        "last_arrival", "Arrival timestamp of the last serviced message.")
    busy_cycles = _plane_scalar(
        "busy_cycles", "Accumulated busy cycles on this core.")
    #: Virtual timeline of the core's run-time/NI message servicing.
    #: Requests are serviced at max(arrival, service_clock): the
    #: run-time handles incoming messages independently of the task
    #: clock, and replies are dated with the request time plus a local
    #: processing time (paper, Section II-A).
    service_clock = _plane_scalar(
        "service_clock", "Run-time/NI message service clock.")
    in_ready = _plane_scalar(
        "in_ready", "1 while queued in the engine's ready ring.")
    stalled = _plane_scalar(
        "stalled", "1 while drift-stalled.")

    def __init__(
        self,
        cid: int,
        annotator: BlockAnnotator,
        speed_factor: float = 1.0,
        soa: Optional[CoreStateArrays] = None,
    ) -> None:
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        self.cid = cid
        self.speed_factor = speed_factor
        self.annotator = annotator
        # Standalone construction (unit tests) gets a private plane.
        self._soa = soa if soa is not None \
            else CoreStateArrays(cid + 1, [()] * (cid + 1))
        self.queue: Deque[Task] = deque()
        self.inbox: Deque[Message] = deque()
        self.current: Optional[Task] = None
        self.reserved_slots = 0
        self.locks_held = 0
        self.user_mailbox: Deque[Message] = deque()
        self.recv_waiters: List[Tuple[Task, object]] = []
        # LaxP2P bookkeeping (used only under that policy).
        self.lax_ref: Optional[int] = None
        self.lax_next_check = 0.0
        #: Maintain the arrival-ordered heap alongside the FIFO deque.
        #: Set by the engine from the sync policy's needs; policies that
        #: only ever pop host-order (spatial, unbounded) skip the heap
        #: entirely.
        self.track_arrivals = False
        self._inbox_heap: List[Tuple[float, int, Message]] = []

    # -- inbox -----------------------------------------------------------
    def inbox_push(self, msg: Message) -> None:
        """Deliver an architectural message to this core."""
        inbox = self.inbox
        if self.track_arrivals:
            heap = self._inbox_heap
            if heap and not inbox:
                # All live messages were drained host-order; drop the
                # tombstones instead of letting them accumulate.
                heap.clear()
            heappush(heap, (msg.arrival, msg.seq, msg))
        inbox.append(msg)
        self._soa.inbox_len[self.cid] += 1

    def inbox_pop_fifo(self) -> Message:
        """Next message in host delivery order."""
        inbox = self.inbox
        msg = inbox.popleft()  # the front is never a tombstone
        msg.consumed = True
        self._soa.inbox_len[self.cid] -= 1
        while inbox and inbox[0].consumed:
            inbox.popleft()
        return msg

    def inbox_pop_earliest(self) -> Message:
        """Next message in arrival-timestamp order (FIFO among ties).

        Falls back to a linear scan when the heap is disabled — this is
        the legacy deque path, kept selectable so equivalence between the
        two implementations stays testable.
        """
        inbox = self.inbox
        self._soa.inbox_len[self.cid] -= 1
        if self.track_arrivals:
            heap = self._inbox_heap
            while True:
                _, _, msg = heappop(heap)
                if not msg.consumed:
                    break
            msg.consumed = True
            if inbox and inbox[0] is msg:
                inbox.popleft()
            while inbox and inbox[0].consumed:
                inbox.popleft()
            return msg
        best = 0
        best_t = inbox[0].arrival
        for i in range(1, len(inbox)):
            t = inbox[i].arrival
            if t < best_t:
                best = i
                best_t = t
        msg = inbox[best]
        del inbox[best]
        return msg

    def inbox_peek_earliest(self) -> Optional[Message]:
        """The earliest-arrival pending message (None when empty)."""
        if self.track_arrivals:
            heap = self._inbox_heap
            while heap:
                msg = heap[0][2]
                if msg.consumed:
                    heappop(heap)
                    continue
                return msg
            return None
        best = None
        best_t = _INF
        for msg in self.inbox:
            if msg.arrival < best_t:
                best = msg
                best_t = msg.arrival
        return best

    def has_work(self) -> bool:
        """True when the core has something to execute right now."""
        return self.current is not None or bool(self.queue) or bool(self.inbox)

    def occupancy(self) -> int:
        """Task-queue occupancy as advertised to neighbours (incl. holds)."""
        return len(self.queue) + self.reserved_slots + (1 if self.current else 0)

    def next_event_time(self) -> float:
        """Earliest pending inbox message arrival (INF when none)."""
        if not self.inbox:
            return _INF
        msg = self.inbox_peek_earliest()
        return _INF if msg is None else msg.arrival

    def next_start_time(self) -> float:
        """Earliest start/resume time among queued tasks (INF when none).

        Only meaningful when the core is free: scheduling is
        non-preemptive, so a busy core cannot promise queued work.
        """
        earliest = _INF
        for task in self.queue:
            t = task.resume_time if task.gen is not None else task.ready_time
            if t < earliest:
                earliest = t
        return earliest

    def scaled(self, cycles: float) -> float:
        """Apply this core's speed factor to a raw cycle count."""
        return cycles * self.speed_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Core{self.cid}(q={len(self.queue)}, inbox={len(self.inbox)}, "
            f"current={self.current is not None})"
        )
