"""Tasks, task groups and the task-side programming API.

The programming model follows the paper's Section IV: a task-oriented model
in the spirit of TBB/Capsule with *conditional spawning* — a ``probe``
primitive checks neighbour occupancy before a spawn is attempted, and a
denied probe means the program executes the task's code sequentially.
Coarse synchronization is expressed through task grouping and ``join``.

Simulated program code is a Python generator taking a :class:`TaskContext`
as first argument and yielding :mod:`repro.core.actions` records.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .actions import (
    Acquire,
    CellAccess,
    Compute,
    Join,
    LocalTime,
    MemAccess,
    RecvMsg,
    Release,
    SendMsg,
    TrySpawn,
    YieldCpu,
)
from .errors import ProtocolError
from ..timing.annotator import Block

_task_counter = itertools.count()
_group_counter = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle states of a task."""

    NEW = "new"              # created, not yet started anywhere
    RUNNING = "running"      # generator live on a core
    SUSPENDED = "suspended"  # blocked (join, lock, probe, remote data)
    READY = "ready"          # woken, waiting in a core's queue to resume
    DONE = "done"


class Task:
    """One task instance.

    A task starts on one core and stays there (the run-time system dispatches
    tasks at spawn time only; there is no preemptive migration).
    """

    __slots__ = (
        "tid", "fn", "args", "group", "state", "gen", "core",
        "birth_time", "ready_time", "start_time", "finish_time", "result",
        "resume_value", "resume_time", "resume_is_ctx_switch",
        "waiting_on", "is_root",
    )

    def __init__(
        self,
        fn: Callable[..., Iterator],
        args: Tuple = (),
        group: Optional["TaskGroup"] = None,
        birth_time: float = 0.0,
        is_root: bool = False,
    ) -> None:
        self.tid = next(_task_counter)
        self.fn = fn
        self.args = args
        self.group = group
        self.state = TaskState.NEW
        self.gen: Optional[Iterator] = None
        self.core: Optional[int] = None
        self.birth_time = birth_time
        #: Virtual time at which the task became available on its core
        #: (arrival of the TASK_SPAWN message at the destination).
        self.ready_time = birth_time
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.result: Any = None
        self.resume_value: Any = None
        self.resume_time: float = 0.0
        self.resume_is_ctx_switch: bool = False
        self.waiting_on: Optional[str] = None
        self.is_root = is_root

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", "?")
        return f"Task#{self.tid}({name}, {self.state.value}, core={self.core})"


class TaskGroup:
    """A group of tasks that can be waited on with ``join``.

    Each successful spawn into the group increments the active-task counter;
    each member task's termination decrements it.  Joiners suspend until the
    counter reaches zero; the last terminating task sends a JOINER_REQUEST
    notification to each joiner's core (paper, Section IV).
    """

    __slots__ = ("gid", "count", "joiners", "name")

    def __init__(self, name: str = "") -> None:
        self.gid = next(_group_counter)
        self.count = 0
        self.joiners: List[Task] = []
        self.name = name or f"group{self.gid}"

    def register(self) -> None:
        """Count one spawned member into the group."""
        self.count += 1

    def deregister(self) -> int:
        """Count one member termination; returns the remaining count."""
        if self.count <= 0:
            raise ProtocolError(f"{self.name}: deregister below zero")
        self.count -= 1
        return self.count

    def __repr__(self) -> str:  # pragma: no cover
        return f"TaskGroup({self.name}, count={self.count})"


class TaskContext:
    """API surface handed to simulated program code.

    All methods are cheap factories for action records; the code yields them
    and the engine interprets them.  The context is bound to the core a task
    runs on; inline-executed child tasks share their caller's context.
    """

    __slots__ = ("machine", "core_id", "task")

    def __init__(self, machine, core_id: int, task: Task) -> None:
        self.machine = machine
        self.core_id = core_id
        self.task = task

    # -- queries ----------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Number of cores of the simulated machine."""
        return self.machine.n_cores

    def now(self) -> LocalTime:
        """Yieldable; resolves to the core's current virtual time."""
        return LocalTime()

    # -- computation -------------------------------------------------------
    def compute(
        self,
        cycles: float = 0.0,
        block: Optional[Block] = None,
        repeat: float = 1.0,
    ) -> Compute:
        """Execute an annotated instruction block (or raw cycles) locally."""
        return Compute(cycles=cycles, block=block, repeat=repeat)

    def mem(
        self,
        reads: int = 0,
        writes: int = 0,
        obj: Optional[object] = None,
        bank: Optional[int] = None,
        l1_hit_fraction: float = 0.0,
    ) -> MemAccess:
        """Aggregate shared-memory access."""
        return MemAccess(
            reads=reads,
            writes=writes,
            obj=obj,
            bank=bank,
            l1_hit_fraction=l1_hit_fraction,
        )

    def cell(self, cell: object, mode: str = "r") -> CellAccess:
        """Distributed-memory cell access via a link (may fetch remotely)."""
        return CellAccess(cell=cell, mode=mode)

    # -- tasking ----------------------------------------------------------
    def try_spawn(
        self, fn: Callable, *args, group: Optional[TaskGroup] = None
    ) -> TrySpawn:
        """Probe + spawn; resolves to True when dispatched remotely."""
        return TrySpawn(fn=fn, args=tuple(args), group=group)

    def spawn_or_inline(
        self, fn: Callable, *args, group: Optional[TaskGroup] = None
    ) -> Iterator:
        """Spawn if a neighbour accepts, otherwise run inline (sequentially).

        Usage: ``yield from ctx.spawn_or_inline(work, a, b, group=g)``.
        Returns True when the task went remote.
        """
        spawned = yield TrySpawn(fn=fn, args=tuple(args), group=group)
        if not spawned:
            yield from fn(self, *args)
        return spawned

    def join(self, group: TaskGroup) -> Join:
        """Wait until every active task of the group has finished."""
        return Join(group=group)

    # -- locking -------------------------------------------------------------
    def acquire(self, lock: object) -> Acquire:
        """Acquire a simulation-visible lock (blocks until granted)."""
        return Acquire(lock=lock)

    def release(self, lock: object) -> Release:
        """Release a lock held by this task."""
        return Release(lock=lock)

    # -- messaging ---------------------------------------------------------
    def send(
        self, dst: int, payload: Any = None, size: float = 32.0,
        tag: Optional[object] = None,
    ) -> SendMsg:
        """Send an application-level message to another core."""
        return SendMsg(dst=dst, payload=payload, size=size, tag=tag)

    def recv(self, tag: Optional[object] = None) -> RecvMsg:
        """Block until a matching application-level message arrives."""
        return RecvMsg(tag=tag)

    def yield_cpu(self) -> YieldCpu:
        """Voluntary reschedule point (no virtual-time cost)."""
        return YieldCpu()
