"""SiMany core: virtual time, spatial synchronization, simulation engine."""

from .actions import (
    Acquire,
    Action,
    CellAccess,
    Compute,
    Join,
    LocalTime,
    MemAccess,
    RecvMsg,
    Release,
    SendMsg,
    TrySpawn,
    YieldCpu,
)
from .coreunit import CoreUnit
from .engine import EngineParams, Machine
from .errors import ProtocolError, SimConfigError, SimDeadlock, SimError
from .fabric import VirtualTimeFabric
from .messages import DEFAULT_SIZES, Message, MsgKind
from .stats import SimStats, WallTimer
from .sync import (
    ActiveMinTracker,
    BoundedSlackSync,
    ConservativeSync,
    GlobalQuantumSync,
    LaxP2PSync,
    SpatialSync,
    SyncPolicy,
    UnboundedSync,
    make_policy,
)
from .task import Task, TaskContext, TaskGroup, TaskState

__all__ = [
    "Acquire",
    "Action",
    "ActiveMinTracker",
    "BoundedSlackSync",
    "CellAccess",
    "Compute",
    "ConservativeSync",
    "CoreUnit",
    "DEFAULT_SIZES",
    "EngineParams",
    "GlobalQuantumSync",
    "Join",
    "LaxP2PSync",
    "LocalTime",
    "Machine",
    "MemAccess",
    "Message",
    "MsgKind",
    "ProtocolError",
    "RecvMsg",
    "Release",
    "SendMsg",
    "SimConfigError",
    "SimDeadlock",
    "SimError",
    "SimStats",
    "SpatialSync",
    "SyncPolicy",
    "Task",
    "TaskContext",
    "TaskGroup",
    "TaskState",
    "TrySpawn",
    "UnboundedSync",
    "VirtualTimeFabric",
    "WallTimer",
    "YieldCpu",
    "make_policy",
]
