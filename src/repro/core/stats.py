"""Simulation statistics.

Counters the evaluation needs: completion virtual time (for speedups),
host wall-clock (for normalized simulation time, Fig. 7), event/message
counts, context switches, drift stalls and out-of-order processing events.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimStats:
    """Counters collected over one simulation run."""

    n_cores: int = 0
    completion_vtime: float = 0.0
    wall_seconds: float = 0.0
    actions: int = 0
    compute_actions: int = 0
    mem_accesses: int = 0
    cell_accesses: int = 0
    remote_cell_accesses: int = 0
    context_switches: int = 0
    tasks_started: int = 0
    tasks_spawned_remote: int = 0
    tasks_run_inline: int = 0
    drift_stalls: int = 0
    lock_waiver_runs: int = 0
    out_of_order_msgs: int = 0
    shadow_recomputes: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    #: Concurrently-runnable core counts sampled during the run (only when
    #: EngineParams.parallelism_sample_interval is set).
    parallelism_samples: list = field(default_factory=list)
    noc: Dict[str, float] = field(default_factory=dict)
    core_busy_cycles: Dict[int, float] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        """Architectural messages of all kinds emitted during the run."""
        return sum(self.messages_by_kind.values())

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for report tables."""
        out = {
            "n_cores": self.n_cores,
            "completion_vtime": self.completion_vtime,
            "wall_seconds": self.wall_seconds,
            "actions": self.actions,
            "compute_actions": self.compute_actions,
            "mem_accesses": self.mem_accesses,
            "cell_accesses": self.cell_accesses,
            "remote_cell_accesses": self.remote_cell_accesses,
            "context_switches": self.context_switches,
            "tasks_started": self.tasks_started,
            "tasks_spawned_remote": self.tasks_spawned_remote,
            "tasks_run_inline": self.tasks_run_inline,
            "drift_stalls": self.drift_stalls,
            "lock_waiver_runs": self.lock_waiver_runs,
            "out_of_order_msgs": self.out_of_order_msgs,
            "shadow_recomputes": self.shadow_recomputes,
            "total_messages": self.total_messages,
        }
        for kind, count in self.messages_by_kind.items():
            out[f"msgs_{kind.value}"] = count
        out.update({f"noc_{k}": v for k, v in self.noc.items()})
        return out


class WallTimer:
    """Context manager measuring host wall-clock into a SimStats."""

    def __init__(self, stats: SimStats) -> None:
        self.stats = stats
        self._start: Optional[float] = None

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.stats.wall_seconds += time.perf_counter() - self._start
