"""Engine kernel selection and the optional compiled relax kernel.

Three kernels drive the engine's hot loops (``ArchConfig.engine_kernel``):

``python``
    The reference implementation: pure-Python scalar loops, exactly as
    the goldens were captured.  The sanitizer always runs against this
    kernel (its monkeypatched cross-checks assume the reference paths).
``vectorized``
    Same Python relax waves, plus the struct-of-arrays fast paths: the
    spatial drift check runs against a cached floor lower bound, the
    wave-batched dispatcher bulk-primes those floors with one numpy
    gather per drain, and the sharded workers publish their board
    planes with vectorized scatters.  Bit-identical by construction
    (every fast path either produces the same floats or falls back to
    the reference computation).
``compiled``
    The vectorized kernel with the relax wave itself compiled to native
    code (``relax.c``), built on first use with the host C compiler and
    loaded through ctypes.  Falls back to ``vectorized`` with a recorded
    notice when no toolchain is available — selecting ``compiled`` never
    fails a run.

The build is cached in a per-user temp directory keyed by the source
hash, so recompiles only happen when ``relax.c`` changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Tuple

KERNELS = ("python", "vectorized", "compiled")

#: Lazily populated: (CDLL or None, human-readable note).
_compiled: Optional[Tuple[Optional[ctypes.CDLL], str]] = None


def _source_path() -> str:
    return os.path.join(os.path.dirname(__file__), "relax.c")


def _build_library() -> Tuple[Optional[ctypes.CDLL], str]:
    src = _source_path()
    if not os.path.exists(src):  # pragma: no cover - packaging error
        return None, "relax.c not found next to the kernels package"
    cc = (os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
          or shutil.which("clang"))
    if not cc:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    with open(src, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{os.getuid()}")
    lib_path = os.path.join(cache, f"relax-{digest}.so")
    if not os.path.exists(lib_path):
        try:
            os.makedirs(cache, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=cache, suffix=".so")
            os.close(fd)
            # No -ffast-math: the wave must perform the exact IEEE-754
            # operations CPython does (see relax.c).
            cmd = [cc, "-O2", "-fPIC", "-shared", "-o", tmp, src]
            proc = subprocess.run(cmd, capture_output=True, timeout=120)
            if proc.returncode != 0:
                os.unlink(tmp)
                err = proc.stderr.decode(errors="replace").strip()
                return None, f"compile failed: {err.splitlines()[-1] if err else cmd}"
            os.replace(tmp, lib_path)  # atomic: racing builders agree
        except (OSError, subprocess.SubprocessError) as exc:
            return None, f"compile failed: {exc}"
    try:
        lib = ctypes.CDLL(lib_path)
        fn = lib.relax_wave
    except (OSError, AttributeError) as exc:  # pragma: no cover
        return None, f"load failed: {exc}"
    c_ll = ctypes.c_longlong
    fn.restype = None
    fn.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p,      # pub, active
        ctypes.c_void_p, ctypes.c_void_p,      # csr indices, offsets
        ctypes.c_double, ctypes.c_double,      # T, ceiling
        ctypes.c_void_p, ctypes.c_void_p,      # stack, wakes
        c_ll, c_ll, c_ll,                      # stack_cap, wake_cap, max_deg
        ctypes.c_void_p,                       # io[2]
    ]
    return lib, f"compiled with {os.path.basename(cc)}"


def compiled_library() -> Tuple[Optional[ctypes.CDLL], str]:
    """The compiled relax library, building it on first call.

    Returns ``(lib, note)``; ``lib`` is None when unavailable and the
    note says why (surfaced by ``describe()`` and the CI kernel leg).
    """
    global _compiled
    if _compiled is None:
        _compiled = _build_library()
    return _compiled


def resolve_kernel(name: str) -> Tuple[str, str]:
    """Resolve a requested kernel to the one that will actually run.

    ``compiled`` degrades to ``vectorized`` (with a note) when the
    library cannot be built; other names pass through unchanged.
    """
    if name not in KERNELS:
        raise ValueError(
            f"unknown engine kernel {name!r}; choose from {KERNELS}")
    if name == "compiled":
        lib, note = compiled_library()
        if lib is None:
            return "vectorized", f"compiled kernel unavailable ({note})"
        return "compiled", note
    return name, ""
