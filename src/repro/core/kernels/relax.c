/* Compiled inner loop of the virtual-time fabric's relax wave.
 *
 * Exact transliteration of VirtualTimeFabric._relax_up (fabric.py): the
 * same explicit LIFO stack, the same neighbour iteration order (CSR rows
 * store each core's neighbours in Python tuple order), the same
 * left-to-right float min, the same `pub[j] >= limit` prune and the same
 * ceiling clamp — compiled without -ffast-math so every add and compare
 * is the identical IEEE-754 double operation CPython performs.  The wave
 * is therefore bit-identical to the Python implementation, including the
 * ORDER in which cores rise: that order is observable (each rise wakes
 * stalled neighbours, which append to the engine's ready ring), so the
 * risen cores are recorded in `wakes` and the Python wrapper replays the
 * on_publish_increase notifications in exactly that order.  Notification
 * side effects (ready-ring appends, stall-flag clears) never feed back
 * into the wave itself — the wave reads only pub/active/adjacency — so
 * deferring them to the end of a chunk is unobservable.
 *
 * Chunked protocol: the caller owns the stack and wake buffers and loops
 * until the stack drains.  The wave pauses (preserving the stack) when a
 * buffer could overflow on the next node; the wrapper replays that
 * chunk's wakes, grows buffers if needed, and resumes.
 *
 * io[0] = stack length (in/out), io[1] = wakes recorded this chunk (out).
 */

#include <math.h>

void relax_wave(double *pub, const signed char *active,
                const long long *indices, const long long *offsets,
                double T, double ceiling,
                long long *stack, long long *wakes,
                long long stack_cap, long long wake_cap,
                long long max_deg, long long *io)
{
    long long stack_len = io[0];
    long long wake_cnt = 0;
    while (stack_len > 0) {
        if (wake_cnt + max_deg > wake_cap || stack_len + max_deg > stack_cap)
            break; /* pause: caller replays wakes and resumes */
        long long x = stack[--stack_len];
        double limit = pub[x] + T;
        long long end = offsets[x + 1];
        for (long long ii = offsets[x]; ii < end; ii++) {
            long long j = indices[ii];
            if (active[j])
                continue;
            if (pub[j] >= limit)
                continue;
            /* min over j's neighbours, left-to-right like Python's
             * min(map(getter, neighbors[j])); rows are never empty (j
             * has at least neighbour x). */
            long long jend = offsets[j + 1];
            double m = pub[indices[offsets[j]]];
            for (long long kk = offsets[j] + 1; kk < jend; kk++) {
                double v = pub[indices[kk]];
                if (v < m)
                    m = v;
            }
            double cand = m + T;
            if (cand > ceiling)
                cand = ceiling;
            if (cand > pub[j]) {
                pub[j] = cand;
                wakes[wake_cnt++] = j;
                stack[stack_len++] = j;
            }
        }
    }
    io[0] = stack_len;
    io[1] = wake_cnt;
}
