"""Virtual-time synchronization policies.

The paper's contribution is *spatial synchronization*: a core may run ahead
of its topological neighbours by at most a fixed drift ``T``, enforced with
purely local information.  For the related-work comparisons and ablations we
implement, inside the same engine, the alternative schemes the paper
discusses (Section VII):

* ``ConservativeSync`` — events processed in strict virtual-time order
  (Chandy/Misra-style); this is what our cycle-level referee uses.
* ``GlobalQuantumSync`` — WWT-style global quantum barriers.
* ``BoundedSlackSync`` — SlackSim's bounded slack against the global time.
* ``LaxP2PSync`` — Graphite's random-referee periodic checks.
* ``UnboundedSync`` — free-running cores (no synchronization at all).
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from .coreunit import CoreUnit

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Machine

INF = math.inf


class ActiveMinTracker:
    """Lazy min-heap over the virtual times of active cores.

    Entries are (time, core, version); stale entries (older version, or a
    time below the core's current value) are discarded at pop time.
    """

    def __init__(self, n_cores: int) -> None:
        self._heap: List[tuple] = []
        self._version = [0] * n_cores
        self._value = [INF] * n_cores

    def update(self, cid: int, time: float) -> None:
        """Record a core's current virtual time (or next event time)."""
        self._version[cid] += 1
        self._value[cid] = time
        heapq.heappush(self._heap, (time, cid, self._version[cid]))

    def remove(self, cid: int) -> None:
        """Mark a core as not participating (idle with empty inbox)."""
        self._version[cid] += 1
        self._value[cid] = INF

    def min(self) -> float:
        """Smallest live time; INF when no core participates."""
        heap = self._heap
        while heap:
            time, cid, version = heap[0]
            if version == self._version[cid] and self._value[cid] == time:
                return time
            heapq.heappop(heap)
        return INF


class SyncPolicy:
    """Base synchronization policy."""

    name = "base"
    #: Policies with global conditions get all stalled cores re-checked
    #: whenever the engine runs out of runnable cores.
    needs_global_recheck = True
    #: Whether a drift-stalled core may still *receive* (process inbox
    #: messages).  Reception is simulator infrastructure in SiMany; strict
    #: event-ordered policies (conservative) keep it gated.
    reception_exempt = False
    #: Whether inbox messages must be processed in arrival-timestamp order
    #: (the conservative referee) instead of host delivery order.
    ordered_inbox = False
    #: Whether the engine must select each core's earliest unit (message /
    #: task step / task start) and gate it via may_run_unit.
    ordered_units = False
    #: Whether the policy queries per-core event horizons
    #: (``CoreUnit.next_event_time``); the engine then maintains the
    #: arrival-ordered inbox heap so those queries are O(1).
    uses_event_times = False
    #: Whether the engine may fuse runs of consecutive pure-compute
    #: actions into one fabric advance.  Policies whose ``on_advance``
    #: consumes hidden state per advance (LaxP2P's RNG referee draws)
    #: must keep per-action advances to stay deterministic.
    fusible_compute = True
    #: Whether admissions promise the fabric's neighbour drift rule
    #: (``VirtualTimeFabric.drift_ok``).  The sanitizer
    #: (``repro.verify``) cross-checks every positive ``may_run`` answer
    #: against the fabric's reference implementation when this is set —
    #: policies gating on other conditions (global quantum, slack, ...)
    #: make no such promise and are not drift-checked.
    checks_drift = False

    def attach(self, machine: "Machine") -> None:
        self.machine = machine

    def may_run(self, core: CoreUnit) -> bool:
        raise NotImplementedError

    def on_advance(self, core: CoreUnit) -> None:
        """Called after a core's virtual time advanced."""

    def on_idle(self, core: CoreUnit) -> None:
        """Called when a core goes idle."""

    def on_activation(self, core: CoreUnit) -> None:
        """Called when an idle core becomes active."""

    def on_no_runnable(self) -> bool:
        """Last-chance hook when no core is runnable.

        Returns True when policy state changed such that a retry may find
        runnable cores (e.g. a quantum barrier advanced).
        """
        return False

    def bound_label(self, machine: "Machine") -> str:
        """Human-readable synchronization bound for ``describe()``
        banners and telemetry summaries; "" when the policy has none
        (unbounded) or none expressible as a single number
        (conservative ordering)."""
        return ""


class SpatialSync(SyncPolicy):
    """The paper's spatial synchronization (Section II-A).

    A core stalls when its virtual time exceeds its most-late neighbour's
    (or the birth time of an in-flight spawned task) by more than ``T``.
    A core holding a lock is temporarily exempted so that it can release
    its resources (Section II-B deadlock avoidance).
    """

    name = "spatial"
    needs_global_recheck = True  # safety net; fine-grained hooks do the work
    reception_exempt = True
    checks_drift = True

    def __init__(self) -> None:
        self.machine: Optional["Machine"] = None

    def may_run(self, core: CoreUnit) -> bool:
        machine = self.machine
        fabric = machine.fabric
        cid = core.cid
        # Inlined fabric.drift_ok: this is the single hottest call under
        # spatial sync (once per scheduler-loop iteration per core), and
        # the extra call level is measurable.  drift_ok returns True for
        # idle cores, so the activation case needs no separate check.
        if not fabric.active[cid]:
            return True
        if fabric._floor_cache_on:
            # Cached-floor fast path (vectorized/compiled kernels): the
            # cache holds a lower bound on the drift floor, so a pass
            # against the bound implies a pass against the true floor
            # (the comparison uses the exact same float expression, and
            # x <= lb + T + eps with lb <= floor implies
            # x <= floor + T + eps by IEEE monotonicity).  On a miss the
            # exact floor is re-derived, cached, and re-tested — so
            # admissions, and the lock-waiver accounting below, are
            # bit-identical to the reference path.
            if fabric.vtime[cid] <= fabric._floor_lb[cid] + fabric.T + 1e-9:
                return True
            nbrs = fabric._neighbors[cid]
            if nbrs:
                floor = min(map(fabric.published.__getitem__, nbrs))
            else:
                floor = INF
            births = fabric._births_min[cid]
            if births < floor:
                floor = births
            fabric._floor_lb[cid] = floor
        else:
            if fabric._dirty and fabric._exact:
                fabric._full_recompute()
            nbrs = fabric._neighbors[cid]
            if nbrs:
                floor = min(map(fabric.published.__getitem__, nbrs))
            else:
                floor = INF
            births = fabric._births_min[cid]
            if births < floor:
                floor = births
        if fabric.vtime[cid] <= floor + fabric.T + 1e-9:
            return True
        if core.locks_held > 0:
            machine.stats.lock_waiver_runs += 1
            return True
        return False

    def bound_label(self, machine: "Machine") -> str:
        return f"T={machine.fabric.T:g}"


class EventAnchoredPolicy(SyncPolicy):
    """Base for policies anchored on a global event horizon.

    These policies execute each core's units (message servicing, task
    steps, task starts) in timestamp order and gate each unit by its own
    time — the engine selects the earliest unit when ``ordered_units``.

    In a tasking model, cores go idle between tasks while their *next*
    piece of work (an undelivered message) already has a virtual
    timestamp.  Anchoring only on active cores would let the rest of the
    machine race arbitrarily far ahead of undelivered work, so the tracker
    follows each core's event time: its virtual time while active, its
    earliest pending message arrival while idle.
    """

    uses_event_times = True

    def attach(self, machine: "Machine") -> None:
        super().attach(machine)
        self.tracker = ActiveMinTracker(machine.n_cores)

    def _core_time(self, core: CoreUnit) -> float:
        """The earliest event this core can produce next (its horizon).

        A busy core's next action happens at its virtual time (scheduling
        is non-preemptive: queued tasks cannot be promised while a task
        runs), but a pending inbox message may carry an earlier timestamp
        (the run-time services messages independently of the task clock).
        A free core's next event is its earliest message or queued task.
        """
        fabric = self.machine.fabric
        t = core.next_event_time()
        if core.current is not None:
            # Busy core: its next action happens at its virtual time.
            vt = fabric.vtime[core.cid]
            if vt < t:
                t = vt
        else:
            # Free core: its next unit is a message or a queued task; its
            # own clock is not an event by itself.
            start = core.next_start_time()
            if start < t:
                t = start
        return t

    def on_advance(self, core: CoreUnit) -> None:
        self.tracker.update(core.cid, self._core_time(core))

    def on_idle(self, core: CoreUnit) -> None:
        t = self._core_time(core)
        if math.isinf(t):
            self.tracker.remove(core.cid)
        else:
            self.tracker.update(core.cid, t)

    def may_run_unit(self, core: CoreUnit, t: float) -> bool:
        """Gate one execution unit (message / task step / task start) by
        its own timestamp.  Overridden per policy."""
        return self.may_run(core)

    def on_activation(self, core: CoreUnit) -> None:
        self.tracker.update(core.cid, self._core_time(core))

    def on_event_enqueued(self, core: CoreUnit) -> None:
        """Engine hook: an event (message or wake) landed on a core.

        Active cores too: an early-timestamped message on a busy core
        lowers that core's horizon, and the rest of the machine must not
        advance past it before it is serviced.
        """
        self.tracker.update(core.cid, self._core_time(core))


class ConservativeSync(EventAnchoredPolicy):
    """Strict virtual-time order: only globally-earliest work may proceed.

    This realizes the classical conservative discrete-event discipline and
    is the engine mode our cycle-level referee runs under: with zero drift,
    (almost) no message is ever processed out of virtual-time order.
    """

    name = "conservative"
    needs_global_recheck = True
    ordered_inbox = True
    ordered_units = True

    def __init__(self, epsilon: float = 1e-9) -> None:
        self.epsilon = epsilon

    def may_run(self, core: CoreUnit) -> bool:
        return self._core_time(core) <= self.tracker.min() + self.epsilon

    def may_run_unit(self, core: CoreUnit, t: float) -> bool:
        return t <= self.tracker.min() + self.epsilon


class GlobalQuantumSync(EventAnchoredPolicy):
    """WWT-style quantum barriers: all cores run within a global window.

    Cores (and idle-core activations) may execute while their event time is
    below ``epoch + quantum``; when none can, the epoch advances to the
    minimum event time.
    """

    name = "quantum"
    needs_global_recheck = True

    def __init__(self, quantum: float = 100.0) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.epoch = 0.0

    def may_run(self, core: CoreUnit) -> bool:
        if core.locks_held > 0:
            return True
        return self._core_time(core) < self.epoch + self.quantum

    def may_run_unit(self, core: CoreUnit, t: float) -> bool:
        if core.locks_held > 0:
            return True
        return t < self.epoch + self.quantum

    def on_no_runnable(self) -> bool:
        new_epoch = self.tracker.min()
        if math.isinf(new_epoch) or new_epoch <= self.epoch:
            return False
        self.epoch = new_epoch
        return True

    def bound_label(self, machine: "Machine") -> str:
        return f"quantum={self.quantum:g}"


class BoundedSlackSync(EventAnchoredPolicy):
    """SlackSim's bounded slack: drift bounded against the global horizon."""

    name = "bounded_slack"
    needs_global_recheck = True

    def __init__(self, slack: float = 100.0) -> None:
        if slack <= 0:
            raise ValueError("slack must be positive")
        self.slack = slack

    def may_run(self, core: CoreUnit) -> bool:
        if core.locks_held > 0:
            return True
        gmin = self.tracker.min()
        if math.isinf(gmin):
            return True
        return self._core_time(core) <= gmin + self.slack

    def may_run_unit(self, core: CoreUnit, t: float) -> bool:
        if core.locks_held > 0:
            return True
        gmin = self.tracker.min()
        if math.isinf(gmin):
            return True
        return t <= gmin + self.slack

    def bound_label(self, machine: "Machine") -> str:
        return f"slack={self.slack:g}"


class LaxP2PSync(SyncPolicy):
    """Graphite's LaxP2P: periodic drift checks against a random referee.

    Every ``check_period`` cycles of local progress, a core compares itself
    against a randomly chosen active core; if it is ahead by more than
    ``slack`` it sleeps until that referee catches up.  Unlike spatial
    synchronization there is no fixed guarantee on total drift, and the
    referee may be an arbitrarily distant core (paper, Section VII).
    """

    name = "laxp2p"
    needs_global_recheck = True
    # Referee draws happen in on_advance: fusing computes would skip
    # draws and desynchronize the deterministic RNG stream.
    fusible_compute = False

    def __init__(
        self, slack: float = 100.0, check_period: float = 100.0, seed: int = 0
    ) -> None:
        if slack <= 0 or check_period <= 0:
            raise ValueError("slack and check period must be positive")
        self.slack = slack
        self.check_period = check_period
        self._rng = np.random.default_rng(seed)

    def may_run(self, core: CoreUnit) -> bool:
        fabric = self.machine.fabric
        if not fabric.active[core.cid]:
            return True
        if core.locks_held > 0:
            return True
        if core.lax_ref is not None:
            ref_time = fabric.published[core.lax_ref]
            if fabric.vtime[core.cid] > ref_time + self.slack:
                return False
            core.lax_ref = None
        return True

    def on_advance(self, core: CoreUnit) -> None:
        fabric = self.machine.fabric
        vt = fabric.vtime[core.cid]
        if vt < core.lax_next_check:
            return
        core.lax_next_check = vt + self.check_period
        # Pick a random other active core as referee.
        actives = [
            c for c in range(self.machine.n_cores)
            if c != core.cid and fabric.active[c]
        ]
        if not actives:
            return
        ref = int(actives[self._rng.integers(len(actives))])
        if vt > fabric.published[ref] + self.slack:
            core.lax_ref = ref

    def bound_label(self, machine: "Machine") -> str:
        return f"slack={self.slack:g}"


class UnboundedSync(SyncPolicy):
    """No synchronization: cores free-run (SlackSim's unbound slack)."""

    name = "unbounded"
    needs_global_recheck = False

    def may_run(self, core: CoreUnit) -> bool:
        return True


def make_policy(name: str, **kwargs) -> SyncPolicy:
    """Factory: build a sync policy by name."""
    table = {
        "spatial": SpatialSync,
        "conservative": ConservativeSync,
        "quantum": GlobalQuantumSync,
        "bounded_slack": BoundedSlackSync,
        "laxp2p": LaxP2PSync,
        "unbounded": UnboundedSync,
    }
    if name not in table:
        raise ValueError(f"unknown sync policy {name!r}; choose from {sorted(table)}")
    return table[name](**kwargs)
