"""Run-time system messages.

The run-time system generates messages to drive task dispatching and, when
using distributed memory, object movement (paper, Section IV).  Messages are
architectural: they traverse the interconnect and are timed by the NoC.
Control messages used purely to implement the simulation (virtual-time
updates, birth-date discards) have no architectural existence and never
appear here; they are modelled as immediate state updates.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class MsgKind(enum.Enum):
    """Architectural message kinds of the run-time protocol (Section IV)."""

    # Enum.__hash__ hashes the member name string on every dict lookup;
    # kinds key several per-message dicts (sizes, handlers, counters), so
    # use identity hashing (consistent with Enum's identity equality).
    __hash__ = object.__hash__

    PROBE = "probe"                  # reservation request for a task slot
    PROBE_ACK = "probe_ack"          # reservation accepted
    PROBE_NACK = "probe_nack"        # reservation denied
    TASK_SPAWN = "task_spawn"        # the new task itself (with arguments)
    QUEUE_STATE = "queue_state"      # broadcast of a core's task-queue state
    JOINER_REQUEST = "joiner_request"  # wake-up of a joining task
    DATA_REQUEST = "data_request"    # remote cell content request
    DATA_RESPONSE = "data_response"  # remote cell content transfer
    LOCK_REQUEST = "lock_request"    # distributed lock acquisition
    LOCK_GRANT = "lock_grant"        # distributed lock acquisition reply
    LOCK_RELEASE = "lock_release"    # distributed lock release
    STEAL_REQUEST = "steal_request"  # work-stealing extension: ask for work
    STEAL_REPLY = "steal_reply"      # work-stealing extension: task or NACK
    USER = "user"                    # application-level payload


#: Default architectural sizes in bytes, used for NoC serialization timing.
DEFAULT_SIZES = {
    MsgKind.PROBE: 16,
    MsgKind.PROBE_ACK: 8,
    MsgKind.PROBE_NACK: 8,
    MsgKind.TASK_SPAWN: 64,
    MsgKind.QUEUE_STATE: 8,
    MsgKind.JOINER_REQUEST: 16,
    MsgKind.DATA_REQUEST: 16,
    MsgKind.DATA_RESPONSE: 64,
    MsgKind.LOCK_REQUEST: 16,
    MsgKind.LOCK_GRANT: 8,
    MsgKind.LOCK_RELEASE: 8,
    MsgKind.STEAL_REQUEST: 16,
    MsgKind.STEAL_REPLY: 64,
    MsgKind.USER: 32,
}

_msg_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """One architectural message.

    ``send_time`` is the sender's virtual time at emission; ``arrival`` the
    virtual time at which the destination may process it (assigned by the
    NoC, including link latencies, serialization and contention).  ``seq``
    is a host-side sequence number recording emission order.  ``consumed``
    marks a message popped from one side of the core's dual inbox
    (FIFO deque + arrival heap) so the other side can purge it lazily.
    """

    kind: MsgKind
    src: int
    dst: int
    send_time: float
    size: float
    payload: Any = None
    tag: Optional[object] = None
    arrival: float = 0.0
    seq: int = field(default_factory=_msg_counter.__next__)
    consumed: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind.value}, {self.src}->{self.dst}, "
            f"t={self.send_time:.1f}, arr={self.arrival:.1f})"
        )
