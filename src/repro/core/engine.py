"""The SiMany simulation engine.

A :class:`Machine` assembles a topology, a NoC, the virtual-time fabric, a
synchronization policy, a memory model and a task run-time system, then
drives simulated cores cooperatively: the engine repeatedly selects a
runnable core and lets it process inbox messages and execute task actions
for a bounded slice, exactly like the paper's single-process, userland-
scheduled implementation (Section III).  Sequential code between actions
runs natively (it is ordinary Python inside the task generators); only
interactions are simulated.

Scheduling: cores that have work live in a ready ring (round-robin).  A core
whose drift check fails moves to the stalled set and is woken by the
fine-grained hooks (a neighbour's published time increased, a spawn birth
was discarded) or by the policy's global recheck.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .actions import (
    Acquire,
    CellAccess,
    Compute,
    Join,
    LocalTime,
    MemAccess,
    RecvMsg,
    Release,
    SendMsg,
    TrySpawn,
    YieldCpu,
)
from .coreunit import CoreUnit
from .errors import SimConfigError, SimDeadlock, SimError, TaskError
from .fabric import VirtualTimeFabric, exact_shadow_fixpoint
from .kernels import resolve_kernel
from .messages import DEFAULT_SIZES, Message, MsgKind
from .soa import CoreStateArrays
from .stats import SimStats, WallTimer
from .sync import SyncPolicy
from .task import Task, TaskContext, TaskState
from ..network.noc import Noc
from ..network.topology import Topology
from ..timing.annotator import BlockAnnotator
from ..timing.branch import BranchPredictorModel
from ..timing.isa import CostTable, default_cost_table

INF = math.inf

#: Effectively-unbounded slice budget used by the sharded fast-forward
#: (the window horizon, not the action count, terminates the fused run).
_BOOST_BUDGET = 1 << 30


@dataclass
class EngineParams:
    """Run-time system and engine cost parameters (paper, Section V)."""

    #: Overhead of starting a task on a core, on top of receiving the spawn
    #: message (paper: 10 cycles).
    task_start_cycles: float = 10.0
    #: Context switch to a joining/resuming task (paper: 15 cycles).
    context_switch_cycles: float = 15.0
    #: Cost of handling one incoming message chunk on a core.
    msg_process_cycles: float = 2.0
    #: Cost of emitting one message (marshalling, NI injection).
    send_overhead_cycles: float = 2.0
    #: Cost of the local resource check of a ``probe`` that fails fast.
    probe_check_cycles: float = 3.0
    #: Cost of decrementing a task group's active counter.
    group_decrement_cycles: float = 5.0
    #: Task-queue capacity used by probe admission control.
    queue_capacity: int = 4
    #: Maximum actions executed per scheduling slice of one core.
    slice_actions: int = 64
    #: Multiplier on compute-block costs (cycle-level pipeline overheads).
    compute_overhead_factor: float = 1.0
    #: Fixed instruction-fetch cost charged per compute block (cycle-level
    #: split-I-cache modelling; 0 disables).
    icache_block_cycles: float = 0.0
    #: Safety valve: abort after this many host-side actions (None = off).
    max_host_actions: Optional[int] = None
    #: Sample the number of concurrently runnable cores every N scheduling
    #: decisions (None = off).  Used by the parallel-host feasibility study
    #: (paper, Section VIII): cores that are runnable at the same host
    #: moment could be simulated by parallel host threads.
    parallelism_sample_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise SimConfigError("queue capacity must be >= 1")
        if self.slice_actions < 1:
            raise SimConfigError("slice must allow at least one action")


class Machine:
    """A simulated many-core machine: cores + NoC + virtual-time fabric.

    The central object of the simulator.  It owns one
    :class:`~repro.core.coreunit.CoreUnit` per simulated core, the
    :class:`~repro.network.noc.Noc` that times every message, the
    :class:`~repro.core.fabric.VirtualTimeFabric` holding per-core
    clocks and drift state, and the :class:`SyncPolicy` that decides
    which core may run next.  A memory model and a task run-time are
    attached after construction (``attach_memory`` / ``attach_runtime``)
    — most callers get a fully wired machine from
    :func:`repro.arch.build_machine` instead of calling this directly.

    Two driving interfaces:

    * ``run(root_fn)`` / ``run_roots([...])`` — the serial loop: seed
      root tasks, interleave all cores through the ready ring until
      everything completes, return the roots' results.
    * the shard-stepping interface (``set_shard_scope``,
      ``begin_run`` / ``seed_root``, ``run_shard_round``,
      ``run_shard_waiver``, ``inject_message``, ``finish_run``) — used
      by the sharded multiprocess backend to drive only a subset of
      cores in externally-coordinated rounds (see
      ``repro.parallel`` and docs/parallel.md).

    Scheduling is cooperative and non-preemptive: each ready core runs
    one *slice* (up to ``params.slice_actions`` actions) before the
    next core's turn, matching the paper's userland-threads model.
    Consecutive pure-compute actions within a slice are fused into one
    fabric advance, and per-core inboxes keep an incremental
    arrival-ordered heap only when the policy needs ordered queries
    (``inbox_heap``).

    Example::

        from repro.arch import build_machine, shared_mesh
        machine = build_machine(shared_mesh(16))
        result = machine.run(my_root_fn)   # root's return value
        print(machine.stats.completion_vtime, machine.describe())
    """

    def __init__(
        self,
        topo: Topology,
        policy: SyncPolicy,
        params: Optional[EngineParams] = None,
        *,
        drift_bound: float = 100.0,
        shadow_enabled: bool = True,
        shadow_mode: str = "fast",
        cost_table: Optional[CostTable] = None,
        speed_factors: Optional[Sequence[float]] = None,
        branch_accuracy: float = 0.9,
        branch_penalty: float = 5.0,
        sample_branches: bool = True,
        router_penalty: float = 1.0,
        chunk_bytes: int = 64,
        model_contention: bool = True,
        seed: int = 0,
        inbox_heap: bool = True,
        engine_kernel: str = "python",
    ) -> None:
        self.topo = topo
        self.n_cores = topo.n_cores
        self.params = params or EngineParams()
        self.policy = policy
        self.seed = seed
        self.stats = SimStats(n_cores=self.n_cores)
        #: Requested / effective engine kernel (see repro.core.kernels).
        #: ``compiled`` resolves to ``vectorized`` with a note when the
        #: host has no C toolchain — selection never fails a run.
        self.engine_kernel, self.engine_kernel_note = \
            resolve_kernel(engine_kernel)

        self.noc = Noc(
            topo,
            router_penalty=router_penalty,
            chunk_bytes=chunk_bytes,
            model_contention=model_contention,
        )
        #: Struct-of-arrays plane shared by the fabric, the cores and
        #: the dispatcher (single source of truth for hot per-core
        #: state; see repro.core.soa).
        self.soa = CoreStateArrays(
            self.n_cores, [topo.neighbors(c) for c in range(self.n_cores)])
        self.fabric = VirtualTimeFabric(
            topo,
            drift_bound=drift_bound,
            shadow_enabled=shadow_enabled,
            shadow_mode=shadow_mode,
            on_publish_increase=self._on_publish_increase,
            soa=self.soa,
        )
        if self.engine_kernel != "python":
            self.fabric.set_floor_cache(True)
        if self.engine_kernel == "compiled":
            if not self.fabric.enable_compiled_relax():  # pragma: no cover
                self.engine_kernel = "vectorized"
                self.engine_kernel_note = "compiled relax unavailable"

        table = cost_table or default_cost_table()
        if speed_factors is None:
            speed_factors = [1.0] * self.n_cores
        if len(speed_factors) != self.n_cores:
            raise SimConfigError("speed_factors length must match core count")
        self.cores: List[CoreUnit] = []
        for cid in range(self.n_cores):
            factor = float(speed_factors[cid])
            annotator = BlockAnnotator(
                table.scaled(factor),
                predictor=BranchPredictorModel(
                    accuracy=branch_accuracy,
                    penalty_cycles=branch_penalty,
                    seed=seed * 1_000_003 + cid,
                ),
                sample_branches=sample_branches,
            )
            self.cores.append(
                CoreUnit(cid, annotator, speed_factor=factor, soa=self.soa))

        self.memory = None  # attached by the builder
        self.runtime = None  # attached by the builder
        self._handlers: Dict[MsgKind, Callable[[CoreUnit, Message], None]] = {
            MsgKind.USER: self._handle_user_msg,
        }
        self._action_handlers = {
            Compute: self._do_compute,
            MemAccess: self._do_mem,
            CellAccess: self._do_cell,
            TrySpawn: self._do_try_spawn,
            Join: self._do_join,
            Acquire: self._do_acquire,
            Release: self._do_release,
            SendMsg: self._do_send,
            RecvMsg: self._do_recv,
            LocalTime: self._do_localtime,
            YieldCpu: self._do_yield,
        }

        self._ready: deque = deque()
        self._stalled: set = set()
        self._svc_time = 0.0
        self._neighbor_cache = [topo.neighbors(c) for c in range(self.n_cores)]
        self.live_tasks = 0
        self.last_finish_time = 0.0
        self._progress = False
        self._ran = False
        self._stop_at_vtime: Optional[float] = None
        self.root_task: Optional[Task] = None
        self.root_tasks: List[Task] = []
        #: Partition fencing the run-time to shard-local dispatch (set by
        #: the builder when ``ArchConfig.shards > 0``); None = unfenced.
        self.fence = None
        #: Runtime invariant checker (``repro.verify.Sanitizer``); set by
        #: the builder when ``ArchConfig.sanitize`` is on.  The engine
        #: never consults it — the sanitizer hooks in from outside — but
        #: the worker/CLI layers use it to drive round-scoped checks.
        self.sanitizer = None
        #: Opt-in telemetry registry (``repro.obs.Telemetry``); set by the
        #: builder when ``ArchConfig.telemetry`` is non-empty.  Every
        #: hot-path instrumentation site guards on this being non-None,
        #: so a machine without telemetry pays one attribute load per
        #: guard and nothing else.  Telemetry is observation-only:
        #: results are bit-identical with it on.
        self.telemetry = None
        # Shard-execution scope (sharded backend): when set, only cores in
        # ``_owned`` are driven locally and messages to other cores are
        # handed to ``_foreign_sink`` instead of delivered (see
        # repro.parallel).  ``_horizon`` caps how far any owned core may
        # run inside one coordination round; cores at or past it are
        # parked until the next round raises the horizon.
        self._owned: Optional[set] = None
        self._foreign_sink: Optional[Callable[[Message], None]] = None
        self._horizon: float = INF
        self._window_parked: set = set()
        #: Induced-subgraph adjacency for the worker-local scoped shadow
        #: fixpoint (owned cores + their boundary proxies); built by
        #: set_shard_scope, used by refresh_shard_shadows.
        self._scope_neighbors: Optional[List[tuple]] = None

        # Hot-path dispatch caching: policy capability flags and hooks are
        # resolved once here instead of per-slice getattr lookups, and the
        # cores learn whether the policy needs arrival-ordered inbox
        # queries (which enables their incremental inbox heap).
        self._ordered_units = bool(getattr(policy, "ordered_units", False))
        self._ordered_inbox = bool(getattr(policy, "ordered_inbox", False))
        self._reception_exempt = bool(
            getattr(policy, "reception_exempt", False))
        self._on_event_enqueued = getattr(policy, "on_event_enqueued", None)
        self._fuse_compute = (
            not self._ordered_units
            and bool(getattr(policy, "fusible_compute", True))
        )
        self._on_core_idle = None  # bound in attach_runtime
        # Hot-column aliases into the shared SoA plane: the scheduler
        # and message-servicing inner loops index these directly; the
        # CoreUnit properties are equivalent views over the same memory.
        soa = self.soa
        self._stalled_col = soa.stalled
        self._in_ready_col = soa.in_ready
        self._svc_clock_col = soa.service_clock
        self._busy_col = soa.busy_cycles
        self._last_arrival_col = soa.last_arrival
        # Wave-batched floor priming (vectorized/compiled kernels under
        # a drift-checking policy on a non-degenerate topology): one
        # numpy gather per drain computes every core's exact drift floor
        # into the fabric's cached lower bounds.
        self._wave_floors = (
            self.engine_kernel != "python"
            and bool(getattr(policy, "checks_drift", False))
            and soa.min_degree > 0
        )
        # Per-core scaled engine overheads (speed factors and params are
        # fixed for a machine's lifetime; same product, computed once).
        params = self.params
        self._msg_cycles = [
            c.scaled(params.msg_process_cycles) for c in self.cores]
        self._send_cycles = [
            c.scaled(params.send_overhead_cycles) for c in self.cores]
        # For fused computes the per-step policy notification is skipped
        # when on_advance is the base no-op (spatial, unbounded).
        self._on_advance_hook = (
            policy.on_advance
            if type(policy).on_advance is not SyncPolicy.on_advance
            else None
        )
        track = inbox_heap and (
            self._ordered_units
            or self._ordered_inbox
            or bool(getattr(policy, "uses_event_times", False))
        )
        for core in self.cores:
            core.track_arrivals = track

    # -- wiring ---------------------------------------------------------
    def attach_memory(self, memory) -> None:
        """Bind the memory model (shared / NUMA / distributed cells)."""
        self.memory = memory
        memory.attach(self)

    def attach_runtime(self, runtime) -> None:
        """Bind the task run-time system (spawning, joins, locks)."""
        self.runtime = runtime
        runtime.attach(self)
        self._on_core_idle = getattr(runtime, "on_core_idle", None)

    def attach_telemetry(self, telemetry) -> None:
        """Bind an opt-in telemetry registry (``repro.obs``).  Must run
        before :meth:`attach_runtime` so the runtime can cache it."""
        self.telemetry = telemetry
        self.fabric.telemetry = telemetry

    def register_handler(
        self, kind: MsgKind, handler: Callable[[CoreUnit, Message], None]
    ) -> None:
        """Register the processing function for an architectural message kind."""
        self._handlers[kind] = handler

    # -- public API ------------------------------------------------------
    def run(self, root_fn: Callable, *args, root_core: int = 0,
            stop_at_vtime: Optional[float] = None) -> Any:
        """Simulate ``root_fn(ctx, *args)`` as the root task; return its result.

        ``stop_at_vtime`` stops the simulation once any core's virtual time
        reaches the given value (partial simulation for sampling long
        workloads); the root task's result is then ``None`` and
        ``machine.live_tasks`` reports the unfinished work.

        Example::

            machine = build_machine(shared_mesh(16))
            workload = get_workload("quicksort", scale="tiny")
            result = machine.run(workload.root)
            workload.verify(result["output"])
        """
        results = self.run_roots([(root_fn, args, root_core)],
                                 stop_at_vtime=stop_at_vtime)
        return results[0]

    def run_roots(
        self,
        roots: Sequence[Tuple[Callable, tuple, int]],
        stop_at_vtime: Optional[float] = None,
    ) -> List[Any]:
        """Simulate several independent root tasks; return their results.

        ``roots`` is a sequence of ``(root_fn, args, root_core)`` tuples;
        every root is seeded at virtual time 0 on its core and all run
        concurrently.  ``stats.completion_vtime`` becomes the latest root
        finish time (the makespan).  This is the natural shape for
        shard-parallel experiments: one root per mesh region, each
        spawning only within its region (see ``ArchConfig.shards``).

        Example::

            machine = build_machine(shared_mesh(16))
            results = machine.run_roots([(rootA, (), 0), (rootB, (), 8)])
        """
        self.begin_run(stop_at_vtime=stop_at_vtime)
        for fn, args, core in roots:
            self.seed_root(fn, args, core)
        with WallTimer(self.stats):
            self._main_loop()
        self.finish_run()
        return [t.result for t in self.root_tasks]

    def resume_run(self, stop_at_vtime: Optional[float] = None) -> List[Any]:
        """Continue a run that ``stop_at_vtime`` interrupted.

        The single-use contract still holds — this continues the *same*
        run on the same machine rather than starting a new one.  The
        interrupted ``_drain_ready`` pass picks up at the exact core it
        stopped on (the stop branch re-queues it on the left), so a
        stopped-then-resumed run executes the identical host-order
        trajectory as an uninterrupted one — the property the
        checkpoint subsystem (``repro.checkpoint``) verifies bit-exactly.

        Example::

            machine.run(workload.root, stop_at_vtime=5_000.0)
            results = machine.resume_run()          # runs to completion
        """
        if not self._ran:
            raise SimError("resume_run() continues a run started by "
                           "run()/run_roots(); nothing has run yet")
        self._stop_at_vtime = stop_at_vtime
        with WallTimer(self.stats):
            self._main_loop()
        self.finish_run()
        return [t.result for t in self.root_tasks]

    def snapshot(self) -> Dict[str, Any]:
        """Capture this machine's complete run state at a safe point.

        Safe points are wherever no slice is in flight: after a
        ``stop_at_vtime`` return, between sharded coordination rounds,
        or after completion.  Returns the two-section capture dict of
        ``repro.checkpoint.state`` (``det`` bit-exact, ``host``
        informational), encodable by the snapshot codec.
        """
        from ..checkpoint.state import capture_machine_state

        return capture_machine_state(self)

    # -- shard-executable stepping interface -----------------------------
    #
    # The sharded backend (repro.parallel) drives a Machine replica one
    # coordination round at a time instead of through _main_loop: each
    # worker process calls begin_run/seed_root once, then run_shard_round
    # per round, then finish_run.  These methods are the complete
    # execution surface a shard worker needs; everything else (drift
    # checks, slices, message servicing) is shared, unmodified engine
    # code — which is what keeps the two backends bit-identical for
    # shard-closed runs.

    def begin_run(self, stop_at_vtime: Optional[float] = None) -> None:
        """Prepare a (single-use) machine for execution: bind the policy
        and arm the run; roots are then seeded with :meth:`seed_root`."""
        if self._ran:
            raise SimError("a Machine instance is single-use; build a new one")
        if self.memory is None or self.runtime is None:
            raise SimConfigError("attach memory and runtime before run()")
        self._ran = True
        self._stop_at_vtime = stop_at_vtime
        self.policy.attach(self)

    def seed_root(self, root_fn: Callable, args: tuple = (),
                  root_core: int = 0) -> Task:
        """Queue a root task at virtual time 0 on ``root_core``."""
        if not 0 <= root_core < self.n_cores:
            raise SimConfigError(f"root core {root_core} out of range")
        root = Task(root_fn, tuple(args), group=None, birth_time=0.0,
                    is_root=True)
        if self.root_task is None:
            self.root_task = root
        self.root_tasks.append(root)
        self.live_tasks += 1
        core = self.cores[root_core]
        root.core = root_core
        core.queue.append(root)
        self._make_ready(core)
        return root

    def set_shard_scope(
        self, owned: Iterable[int], foreign_sink: Callable[[Message], None]
    ) -> None:
        """Restrict execution to ``owned`` cores (sharded backend).

        Messages emitted to any other core are handed to ``foreign_sink``
        (after NoC timing and stats accounting on the sending side)
        instead of being delivered locally; the sink forwards them to the
        owning worker's inbox at the next round barrier.
        """
        self._owned = set(owned)
        self._foreign_sink = foreign_sink
        members = set(self._owned)
        for cid in self._owned:
            members.update(self._neighbor_cache[cid])
        self._scope_neighbors = [
            tuple(j for j in self._neighbor_cache[c] if j in members)
            if c in members else ()
            for c in range(self.n_cores)
        ]

    def run_shard_round(self, horizon: float = INF) -> bool:
        """Drive the owned cores until quiescent, drift-stalled or parked
        at the window ``horizon``; return whether any slice progressed.

        The horizon is the conservative window bound ``global_min + T``
        computed by the shard coordinator: a core at or past it is parked
        for the round (a core can overshoot by at most one scheduling
        slice).  Cores drift-stalled on boundary proxies are woken
        automatically when :meth:`VirtualTimeFabric.set_proxy_time`
        raises a neighbour's published time between rounds.
        """
        self._horizon = horizon
        if self._window_parked:
            parked, self._window_parked = self._window_parked, set()
            for cid in parked:
                core = self.cores[cid]
                if core.has_work():
                    self._make_ready(core)
        # Mirror the serial main loop, which re-queues every stalled core
        # after each drain: proxies may have been anchored higher since
        # the stall, so the drift check deserves a retry.
        self._push_all_stalled()
        return self._drain_ready()

    def run_shard_waiver(self) -> bool:
        """Force one scheduling slice on the earliest owned core with
        work, bypassing the sync policy — the sharded escalation
        ladder's last step before declaring deadlock.

        The round-based interleaving can wedge where serial trajectories
        do not: every core with work legitimately drift-stalled against
        a recv-blocked core whose unblocking sender sits queued behind
        another stalled task.  The escape mirrors the paper's
        Section II-B lock waiver — run the globally-earliest stalled
        work anyway, accepting a bounded, counted accuracy error
        (``stats.lock_waiver_runs``).  Forcing only the earliest core
        keeps the error minimal: it is the work a fully-relaxed drift
        check would admit first.
        """
        owned = self._owned if self._owned is not None else range(self.n_cores)
        core = None
        best = INF
        for cid in owned:
            cand = self.cores[cid]
            if not cand.has_work():
                continue
            t = self._core_next_time(cand)
            if t < best:
                best, core = t, cand
        if core is None:
            return False
        self.stats.lock_waiver_runs += 1
        policy = self.policy
        orig = policy.may_run
        policy.__dict__["may_run"] = lambda c: c is core or orig(c)
        try:
            progressed = self._run_slice(core)
        finally:
            del policy.__dict__["may_run"]
        if core.has_work():
            self._make_ready(core)
        return progressed

    def refresh_shard_shadows(self) -> bool:
        """Worker-local exact shadow fixpoint over the shard's induced
        subgraph (owned cores plus their boundary proxies); returns
        whether any owned idle shadow rose.

        Run between the sub-rounds of a worker-side round batch: the
        coordinator's *global* fixpoint only lands at round barriers, so
        a multi-round batch would otherwise stall against shadows frozen
        mid-batch.  The scoped fixpoint treats anchored proxies as
        active sources at their anchor values.  Every path from a remote
        active core into the owned region crosses a proxy, and proxy
        anchors are monotone snapshots of (at most window-lifted) remote
        published times — so the scoped result never exceeds the global
        fixpoint computed under the same window lift, and adopting it
        raise-only is exactly as safe as adopting the coordinator's.
        """
        fabric = self.fabric
        if not fabric.shadow_enabled or self._owned is None:
            return False
        pub = exact_shadow_fixpoint(self._scope_neighbors, fabric.active,
                                    fabric.vtime, fabric.T)
        published = fabric.published
        raised = False
        for cid in self._owned:
            value = pub[cid]
            if value == INF or fabric.active[cid]:
                continue
            old = published[cid]
            if math.isinf(old) or value > old:
                fabric.adopt_shadow(cid, value)
                raised = True
        return raised

    def _core_next_time(self, core: CoreUnit) -> float:
        """Earliest virtual time at which the core can actually execute
        its next unit (INF when it has no work).

        An *active* core's clock is monotone (``advance_to``), so queued
        starts and inbox arrivals in its past are clamped up to
        ``vtime`` — reporting the raw ready time would drag the window
        horizon below every other core's clock and park the very
        neighbours whose progress a drift-stalled core is waiting on.
        An idle core re-activates at the unit's own time
        (``set_active`` may lower its clock), so no clamp applies.
        """
        if core.current is not None:
            return self.fabric.vtime[core.cid]
        t = core.next_start_time()
        arrival = core.next_event_time()
        if arrival < t:
            t = arrival
        if self.fabric.active[core.cid]:
            vt = self.fabric.vtime[core.cid]
            if t < vt:
                t = vt
        return t

    def shard_min_time(self) -> float:
        """Earliest virtual time at which an owned core has pending work
        (INF when the shard is quiescent); feeds the coordinator's global
        window computation."""
        owned = self._owned if self._owned is not None else range(self.n_cores)
        best = INF
        for cid in owned:
            core = self.cores[cid]
            if not core.has_work():
                continue
            t = self._core_next_time(core)
            if t < best:
                best = t
        return best

    def shard_has_work(self) -> bool:
        """True while any owned core has runnable or pending work."""
        owned = self._owned if self._owned is not None else range(self.n_cores)
        return any(self.cores[cid].has_work() for cid in owned)

    def inject_message(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        send_time: float,
        size: float,
        arrival: float,
        payload: Any = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Deliver a message whose NoC arrival was computed elsewhere.

        Used by the sharded backend to inject boundary-crossing messages
        received from a peer worker: the sender's NoC replica already
        assigned the arrival time and counted the message, so delivery
        here is a plain inbox push plus destination wake-up.
        """
        msg = Message(kind, src, dst, send_time, size, payload=payload,
                      tag=tag)
        msg.arrival = arrival
        dest = self.cores[dst]
        dest.inbox_push(msg)
        tel = self.telemetry
        if tel is not None:
            tel.inbox_hist.observe(len(dest.inbox))
        hook = self._on_event_enqueued
        if hook is not None:
            hook(dest)
        self._make_ready(dest)
        return msg

    def finish_run(self) -> None:
        """Fold end-of-run state into ``stats`` (NoC, busy cycles,
        completion time = latest root finish, or the frontier when a root
        was interrupted by ``stop_at_vtime``)."""
        finishes = [t.finish_time for t in self.root_tasks]
        if finishes and all(f is not None for f in finishes):
            self.stats.completion_vtime = max(finishes)
        else:
            self.stats.completion_vtime = self.fabric.max_vtime
        self.stats.noc = self.noc.stats.as_dict()
        self.stats.shadow_recomputes = self.fabric.shadow_recomputes
        for c in self.cores:
            self.stats.core_busy_cycles[c.cid] = c.busy_cycles

    @property
    def completion_time(self) -> float:
        """Virtual time at which the root task finished."""
        return self.stats.completion_vtime

    # -- scheduling ------------------------------------------------------
    def _make_ready(self, core: CoreUnit) -> None:
        cid = core.cid
        stalled_col = self._stalled_col
        if stalled_col[cid]:
            stalled_col[cid] = 0
            self._stalled.discard(cid)
        in_ready_col = self._in_ready_col
        if not in_ready_col[cid]:
            in_ready_col[cid] = 1
            self._ready.append(core)

    def _mark_stalled(self, core: CoreUnit) -> None:
        cid = core.cid
        stalled_col = self._stalled_col
        if not stalled_col[cid]:
            stalled_col[cid] = 1
            self._stalled.add(cid)
            self.stats.drift_stalls += 1
            tel = self.telemetry
            if tel is not None:
                tel.note_stall(cid, self.fabric)

    def _on_publish_increase(self, cid: int) -> None:
        """Fabric hook: a core's published time rose; wake stalled neighbours."""
        if not self._stalled:
            return
        cores = self.cores
        stalled_col = self._stalled_col
        for j in self._neighbor_cache[cid]:
            if stalled_col[j]:
                self._make_ready(cores[j])

    def _push_all_stalled(self) -> bool:
        woke = False
        for cid in list(self._stalled):
            self._make_ready(self.cores[cid])
            woke = True
        return woke

    def _main_loop(self) -> None:
        stale_rescues = 0
        stop_at = self._stop_at_vtime
        tel = self.telemetry
        while self.live_tasks > 0:
            if stop_at is not None and self.fabric.max_vtime >= stop_at:
                return  # partial simulation requested
            progressed = self._drain_ready()
            if stop_at is not None and self.fabric.max_vtime >= stop_at:
                return
            if self.live_tasks == 0:
                break
            if progressed:
                stale_rescues = 0
            else:
                stale_rescues += 1
                if stale_rescues > 2:
                    self._raise_deadlock()
            if tel is not None:
                tel.phase = "rescue"
                tel.counters["engine.rescue_rounds"] += 1
            self.policy.on_no_runnable()
            self.fabric.refresh_shadows()
            if not self._push_all_stalled() and not self._ready:
                self._raise_deadlock()

    def _sample_parallelism(self) -> None:
        """Record how many cores are concurrently runnable right now."""
        policy = self.policy
        waivers = self.stats.lock_waiver_runs  # keep the probe stats-neutral
        count = 0
        for core in self.cores:
            if core.has_work() and policy.may_run(core):
                count += 1
        self.stats.lock_waiver_runs = waivers
        self.stats.parallelism_samples.append(count)

    def _prime_floor_cache(self) -> None:
        """Wave-batched admission priming: compute every core's *exact*
        current drift floor (neighbour published minimum, min'd with its
        spawn-birth floor) in one vectorized gather and store it in the
        fabric's cached lower bounds.

        The subsequent per-core drift checks then pass or fail on a
        single compare; only cores whose floor has since moved re-derive
        it scalar-wise.  Writing the exact floor is sound for the same
        reason the incremental cache is: floors only fall through events
        that also lower the cached bound (see ``VirtualTimeFabric``).
        """
        soa = self.soa
        floors = np.minimum.reduceat(
            soa.published_np[soa.csr_indices_np], soa.csr_offsets_np[:-1])
        np.minimum(floors, soa.births_min_np, out=floors)
        soa.floor_lb_np[:] = floors

    def _drain_ready(self) -> bool:
        progressed = False
        ready = self._ready
        policy = self.policy
        interval = self.params.parallelism_sample_interval
        horizon = self._horizon
        vtimes = self.fabric.vtime
        in_ready_col = self._in_ready_col
        pops = 0
        if self._wave_floors and self.fabric._floor_cache_on:
            self._prime_floor_cache()
        # Decoupled-phase fast-forward (sharded backend only): when the
        # popped core is provably the shard's sole runnable core (ready
        # ring and stalled set both empty, no sampling to perturb), its
        # fused pure-compute run may extend past the slice budget all
        # the way to the window horizon with a single fabric.commit —
        # any other host order would run the exact same actions in the
        # exact same virtual order, so this is order-equivalent, and
        # serial runs (horizon INF, _owned None) never take the path.
        boostable = self._owned is not None and interval is None
        while ready:
            core = ready.popleft()
            in_ready_col[core.cid] = 0
            if (vtimes[core.cid] >= horizon
                    and self._core_next_time(core) >= horizon):
                # Sharded backend: the core's next executable unit lies
                # past the round's window; park until the coordinator
                # raises the horizon.  (The raw vtime alone is not
                # enough — an idle core keeps its old clock while a
                # queued task may start well below it.)  The horizon is
                # INF on the serial backend, so this never fires there.
                self._window_parked.add(core.cid)
                continue
            if interval is not None:
                pops += 1
                if pops % interval == 0:
                    self._sample_parallelism()
            if (self._stop_at_vtime is not None and self.live_tasks > 0
                    and self.fabric.max_vtime >= self._stop_at_vtime):
                # Push the popped core back on the LEFT, untouched: a
                # resumed run (checkpoint/restore, repro.checkpoint)
                # must pop it next and see exactly the state a straight
                # run would have — including the no-work -> _go_idle
                # transition, which is deferred rather than taken here.
                # Once live_tasks hits 0 the run is completing and the
                # stop must not fire: the remaining pops only drain
                # in-flight protocol messages, exactly as a straight
                # run does before returning.
                if not in_ready_col[core.cid]:
                    in_ready_col[core.cid] = 1
                    ready.appendleft(core)
                return progressed
            if not core.has_work():
                self._go_idle(core)
                continue
            # _run_slice performs the drift check itself (it must also apply
            # the reception exemption for inbox work on stalled cores).
            boost = boostable and not ready and not self._stalled
            if self._run_slice(core, boost):
                progressed = True
        return progressed

    def _go_idle(self, core: CoreUnit) -> None:
        if self.fabric.active[core.cid]:
            self.fabric.set_idle(core.cid)
        self.policy.on_idle(core)
        hook = self._on_core_idle
        if hook is not None:
            hook(core)

    def _earliest_unit(self, core: CoreUnit):
        """The core's earliest executable unit: ('msg', -1, t),
        ('step', -1, t) or ('start', idx, t); None when no work.

        Queued tasks are candidates only while the core is free
        (non-preemptive scheduling).  The earliest inbox message comes
        from the core's arrival-ordered heap (O(1) peek), not a scan.
        """
        best = None
        best_t = float("inf")
        msg = core.inbox_peek_earliest()
        if msg is not None:
            best = ("msg", -1)
            best_t = msg.arrival
        if core.current is not None:
            vt = self.fabric.vtime[core.cid]
            if vt < best_t:
                best = ("step", -1)
                best_t = vt
        else:
            for i, task in enumerate(core.queue):
                t = task.resume_time if task.gen is not None else task.ready_time
                if t < best_t:
                    best = ("start", i)
                    best_t = t
        if best is None:
            return None
        return best[0], best[1], best_t

    def _run_ordered_slice(self, core: CoreUnit) -> bool:
        """Slice execution for strictly ordered policies (the referee):
        pick the earliest unit each iteration and gate it by its own
        timestamp."""
        policy = self.policy
        budget = self.params.slice_actions
        progressed = False
        while budget > 0:
            unit = self._earliest_unit(core)
            if unit is None:
                break
            kind, idx, t = unit
            if not policy.may_run_unit(core, t):
                self._mark_stalled(core)
                return progressed
            if kind == "msg":
                msg = core.inbox_pop_earliest()
                self._process_message(core, msg)
            elif kind == "step":
                self._step_task(core)
            else:
                task = core.queue[idx]
                del core.queue[idx]
                self.runtime.on_task_dequeued(core)
                self._start_or_resume(core, task)
            budget -= 1
            progressed = True
        if core.has_work():
            self._make_ready(core)
        else:
            self._go_idle(core)
        return progressed

    def _run_slice(self, core: CoreUnit, boost: bool = False) -> bool:
        """Run one core until it blocks, stalls, idles or exhausts its slice.

        ``boost`` (sharded fast-forward) lifts the slice budget for
        *fused pure-compute* runs up to the window horizon; it is only
        ever passed when this core is the shard's sole runnable core,
        and is re-validated before each boosted step (message handlers
        run inside the slice may have readied another core).
        """
        if self._ordered_units:
            return self._run_ordered_slice(core)
        policy = self.policy
        may_run = policy.may_run
        budget = self.params.slice_actions
        progressed = False
        reception_exempt = self._reception_exempt
        tel = self.telemetry
        if tel is not None:
            tel.phase = "execute"
        while budget > 0:
            if not may_run(core):
                # Message reception is simulator infrastructure: a spawned
                # task must reach its destination (discarding the parent's
                # birth date) even while the destination is drift-stalled,
                # or two cores can deadlock through the birth-ledger floor.
                if reception_exempt and core.inbox:
                    msg = self._pop_inbox(core)
                    self._process_message(core, msg)
                    budget -= 1
                    progressed = True
                    continue
                self._mark_stalled(core)
                return progressed
            if core.inbox:
                # The run-time polls its lock-free message buffers at block
                # boundaries (between actions), not only between tasks:
                # probe replies and queue-state updates must not wait for
                # the current task to finish, or spawn round trips inflate
                # with the drift bound.
                msg = self._pop_inbox(core)
                self._process_message(core, msg)
                budget -= 1
                progressed = True
                continue
            if core.current is not None:
                if (boost and not core.inbox and not self._ready
                        and self.fabric.vtime[core.cid] < self._horizon):
                    # Sole runnable core: let a fused pure-compute run
                    # go all the way to the window horizon in one step.
                    budget -= self._step_task(core, _BOOST_BUDGET,
                                              self._horizon)
                else:
                    budget -= self._step_task(core, budget)
                progressed = True
                continue
            if core.queue:
                task = core.queue.popleft()
                self.runtime.on_task_dequeued(core)
                self._start_or_resume(core, task)
                budget -= 1
                progressed = True
                continue
            break  # no work left
        if core.has_work():
            if may_run(core) or (reception_exempt and core.inbox):
                self._make_ready(core)
            else:
                self._mark_stalled(core)
        else:
            # _go_idle always refreshes the policy's view (a core may have
            # serviced messages without ever activating, and its tracker
            # entry would otherwise anchor the horizon forever) and gives
            # the run-time its idle hook (work stealing).
            self._go_idle(core)
        if tel is not None and progressed:
            # "Admitted" = the slice executed at least one unit; stall
            # transitions are counted separately in _mark_stalled.
            tel.note_slice(core.cid, self.fabric)
        return progressed

    def _pop_inbox(self, core: CoreUnit) -> Message:
        """Next inbox message: host order normally, earliest-arrival order
        under strictly ordered policies (the conservative referee)."""
        if self._ordered_inbox and len(core.inbox) > 1:
            return core.inbox_pop_earliest()
        return core.inbox_pop_fifo()

    # -- time helpers ------------------------------------------------------
    def advance_by(self, core: CoreUnit, cycles: float) -> None:
        """Advance a core's virtual time by busy cycles."""
        if cycles < 0:
            raise SimError("cannot advance by negative cycles")
        if cycles == 0:
            return
        self.fabric.advance(core.cid, self.fabric.vtime[core.cid] + cycles)
        self._busy_col[core.cid] += cycles
        hook = self._on_advance_hook
        if hook is not None:
            hook(core)

    def advance_to(self, core: CoreUnit, t: float) -> None:
        """Advance a core's virtual time to ``t`` if in its future (waiting)."""
        if t > self.fabric.vtime[core.cid]:
            self.fabric.advance(core.cid, t)
            hook = self._on_advance_hook
            if hook is not None:
                hook(core)

    def now(self, core: CoreUnit) -> float:
        """The core's current virtual time."""
        return self.fabric.vtime[core.cid]

    # -- messaging -----------------------------------------------------------
    def _emit(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        t0: float,
        payload: Any,
        size: Optional[float],
        tag: Optional[object],
    ) -> Message:
        """Shared emission tail: build the message, let the NoC assign its
        arrival, deliver it and wake the destination."""
        if size is None:
            size = DEFAULT_SIZES[kind]
        msg = Message(kind, src, dst, t0, size, payload=payload, tag=tag)
        msg.arrival = self.noc.delivery_time(src, dst, size, t0)
        self.stats.messages_by_kind[kind] += 1
        owned = self._owned
        if owned is not None and dst not in owned:
            # Sharded backend: the destination lives in another worker.
            # NoC timing and the sender-side count above already happened
            # here; the sink ships the message to the owning shard, which
            # delivers it via inject_message.
            self._foreign_sink(msg)
            return msg
        dest = self.cores[dst]
        dest.inbox_push(msg)
        tel = self.telemetry
        if tel is not None:
            tel.inbox_hist.observe(len(dest.inbox))
        hook = self._on_event_enqueued
        if hook is not None:
            hook(dest)
        self._make_ready(dest)
        return msg

    def send_message(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        payload: Any = None,
        size: Optional[float] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Emit an architectural message; timestamps come from the NoC."""
        return self._emit(
            kind, src, dst, self.fabric.vtime[src], payload, size, tag)

    def send_with_overhead(
        self,
        kind: MsgKind,
        core: CoreUnit,
        dst: int,
        payload: Any = None,
        size: Optional[float] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Charge the sender's overhead, then emit."""
        self.advance_by(core, self._send_cycles[core.cid])
        return self.send_message(kind, core.cid, dst, payload, size, tag)

    def _process_message(self, core: CoreUnit, msg: Message) -> None:
        """Service one architectural message on a core's run-time/NI.

        Servicing does not touch the core's task clock: the run-time
        handles requests independently, and a reply is dated with the
        request's time plus a local processing time (paper, Section II-A).
        A per-core service clock serializes back-to-back handling.
        """
        cid = core.cid
        arrival = msg.arrival
        last_col = self._last_arrival_col
        if arrival < last_col[cid] - 1e-9:
            self.stats.out_of_order_msgs += 1
        last_col[cid] = arrival
        svc_col = self._svc_clock_col
        service = max(arrival, svc_col[cid])
        service += self._msg_cycles[cid]
        svc_col[cid] = service
        self._svc_time = service
        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise SimError(f"no handler registered for {msg.kind}")
        tel = self.telemetry
        if tel is not None:
            tel.phase = "service"
        handler(core, msg)
        if tel is not None:
            tel.phase = "execute"  # servicing happens inside a slice
        # Servicing consumed this message: refresh the policy's view of the
        # core's event horizon (its next pending event moved forward).
        hook = self._on_advance_hook
        if hook is not None:
            hook(core)

    def service_now(self, core: CoreUnit) -> float:
        """Virtual completion time of the message currently being serviced."""
        return self._svc_time

    def send_message_at(
        self,
        kind: MsgKind,
        core: CoreUnit,
        dst: int,
        t0: float,
        payload: Any = None,
        size: Optional[float] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Emit a message from a core's run-time at an explicit send time."""
        t0 += self._send_cycles[core.cid]
        return self._emit(kind, core.cid, dst, t0, payload, size, tag)

    def send_service_message(
        self,
        kind: MsgKind,
        core: CoreUnit,
        dst: int,
        payload: Any = None,
        size: Optional[float] = None,
        tag: Optional[object] = None,
        extra_delay: float = 0.0,
    ) -> Message:
        """Emit a message from a core's run-time while servicing a request.

        The send time is the request's service-completion time plus the
        send overhead (and any handler-specific delay), not the core's
        task clock — a reply is dated with the request time plus a local
        processing time (paper, Section II-A).
        """
        return self.send_message_at(
            kind, core, dst, self._svc_time + extra_delay,
            payload=payload, size=size, tag=tag,
        )

    def _handle_user_msg(self, core: CoreUnit, msg: Message) -> None:
        """Deliver a USER message to a recv waiter or park it in the mailbox."""
        for i, (task, tag) in enumerate(core.recv_waiters):
            if tag is None or tag == msg.tag:
                del core.recv_waiters[i]
                self.wake_task(task, msg, self.service_now(core),
                               ctx_switch=True)
                return
        core.user_mailbox.append(msg)

    # -- task lifecycle ----------------------------------------------------
    def register_task(self, task: Task) -> None:
        """Account for a newly spawned (remote) task."""
        self.live_tasks += 1
        self.stats.tasks_spawned_remote += 1

    def wake_task(
        self, task: Task, value: Any, at_time: float, ctx_switch: bool = True
    ) -> None:
        """Move a suspended task to its core's queue, resumable at ``at_time``."""
        if task.state not in (TaskState.SUSPENDED,):
            raise SimError(f"cannot wake task in state {task.state}")
        task.state = TaskState.READY
        task.resume_value = value
        task.resume_time = at_time
        task.resume_is_ctx_switch = ctx_switch
        task.waiting_on = None
        core = self.cores[task.core]
        core.queue.append(task)
        hook = self._on_event_enqueued
        if hook is not None:
            hook(core)
        self._make_ready(core)

    def suspend_current(self, core: CoreUnit, reason: str) -> Task:
        """Park the core's current task (blocked on ``reason``)."""
        task = core.current
        if task is None:
            raise SimError("no current task to suspend")
        task.state = TaskState.SUSPENDED
        task.waiting_on = reason
        core.current = None
        # The core's horizon no longer includes the task's clock.
        hook = self._on_advance_hook
        if hook is not None:
            hook(core)
        return task

    def _start_or_resume(self, core: CoreUnit, task: Task) -> None:
        params = self.params
        if task.state == TaskState.NEW:
            if not self.fabric.active[core.cid]:
                self.fabric.set_active(core.cid, task.ready_time)
                self.policy.on_activation(core)
            self.advance_to(core, task.ready_time)
            self.advance_by(core, core.scaled(params.task_start_cycles))
            task.state = TaskState.RUNNING
            task.core = core.cid
            task.start_time = self.now(core)
            ctx = TaskContext(self, core.cid, task)
            task.gen = task.fn(ctx, *task.args)
            task.resume_value = None
            core.current = task
            self.stats.tasks_started += 1
            self.stats.context_switches += 1
        elif task.state == TaskState.READY:
            if not self.fabric.active[core.cid]:
                self.fabric.set_active(core.cid, task.resume_time)
                self.policy.on_activation(core)
            self.advance_to(core, task.resume_time)
            if task.resume_is_ctx_switch:
                self.advance_by(core, core.scaled(params.context_switch_cycles))
            task.state = TaskState.RUNNING
            core.current = task
            self.stats.context_switches += 1
        else:
            raise SimError(f"cannot start task in state {task.state}")
        # A start/resume changes the core's horizon even when no cycles
        # were charged (e.g. a past-dated resume): refresh the policy.
        hook = self._on_advance_hook
        if hook is not None:
            hook(core)

    def _step_task(self, core: CoreUnit, budget: int = 1,
                   cap: float = INF) -> int:
        """Execute the current task's next action(s); return actions consumed.

        Runs of consecutive pure-compute actions are fused: their costs
        accumulate (with the exact same per-action float arithmetic as
        individual advances) and are charged through a single fabric
        advance, skipping the per-action publish/relax machinery whose
        intermediate states are unobservable — nothing else executes
        between two actions of one host slice.  Fusion never exceeds
        ``budget``, so slice accounting is unchanged.  ``cap`` (the
        sharded fast-forward's window horizon) additionally ends a fused
        run once the core's virtual time reaches it; serial callers
        leave it at INF.
        """
        task = core.current
        gen = task.gen
        value = task.resume_value
        task.resume_value = None
        stats = self.stats
        max_actions = self.params.max_host_actions
        try:
            action = gen.send(value)
        except StopIteration as stop:
            task.result = stop.value
            self._finish_task(core, task)
            return 1
        except SimError:
            raise
        except Exception as exc:
            raise TaskError(
                f"simulated task {task!r} raised {type(exc).__name__} "
                f"on core {core.cid} at vtime "
                f"{self.fabric.vtime[core.cid]:.1f}: {exc}",
                task=task, core=core.cid,
                vtime=self.fabric.vtime[core.cid],
            ) from exc
        stats.actions += 1
        if max_actions is not None and stats.actions > max_actions:
            raise SimError("max_host_actions exceeded (runaway simulation?)")
        consumed = 1
        tel = self.telemetry
        if budget > 1 and self._fuse_compute and type(action) is Compute:
            # Fused run.  Per-action semantics are replicated exactly:
            # the core's vtime is written directly (so the policy's
            # may_run and on_advance see each step, as they would after
            # an individual advance) but the publish/notify/relax tail
            # is deferred to one fabric.commit — its intermediate states
            # are unobservable because nothing else executes between two
            # actions of the same host slice (the inbox is provably
            # empty here: _run_slice drains it before stepping, and
            # pure computes deliver nothing).
            fabric = self.fabric
            vtimes = fabric.vtime
            busy_col = self._busy_col
            cid = core.cid
            may_run = self.policy.may_run
            on_adv = self._on_advance_hook
            charged = False
            finished = False
            pending = None
            while True:
                cost = self._compute_cost(core, action)
                stats.compute_actions += 1
                if cost < 0:
                    raise SimError("cannot advance by negative cycles")
                if cost > 0:
                    vtimes[cid] = vtimes[cid] + cost
                    busy_col[cid] += cost
                    charged = True
                    if on_adv is not None:
                        on_adv(core)
                # Stop before pulling an action the unfused loop would not
                # have reached: budget exhausted, horizon cap hit, or
                # drift check fails (the outer loop then re-checks and
                # stalls or parks, exactly as before).
                if (consumed >= budget or vtimes[cid] >= cap
                        or not may_run(core)):
                    break
                try:
                    action = gen.send(None)
                except StopIteration as stop:
                    task.result = stop.value
                    finished = True
                    break
                except SimError:
                    raise
                except Exception as exc:
                    if charged:
                        fabric.commit(cid)
                    raise TaskError(
                        f"simulated task {task!r} raised "
                        f"{type(exc).__name__} on core {core.cid} at vtime "
                        f"{vtimes[cid]:.1f}: {exc}",
                        task=task, core=core.cid, vtime=vtimes[cid],
                    ) from exc
                stats.actions += 1
                if max_actions is not None and stats.actions > max_actions:
                    raise SimError(
                        "max_host_actions exceeded (runaway simulation?)")
                consumed += 1
                if type(action) is not Compute:
                    pending = action
                    break
            if charged:
                fabric.commit(cid)
            if tel is not None:
                # Accounted at run end, not per fused step, so the fused
                # loop itself stays untouched.
                fused = consumed - (1 if pending is not None else 0)
                tel.actions[Compute] += fused
                tel.fusion_hist.observe(fused)
                if pending is not None:
                    tel.actions[type(pending)] += 1
            if finished:
                self._finish_task(core, task)
            elif pending is not None:
                handler = self._action_handlers.get(type(pending))
                if handler is None:
                    raise SimError(
                        f"task yielded unknown action {pending!r}")
                handler(core, task, pending)
            return consumed
        if tel is not None:
            tel.actions[type(action)] += 1
        handler = self._action_handlers.get(type(action))
        if handler is None:
            raise SimError(f"task yielded unknown action {action!r}")
        handler(core, task, action)
        return consumed

    def _finish_task(self, core: CoreUnit, task: Task) -> None:
        task.state = TaskState.DONE
        task.finish_time = self.now(core)
        core.current = None
        self.live_tasks -= 1
        if task.finish_time > self.last_finish_time:
            self.last_finish_time = task.finish_time
        self.runtime.on_task_finished(core, task)

    # -- action handlers -----------------------------------------------------
    def _compute_cost(self, core: CoreUnit, action: Compute) -> float:
        """Cycle cost of one compute action on a core."""
        params = self.params
        cost = core.scaled(action.cycles) * action.repeat
        if action.block is not None:
            cost += core.annotator.cost_repeated(action.block, action.repeat)
        cost *= params.compute_overhead_factor
        if params.icache_block_cycles:
            cost += core.scaled(params.icache_block_cycles)
        return cost

    def _do_compute(self, core: CoreUnit, task: Task, action: Compute) -> None:
        self.advance_by(core, self._compute_cost(core, action))
        self.stats.compute_actions += 1

    def _do_mem(self, core: CoreUnit, task: Task, action: MemAccess) -> None:
        latency = self.memory.access(core, action)
        self.advance_by(core, latency)
        self.stats.mem_accesses += 1

    def _do_cell(self, core: CoreUnit, task: Task, action: CellAccess) -> None:
        self.stats.cell_accesses += 1
        result = self.memory.cell_access(core, task, action)
        if result is None:
            # Remote fetch in flight; task suspended by the memory model.
            self.stats.remote_cell_accesses += 1
        else:
            self.advance_by(core, result)
            target = action.cell
            if hasattr(target, "deref"):
                target = target.deref()
            task.resume_value = target

    def _do_try_spawn(self, core: CoreUnit, task: Task, action: TrySpawn) -> None:
        self.runtime.try_spawn(core, task, action)

    def _do_join(self, core: CoreUnit, task: Task, action: Join) -> None:
        self.runtime.join(core, task, action.group)

    def _do_acquire(self, core: CoreUnit, task: Task, action: Acquire) -> None:
        self.runtime.acquire(core, task, action.lock)

    def _do_release(self, core: CoreUnit, task: Task, action: Release) -> None:
        self.runtime.release(core, task, action.lock)

    def _do_send(self, core: CoreUnit, task: Task, action: SendMsg) -> None:
        self.send_with_overhead(
            MsgKind.USER, core, action.dst, payload=action.payload,
            size=action.size, tag=action.tag,
        )
        task.resume_value = None

    def _do_recv(self, core: CoreUnit, task: Task, action: RecvMsg) -> None:
        for i, msg in enumerate(core.user_mailbox):
            if action.tag is None or msg.tag == action.tag:
                del core.user_mailbox[i]
                self.advance_to(core, msg.arrival)
                task.resume_value = msg
                return
        suspended = self.suspend_current(core, "recv")
        core.recv_waiters.append((suspended, action.tag))

    def _do_localtime(self, core: CoreUnit, task: Task, action: LocalTime) -> None:
        task.resume_value = self.now(core)

    def _do_yield(self, core: CoreUnit, task: Task, action: YieldCpu) -> None:
        task.resume_value = None

    # -- diagnostics -----------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of the machine configuration and state."""
        policy = self.policy
        label = policy.bound_label(self)
        bound = f" ({label})" if label else ""
        tel = self.telemetry
        kernel = self.engine_kernel
        if self.engine_kernel_note:
            kernel += f" ({self.engine_kernel_note})"
        lines = [
            f"Machine: {self.n_cores} cores on {self.topo.name}",
            f"  sync policy     : {self.policy.name}" + bound,
            f"  engine kernel   : {kernel}",
            f"  telemetry       : "
            f"{tel.describe() if tel is not None else 'off'}",
            f"  memory model    : {type(self.memory).__name__}",
            f"  shadow time     : "
            f"{'on (' + self.fabric.shadow_mode + ')' if self.fabric.shadow_enabled else 'off'}",
            f"  speed factors   : "
            f"{sorted(set(c.speed_factor for c in self.cores))}",
        ]
        if self._ran:
            stats = self.stats
            lines += [
                f"  completion      : {stats.completion_vtime:.1f} cycles",
                f"  tasks           : {stats.tasks_started} started, "
                f"{stats.tasks_spawned_remote} remote, "
                f"{stats.tasks_run_inline} inline",
                f"  messages        : {stats.total_messages}",
                f"  drift stalls    : {stats.drift_stalls}",
                f"  host wall       : {stats.wall_seconds:.3f} s",
            ]
        return "\n".join(lines)

    def _raise_deadlock(self) -> None:
        diag = {
            "live_tasks": self.live_tasks,
            "stalled_cores": sorted(self._stalled),
            "cores": {},
        }
        for core in self.cores:
            if core.has_work() or core.stalled:
                diag["cores"][core.cid] = {
                    "active": self.fabric.active[core.cid],
                    "vtime": self.fabric.vtime[core.cid],
                    "floor": self.fabric.floor(core.cid),
                    "queue": len(core.queue),
                    "inbox": len(core.inbox),
                    "current": repr(core.current),
                    "stalled": core.stalled,
                }
        raise SimDeadlock(
            f"simulation cannot progress: {self.live_tasks} live tasks, "
            f"{len(self._stalled)} drift-stalled cores",
            diagnostics=diag,
        )
