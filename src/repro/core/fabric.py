"""Virtual-time fabric: distributed clocks, spatial drift bookkeeping.

Every simulated core maintains its own private virtual time while active
(paper, Section II-A).  The fabric tracks, per core:

* its *published* time — the virtual time neighbours see through their
  proxies.  Control "VTime update" messages have no architectural existence,
  so proxy updates are modelled as immediate writes to this table;
* its *shadow virtual time* when idle — ``min(neighbour times) + T`` — which
  keeps non-connected sets of active cores synchronized (Figure 2);
* the *birth times* of tasks it has spawned that have not yet reached their
  destination core, counted as if the child had started on a neighbour
  (Figure 3).

The drift rule: a core stalls when its virtual time exceeds the time of its
most-late neighbour (including spawn births) by more than the user-chosen
constant ``T``.  This local bound implies a global bound of
``diameter x T`` between any two cores.

Shadow maintenance has two modes:

* ``exact`` — the published times of idle cores always equal the fixpoint
  ``min over active cores a of (vtime(a) + T * hops(i, a))``, recomputed
  lazily (multi-source Dijkstra) whenever an idle/active transition could
  have lowered a value.  Used by correctness tests and the shadow ablation.
* ``fast`` — published times are kept monotone: increases propagate through
  increase-only relaxation, decreases are skipped.  A core's own drift
  check still uses its true virtual time; only its neighbours may see a
  stale-high value, allowing them at most one extra ``T`` of drift.  This
  is the default for large simulations.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Callable, Dict, List, Optional

import numpy as np

from .soa import CoreStateArrays
from ..network.topology import Topology

INF = math.inf


def exact_shadow_fixpoint(
    neighbors: List[tuple],
    active: List[bool],
    vtime: List[float],
    T: float,
) -> List[float]:
    """Exact published-time fixpoint: ``min over active cores a of
    (vtime(a) + T * hops(i, a))`` for every idle core ``i``.

    Multi-source Dijkstra from the active cores, with ``T`` added per
    hop using the same left-to-right float accumulation as the engine's
    incremental relax waves (bit-identical results).  Standalone so the
    shard coordinator can run it over the *global* core set — a worker
    alone would treat remote active cores as idle and publish
    stale-high shadows for them, which is exactly the drift-bound
    violation the sharded backend must avoid.

    ``active`` and ``vtime`` may be numpy planes (the coordinator calls
    this straight on the shared round board); they are flattened to
    plain lists first so the hot loop indexes native floats instead of
    boxing numpy scalars — same bits, roughly 2x less per-pop cost —
    and the result is always a list of native floats.
    """
    if hasattr(active, "tolist"):
        active = active.tolist()
    if hasattr(vtime, "tolist"):
        vtime = vtime.tolist()
    n = len(neighbors)
    pub = [INF] * n
    heap: List[tuple] = []
    for c in range(n):
        if active[c]:
            pub[c] = vtime[c]
            heap.append((pub[c], c))
    heapq.heapify(heap)
    while heap:
        d, c = heapq.heappop(heap)
        if d > pub[c]:
            continue
        cand = d + T
        for j in neighbors[c]:
            if not active[j] and cand < pub[j]:
                pub[j] = cand
                heapq.heappush(heap, (cand, j))
    return pub


class VirtualTimeFabric:
    """Shared virtual-time state for all cores of one machine."""

    def __init__(
        self,
        topo: Topology,
        drift_bound: float,
        shadow_enabled: bool = True,
        shadow_mode: str = "fast",
        on_publish_increase: Optional[Callable[[int], None]] = None,
        soa: Optional[CoreStateArrays] = None,
    ) -> None:
        if drift_bound <= 0:
            raise ValueError("drift bound T must be positive")
        if shadow_mode not in ("fast", "exact"):
            raise ValueError("shadow_mode must be 'fast' or 'exact'")
        self.topo = topo
        self.T = drift_bound
        self.shadow_enabled = shadow_enabled
        self.shadow_mode = shadow_mode
        self.on_publish_increase = on_publish_increase

        n = topo.n_cores
        self.n_cores = n
        self._neighbors: List[tuple] = [topo.neighbors(c) for c in range(n)]
        # Struct-of-arrays core-state plane: the engine shares one plane
        # across fabric, cores and dispatcher; a standalone fabric (unit
        # tests) owns a private one.  ``vtime``/``active``/``published``
        # keep their historical names but are now *views into the plane*
        # (array('d') / array('b') columns) — indexing semantics are
        # unchanged, identity is shared.
        if soa is None:
            soa = CoreStateArrays(n, self._neighbors)
        self.soa = soa
        self.vtime = soa.vtime
        self.active = soa.active
        self.published = soa.published
        # Birth ledger: per core, timestamp -> outstanding count.
        self._births: List[Dict[float, int]] = [dict() for _ in range(n)]
        self._births_min = soa.births_min
        self._dirty = True  # shadows need a full recompute
        self._exact = shadow_enabled and shadow_mode == "exact"
        self.max_vtime = 0.0
        self.shadow_recomputes = 0
        self._min_degree = soa.min_degree
        #: Cached lower bound on each core's drift floor (see
        #: ``SpatialSync.may_run``).  Valid only while ``_floor_cache_on``
        #: (vectorized/compiled kernels, fast shadow mode): publish
        #: increases keep a lower bound trivially valid, and every event
        #: that can *lower* a floor (spawn births, first INF->finite
        #: publishes, full recomputes) lowers or resets the bound too.
        self._floor_lb = soa.floor_lb
        self._floor_cache_on = False
        self._crelax = None  # compiled relax-wave state (engine kernel)
        # Number of idle neighbours per core (all cores start idle).
        # Relaxation waves from an advance can only act on idle
        # neighbours, so advances gate the wave on this counter — on a
        # busy machine most advances then skip the wave entirely.
        self._idle_nbr_count: List[int] = [
            len(nbrs) for nbrs in self._neighbors]
        #: Opt-in telemetry registry (set via Machine.attach_telemetry).
        #: Observation-only: guards cost one attribute load when off.
        self.telemetry = None

    # -- core state transitions ------------------------------------------
    def set_active(self, cid: int, start_time: float) -> None:
        """Core ``cid`` gains a virtual time of its own (idle -> active)."""
        if self.active[cid]:
            raise RuntimeError(f"core {cid} already active")
        self.active[cid] = 1
        counts = self._idle_nbr_count
        for j in self._neighbors[cid]:
            counts[j] -= 1
        self.vtime[cid] = start_time
        if start_time > self.max_vtime:
            self.max_vtime = start_time
        old = self.published[cid]
        if self.shadow_mode == "fast":
            # Monotone publishing: never lower what neighbours already saw.
            if math.isinf(old) or start_time > old:
                self.published[cid] = start_time
                if not math.isinf(old):
                    self._notify(cid)
                    self._relax_up(cid)
                else:
                    self._lower_neighbor_floors(cid, start_time)
        else:
            self.published[cid] = start_time
            self._dirty = True

    def set_idle(self, cid: int) -> None:
        """Core ``cid`` loses its virtual time (active -> idle)."""
        if not self.active[cid]:
            raise RuntimeError(f"core {cid} already idle")
        self.active[cid] = False
        counts = self._idle_nbr_count
        for j in self._neighbors[cid]:
            counts[j] += 1
        if not self.shadow_enabled:
            self.published[cid] = INF
            self._notify(cid)
            return
        if self.shadow_mode == "exact":
            self._dirty = True
        else:
            # Fast mode: shadow starts at the last vtime (monotone) and will
            # be raised by relaxation as neighbours advance.
            self._relax_self(cid)

    def advance(self, cid: int, new_time: float) -> None:
        """Advance an active core's virtual time (monotone)."""
        if not self.active[cid]:
            raise RuntimeError(f"core {cid} is idle; cannot advance")
        if new_time < self.vtime[cid] - 1e-9:
            raise ValueError(
                f"virtual time must be monotone on core {cid}: "
                f"{new_time} < {self.vtime[cid]}"
            )
        if new_time <= self.vtime[cid]:
            return
        self.vtime[cid] = new_time
        if new_time > self.max_vtime:
            self.max_vtime = new_time
        if new_time > self.published[cid]:
            self.published[cid] = new_time
            self._notify(cid)
            # The wave can only raise idle neighbours; skip it when the
            # whole neighbourhood is busy (the common case mid-run).
            if self.shadow_enabled and self._idle_nbr_count[cid]:
                self._relax_up(cid)

    def commit(self, cid: int) -> None:
        """Publish a virtual time the engine accumulated with direct
        ``vtime[cid]`` writes (the fused-compute fast path).

        Between two actions of one host slice nothing else executes, so
        per-action publish/notify/relax states are unobservable; the
        engine writes ``vtime`` step-wise and commits once.  This is the
        publish tail of :meth:`advance`.
        """
        vt = self.vtime[cid]
        if vt > self.max_vtime:
            self.max_vtime = vt
        tel = self.telemetry
        if tel is not None:
            tel.counters["fabric.commits"] += 1
        if vt > self.published[cid]:
            self.published[cid] = vt
            self._notify(cid)
            if self.shadow_enabled and self._idle_nbr_count[cid]:
                self._relax_up(cid)

    # -- shard proxy anchoring -------------------------------------------
    def set_proxy_time(self, cid: int, value: float) -> None:
        """Anchor a boundary proxy at its owning worker's published time.

        Sharded backend only: core ``cid`` is simulated by another
        worker process, and this replica holds it as a *proxy*.  The
        first write flips it active so local drift checks and relax
        waves treat it as a true anchor — a worker-local recompute that
        considered it idle would shadow *over* it and publish
        stale-high values, violating the drift bound.  Updates are
        monotone (raise-only); stalled neighbours are woken through the
        usual publish-increase hook.  Lowering is deliberately not
        supported: published times are *permissions*, and revoking one
        can wedge cores that already ran under it in a mutually-stalled
        state the serial engine (whose fast-mode values are equally
        monotone between rescues) never reaches.
        """
        if not self.active[cid]:
            self.active[cid] = True
            counts = self._idle_nbr_count
            for j in self._neighbors[cid]:
                counts[j] -= 1
        if value > self.vtime[cid]:
            self.vtime[cid] = value
        if value > self.max_vtime:
            self.max_vtime = value
        old = self.published[cid]
        if math.isinf(old) or value > old:
            self.published[cid] = value
            if not math.isinf(old):
                self._notify(cid)
                if self.shadow_enabled and self._idle_nbr_count[cid]:
                    self._relax_up(cid)
            else:
                self._lower_neighbor_floors(cid, value)

    def adopt_shadow(self, cid: int, value: float) -> None:
        """Adopt a coordinator-computed exact shadow for an idle core.

        Used by the sharded backend, where the coordinator runs
        :func:`exact_shadow_fixpoint` over the global (active, vtime)
        state each round and pushes the results back to every worker's
        replica — fast-mode shadows of an idle region freeze when the
        cores that would relax them live in another shard.  Adoption is
        *raise-only* (with the usual first-write-over-INF exception):
        the rescue exists to grant stalled cores more room, and a value
        below the local one only means local relaxation was already
        ahead of the snapshot the coordinator computed from.  Active
        cores — including anchored proxies — are left untouched.
        """
        if self.active[cid]:
            return
        old = self.published[cid]
        if math.isinf(old) or value > old:
            if math.isinf(old):
                self._lower_neighbor_floors(cid, value)
            self.published[cid] = value
            self._notify(cid)
            if self.shadow_enabled and self._idle_nbr_count[cid]:
                self._relax_up(cid)

    # -- spawn birth ledger -------------------------------------------------
    def add_birth(self, cid: int, timestamp: float) -> None:
        """Record a spawned task's birth time on its parent's core."""
        births = self._births[cid]
        births[timestamp] = births.get(timestamp, 0) + 1
        if timestamp < self._births_min[cid]:
            self._births_min[cid] = timestamp
        lb = self._floor_lb
        if timestamp < lb[cid]:
            lb[cid] = timestamp

    def remove_birth(self, cid: int, timestamp: float) -> None:
        """Discard a birth date once the task reached its destination."""
        births = self._births[cid]
        count = births.get(timestamp)
        if not count:
            raise RuntimeError(f"no pending birth at t={timestamp} on core {cid}")
        if count == 1:
            del births[timestamp]
        else:
            births[timestamp] = count - 1
        if timestamp == self._births_min[cid]:
            self._births_min[cid] = min(births) if births else INF

    def births_min(self, cid: int) -> float:
        """Earliest outstanding spawn-birth timestamp on a core (INF if none)."""
        return self._births_min[cid]

    # -- drift checks ---------------------------------------------------------
    def neighbor_floor(self, cid: int) -> float:
        """Most-late neighbour time as seen through proxies (may be INF)."""
        if self._dirty and self._exact:
            self._full_recompute()
        nbrs = self._neighbors[cid]
        if not nbrs:
            return INF
        # min over a map of the C-level list getter: measurably faster
        # than a generator expression on this hot path (every drift check).
        return min(map(self.published.__getitem__, nbrs))

    def floor(self, cid: int) -> float:
        """Drift floor: most-late neighbour or pending spawn birth."""
        floor = self.neighbor_floor(cid)
        births = self._births_min[cid]
        return births if births < floor else floor

    def drift_ok(self, cid: int) -> bool:
        """True when the core may keep executing under the drift rule.

        This is the innermost check of every scheduling decision under
        spatial sync, so ``floor``/``neighbor_floor`` are inlined here.
        """
        if not self.active[cid]:
            return True
        if self._dirty and self._exact:
            self._full_recompute()
        nbrs = self._neighbors[cid]
        if nbrs:
            floor = min(map(self.published.__getitem__, nbrs))
        else:
            floor = INF
        births = self._births_min[cid]
        if births < floor:
            floor = births
        return self.vtime[cid] <= floor + self.T + 1e-9

    def drift(self, cid: int) -> float:
        """Current drift of a core over its floor (negative = behind)."""
        floor = self.floor(cid)
        if math.isinf(floor):
            return -INF
        return self.vtime[cid] - floor

    def drift_report(self, cid: int) -> dict:
        """Snapshot of every input to the drift rule for core ``cid``.

        Diagnostic companion to :meth:`drift_ok`, used by the sanitizer
        (``repro.verify``) to build structured violation reports:
        per-neighbour published times pinpoint *which* edge broke the
        bound.
        """
        return {
            "vtime": self.vtime[cid],
            "active": bool(self.active[cid]),
            "T": self.T,
            "floor": self.floor(cid),
            "births_min": self._births_min[cid],
            "neighbors": {
                j: self.published[j] for j in self._neighbors[cid]
            },
        }

    def global_drift_bound(self) -> float:
        """The theoretical bound diameter x T (paper, Section II-A)."""
        return self.topo.diameter() * self.T

    def refresh_shadows(self) -> None:
        """Recompute all shadows exactly (multi-source Dijkstra).

        In fast mode, shadows of an idle region freeze when every adjacent
        active core is drift-stalled (no advance waves to relax them); the
        engine calls this on a no-runnable rescue round to restore the exact
        fixpoint, which guarantees the globally-earliest core can run.
        """
        if self.shadow_enabled:
            self._full_recompute()

    # -- engine-kernel fast paths ----------------------------------------
    def set_floor_cache(self, on: bool) -> None:
        """Arm the cached-floor drift check (vectorized/compiled kernels).

        The cache is a per-core *lower bound* on the drift floor; it is
        sound only under fast (monotone) shadow mode, where published
        times can fall solely through the events hooked above — exact
        mode recomputes may lower arbitrary values lazily, so the cache
        stays off there and ``SpatialSync.may_run`` uses the reference
        computation.
        """
        self._floor_cache_on = bool(on) and not self._exact

    def _lower_neighbor_floors(self, cid: int, value: float) -> None:
        """A first (INF -> finite) publish can *lower* the neighbours'
        drift floors; keep their cached lower bounds below it."""
        lb = self._floor_lb
        for j in self._neighbors[cid]:
            if value < lb[j]:
                lb[j] = value

    def enable_compiled_relax(self) -> bool:
        """Swap ``_relax_up`` for the compiled wave (engine kernel
        ``compiled``); returns False when the library is unavailable.
        The instance attribute shadows the method, so every internal
        call site (advance/commit/set_active/_relax_self/...) takes the
        compiled path with no further dispatch cost."""
        from .kernels import compiled_library

        lib, _ = compiled_library()
        if lib is None or self.n_cores == 0:
            return False
        soa = self.soa
        cap = max(64, 4 * self.n_cores, 2 * soa.max_degree)
        self._crelax = {
            "fn": lib.relax_wave,
            "pub": soa.addr("published"),
            "act": soa.addr("active"),
            "idx": soa.csr_indices.buffer_info()[0],
            "off": soa.csr_offsets.buffer_info()[0],
            "stack": np.zeros(cap, dtype=np.int64),
            "wakes": np.zeros(cap, dtype=np.int64),
            "io": np.zeros(2, dtype=np.int64),
            "cap": cap,
            "max_deg": soa.max_degree,
        }
        self._relax_up = self._relax_up_compiled
        return True

    def _relax_up_compiled(self, cid: int) -> None:
        """Compiled increase-only relax wave (see ``kernels/relax.c``).

        Bit-identical to :meth:`_relax_up`: the C code replicates the
        exact traversal and float arithmetic, records every core that
        rose in rise order, and this wrapper replays the
        ``on_publish_increase`` notifications in that order (the wave
        never reads the state those notifications mutate, so replaying
        after each chunk is unobservable — see relax.c).
        """
        tel = self.telemetry
        if tel is not None:
            tel.relax_waves[cid] += 1
        ck = self._crelax
        fn = ck["fn"]
        stack = ck["stack"]
        io = ck["io"]
        stack[0] = cid
        io[0] = 1
        notify = self.on_publish_increase
        T = self.T
        ceiling = self.max_vtime + T
        while True:
            fn(ck["pub"], ck["act"], ck["idx"], ck["off"], T, ceiling,
               stack.ctypes.data, ck["wakes"].ctypes.data,
               ck["cap"], ck["cap"], ck["max_deg"], io.ctypes.data)
            wake_count = int(io[1])
            if notify is not None and wake_count:
                wakes = ck["wakes"]
                for i in range(wake_count):
                    notify(int(wakes[i]))
            remaining = int(io[0])
            if remaining == 0:
                break
            if remaining + ck["max_deg"] > ck["cap"]:
                # Pathological cascade: double the buffers and resume.
                new_cap = ck["cap"] * 2
                grown = np.zeros(new_cap, dtype=np.int64)
                grown[:remaining] = stack[:remaining]
                ck["stack"] = stack = grown
                ck["wakes"] = np.zeros(new_cap, dtype=np.int64)
                ck["cap"] = new_cap

    # -- shadow machinery -------------------------------------------------
    def _notify(self, cid: int) -> None:
        if self.on_publish_increase is not None:
            self.on_publish_increase(cid)

    def _relax_self(self, cid: int) -> None:
        """Fast-mode shadow init for a newly idle core (monotone)."""
        nbrs = self._neighbors[cid]
        if not nbrs:
            return
        pub = self.published
        # Shadows are clamped at max_vtime + T: a floor at that level can
        # never stall anyone (every active vtime <= max_vtime), and the
        # clamp keeps mutual relaxation between idle cores from climbing
        # without bound when no active anchor is in sight.
        ceiling = self.max_vtime + self.T
        cand = min(min(map(pub.__getitem__, nbrs)) + self.T, ceiling)
        if cand > pub[cid]:
            pub[cid] = cand
            self._notify(cid)
            self._relax_up(cid)

    def _relax_up(self, cid: int) -> None:
        """Increase-only propagation of a published-time increase."""
        tel = self.telemetry
        if tel is not None:
            tel.relax_waves[cid] += 1
        pub = self.published
        active = self.active
        neighbors = self._neighbors
        getter = pub.__getitem__
        notify = self.on_publish_increase
        T = self.T
        ceiling = self.max_vtime + T
        stack = [cid]
        while stack:
            x = stack.pop()
            limit = pub[x] + T
            for j in neighbors[x]:
                if active[j]:
                    continue
                # The candidate is min over j's neighbours + T <= px + T,
                # so if j already publishes >= px + T nothing can rise:
                # skip the inner min entirely (hot path at 1024 cores).
                if pub[j] >= limit:
                    continue
                cand = min(map(getter, neighbors[j]))
                cand = cand + T
                if cand > ceiling:
                    cand = ceiling
                if cand > pub[j]:
                    pub[j] = cand
                    if notify is not None:
                        notify(j)
                    stack.append(j)

    def _full_recompute(self) -> None:
        """Exact shadow fixpoint: ``min over active cores a of
        (vtime(a) + T * hops(i, a))`` for every idle core ``i``.

        Large regular topologies use a vectorized Bellman-Ford-style
        min-relaxation over a CSR adjacency (``np.minimum.reduceat``):
        every hop adds ``T`` with the same left-to-right float
        accumulation as the heap-based Dijkstra, so both paths produce
        bit-identical fixpoints.  Small or degenerate (isolated-core)
        topologies keep the heap path, where the O(E log V) constant
        beats vectorization overheads.
        """
        self.shadow_recomputes += 1
        tel = self.telemetry
        if tel is not None:
            tel.phase = "shadow_fixpoint"
            tel.counters["fabric.shadow_recomputes"] += 1
        self._dirty = False
        # A rescue recompute may *lower* fast-mode shadows back to the
        # exact fixpoint; cached floor lower bounds are no longer valid.
        if self._floor_cache_on:
            self.soa.floor_lb_np.fill(-INF)
        if self.n_cores < 64 or self._min_degree == 0:
            self._full_recompute_heap()
            return
        soa = self.soa
        active = soa.active_np.astype(bool)
        vtime = soa.vtime_np
        pub = np.where(active, vtime, INF)
        indices = soa.csr_indices_np
        offsets = soa.csr_offsets_np[:-1]
        T = self.T
        # Fixpoint in at most eccentricity+1 sweeps; each sweep gathers
        # every core's neighbour minimum in one reduceat.
        for _ in range(self.n_cores + 1):
            cand = np.minimum.reduceat(pub[indices], offsets) + T
            new = np.where(active, pub, np.minimum(pub, cand))
            if np.array_equal(new, pub):
                break
            pub = new
        result = pub.tolist()
        published = self.published
        if self.on_publish_increase is None:
            soa.published_np[:] = pub
            return
        changed = [c for c in range(self.n_cores)
                   if result[c] != published[c]]
        soa.published_np[:] = pub
        for c in changed:
            self._notify(c)

    def _full_recompute_heap(self) -> None:
        """Heap-based exact fixpoint (see :func:`exact_shadow_fixpoint`)."""
        pub = exact_shadow_fixpoint(
            self._neighbors, self.active, self.vtime, self.T)
        published = self.published
        if self.on_publish_increase is None:
            published[:] = array("d", pub)
            return
        changed = [c for c in range(self.n_cores)
                   if pub[c] != published[c]]
        published[:] = array("d", pub)
        for c in changed:
            self._notify(c)

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Debug snapshot of the fabric state."""
        if self._dirty and self.shadow_enabled and self.shadow_mode == "exact":
            self._full_recompute()
        return {
            "vtime": list(self.vtime),
            "active": list(self.active),
            "published": list(self.published),
            "births_min": list(self._births_min),
            "max_vtime": self.max_vtime,
        }
