"""Actions yielded by simulated tasks.

Simulated program code is written as Python generators.  Wherever the
paper's system would execute annotated native code or call the run-time
API, our tasks ``yield`` one of these action records; the engine interprets
it, advances virtual time, and resumes the generator with the action's
result (``gen.send(result)``).

This is the reproduction's stand-in for native execution: the *timing*
behaviour is identical (block costs come from the same annotations), only
the host-level execution vehicle differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from ..timing.annotator import Block


@dataclass(frozen=True)
class Action:
    """Base class of everything a task may yield."""


@dataclass(frozen=True)
class Compute(Action):
    """Execute an instruction block on the local core.

    Either a pre-annotated ``Block`` or a raw ``cycles`` count (the paper
    allows attributing approximate timings to coarse program parts at once).
    """

    cycles: float = 0.0
    block: Optional[Block] = None
    repeat: float = 1.0

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.repeat < 0:
            raise ValueError("compute cost must be non-negative")


@dataclass(frozen=True)
class MemAccess(Action):
    """Aggregate shared-memory access (reads + writes) to one object.

    ``obj`` identifies the logical object for coherence bookkeeping; ``bank``
    optionally pins the access to a memory bank (defaults to the object's
    home bank).  ``l1_hit_fraction`` is the annotated temporal-locality of
    the access run; the paper's pessimistic L1 model means data never
    survive function boundaries, so workloads annotate hits only within a
    block.
    """

    reads: int = 0
    writes: int = 0
    obj: Optional[object] = None
    bank: Optional[int] = None
    l1_hit_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ValueError("access counts must be non-negative")
        if not 0.0 <= self.l1_hit_fraction <= 1.0:
            raise ValueError("l1_hit_fraction must be within [0, 1]")


@dataclass(frozen=True)
class CellAccess(Action):
    """Distributed-memory access to a cell through a link (Section IV).

    The run-time system retrieves remote cell content with DATA_REQUEST /
    DATA_RESPONSE messages and locks the cell for the access duration.
    ``mode`` is ``"r"``, ``"w"`` or ``"rw"``.
    """

    cell: object = None
    mode: str = "r"

    def __post_init__(self) -> None:
        if self.mode not in ("r", "w", "rw"):
            raise ValueError("cell access mode must be r, w or rw")


@dataclass(frozen=True)
class TrySpawn(Action):
    """Conditional task spawn (probe + spawn).

    Resolves to ``True`` when the task was dispatched to another core, or
    ``False`` when the probe was denied and the caller must execute the
    task's code sequentially (``yield from fn(ctx, *args)``).
    """

    fn: Callable = None
    args: Tuple = field(default_factory=tuple)
    group: Optional[object] = None


@dataclass(frozen=True)
class Join(Action):
    """Wait for all other active tasks of a group to finish."""

    group: object = None


@dataclass(frozen=True)
class Acquire(Action):
    """Acquire a simulation-visible lock (blocking)."""

    lock: object = None


@dataclass(frozen=True)
class Release(Action):
    """Release a simulation-visible lock."""

    lock: object = None


@dataclass(frozen=True)
class SendMsg(Action):
    """Send an application-level message to another core."""

    dst: int = 0
    payload: Any = None
    size: float = 32.0
    tag: Optional[object] = None


@dataclass(frozen=True)
class RecvMsg(Action):
    """Block until an application-level message (matching ``tag``) arrives.

    Resolves to the received ``Message``.
    """

    tag: Optional[object] = None


@dataclass(frozen=True)
class LocalTime(Action):
    """Resolves to the core's current virtual time (instrumentation)."""


@dataclass(frozen=True)
class YieldCpu(Action):
    """Voluntary reschedule point (no virtual-time cost)."""
