"""Struct-of-arrays core-state plane: the engine's hot state in columns.

``CoreStateArrays`` holds every per-core scalar the hot loops touch —
virtual times, published (shadow) times, the spawn-birth floor, run-state
flags, inbox occupancy, the run-time service clock — as contiguous typed
columns, one slot per core.  It is the **single source of truth**: the
:class:`~repro.core.fabric.VirtualTimeFabric` and the per-core
:class:`~repro.core.coreunit.CoreUnit` objects hold references into the
same columns (the CoreUnits expose them as properties, i.e. thin views
for the cold paths), and the sharded backend's shared-memory planes
(``repro.parallel.channels.SharedRoundBoard``) mirror the same layout —
publication is a vectorized gather instead of a Python loop.

Columns are ``array.array`` instances rather than numpy ndarrays:
scalar indexing on an ``array('d')`` costs about half of boxing a numpy
scalar, which matters because the engine's innermost loops index single
cores, while the buffer protocol still gives

* zero-copy numpy views (``vtime_np`` etc.) for the wave-batched bulk
  operations (floor priming, plane publication, shadow fixpoints), and
* raw C pointers (:meth:`addr`) for the optional compiled kernel.

Both aliases write through to the same memory, so scalar and vector
code paths can never disagree.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

import numpy as np

INF = float("inf")

#: (name, typecode, fill) for every column, in layout order.
COLUMNS: Tuple[Tuple[str, str, float], ...] = (
    ("vtime", "d", 0.0),           # per-core virtual time
    ("published", "d", INF),       # published / shadow virtual time
    ("births_min", "d", INF),      # earliest outstanding spawn birth
    ("floor_lb", "d", -INF),       # cached lower bound on the drift floor
    ("service_clock", "d", 0.0),   # run-time/NI message service clock
    ("busy_cycles", "d", 0.0),     # accumulated busy cycles
    ("last_arrival", "d", 0.0),    # last processed message arrival
    ("active", "b", 0),            # 1 while the core owns a virtual time
    ("stalled", "b", 0),           # 1 while drift-stalled
    ("in_ready", "b", 0),          # 1 while queued in the ready ring
    ("inbox_len", "q", 0),         # live (non-tombstone) inbox messages
)

_NP_DTYPES = {"d": np.float64, "b": np.int8, "q": np.int64}


class CoreStateArrays:
    """Typed per-core state columns plus the CSR adjacency of the mesh.

    Example::

        soa = CoreStateArrays(4, [(1,), (0, 2), (1, 3), (2,)])
        soa.vtime[2] = 10.0          # scalar write (array('d'))
        assert soa.vtime_np[2] == 10.0   # zero-copy numpy view
    """

    __slots__ = tuple(name for name, _, _ in COLUMNS) + tuple(
        f"{name}_np" for name, _, _ in COLUMNS) + (
        "n", "neighbors",
        "csr_indices", "csr_offsets", "csr_indices_np", "csr_offsets_np",
        "min_degree", "max_degree",
    )

    def __init__(self, n: int, neighbors: Sequence[Sequence[int]]) -> None:
        if len(neighbors) != n:
            raise ValueError("neighbors list must have one entry per core")
        self.n = n
        self.neighbors: List[tuple] = [tuple(nbrs) for nbrs in neighbors]
        for name, code, fill in COLUMNS:
            col = array(code, [fill] * n) if n else array(code)
            setattr(self, name, col)
            setattr(self, f"{name}_np",
                    np.frombuffer(col, dtype=_NP_DTYPES[code]))
        # CSR adjacency (int64 for direct use by numpy gathers and the
        # compiled kernel alike).
        indices: List[int] = []
        offsets: List[int] = [0]
        for nbrs in self.neighbors:
            indices.extend(nbrs)
            offsets.append(len(indices))
        self.csr_indices = array("q", indices) if indices else array("q")
        self.csr_offsets = array("q", offsets)
        self.csr_indices_np = np.frombuffer(self.csr_indices, dtype=np.int64) \
            if indices else np.empty(0, dtype=np.int64)
        self.csr_offsets_np = np.frombuffer(self.csr_offsets, dtype=np.int64)
        degrees = [len(nbrs) for nbrs in self.neighbors]
        self.min_degree = min(degrees, default=0)
        self.max_degree = max(degrees, default=0)

    def addr(self, name: str) -> int:
        """Raw C address of a column's buffer (for the compiled kernel)."""
        return getattr(self, name).buffer_info()[0]

    def check_view_coherence(self) -> None:
        """Assert every numpy view aliases its backing column bit-exactly.

        Cheap invariant used by the property tests: the views are
        created with ``np.frombuffer`` and must never be copies.
        """
        for name, code, _ in COLUMNS:
            col = getattr(self, name)
            view = getattr(self, f"{name}_np")
            if view.base is None and self.n:
                raise AssertionError(f"column {name} view is a copy")
            if list(view) != list(col):
                raise AssertionError(f"column {name} view diverged")
