"""Simulator error types."""

from __future__ import annotations


class SimError(Exception):
    """Base class for simulator errors."""


class SimDeadlock(SimError):
    """The simulation cannot make progress.

    Spatial synchronization by itself never deadlocks (the task with lowest
    virtual time can always progress — paper, Section II-B); reaching this
    state indicates a program-level deadlock or an engine misuse, and the
    exception carries diagnostics to tell them apart.
    """

    def __init__(self, message: str, diagnostics: dict | None = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class SimConfigError(SimError):
    """Invalid architecture or engine configuration."""


class ShardBoundaryError(SimError):
    """A run-time protocol message tried to cross a shard boundary.

    With ``ArchConfig.shards > 0`` the dispatcher, work stealing and
    memory placement are fenced to shard-local cores, so only USER
    messages (explicit ``ctx.send``) may cross.  Anything else carries
    live engine objects (tasks, locks, cells) that cannot be shipped
    between worker processes; reaching this error means the fence has a
    hole and the run cannot be bit-identical across backends.
    """


class ProtocolError(SimError):
    """A task violated the programming-model protocol (e.g. double release)."""


class SanitizerViolation(SimError):
    """A runtime invariant check (``ArchConfig.sanitize``) failed.

    Carries structured context so violations crossing a worker-process
    boundary survive as data: the check that fired, the core involved,
    the virtual times on both sides of the comparison, and a free-form
    ``details`` dict describing the offending event.  All fields are
    plain picklable values.
    """

    def __init__(self, check: str, message: str, *, core: int | None = None,
                 vtime: float | None = None, bound: float | None = None,
                 details: dict | None = None) -> None:
        super().__init__(f"[sanitize:{check}] {message}")
        self.check = check
        self.core = core
        self.vtime = vtime
        self.bound = bound
        self.details = details or {}


class TaskError(SimError):
    """Simulated program code raised an exception.

    Wraps the original exception with simulation context (task, core,
    virtual time); the original is available as ``__cause__``.
    """

    def __init__(self, message: str, task=None, core: int | None = None,
                 vtime: float | None = None) -> None:
        super().__init__(message)
        self.task = task
        self.core = core
        self.vtime = vtime
