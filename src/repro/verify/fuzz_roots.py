"""Root-task factories for the conformance fuzzer.

These live inside the installed package (unlike the test-suite's
``tests/parallel_roots.py``) so sharded worker processes can resolve
``WorkloadSpec.factory`` strings like ``"repro.verify.fuzz_roots:pingpong"``
regardless of how the interpreter was launched.

Every factory returns an object with a ``root`` coroutine and a
``verify`` callable; each root's *return value* is timing-independent
(counts and payload checksums, never virtual times), so results must
match exactly between backends even when trajectories legitimately
differ.
"""

from __future__ import annotations

from types import SimpleNamespace


def pingpong(peer: int, rounds: int = 3):
    """Send tagged pings to ``peer`` and collect the incremented replies
    (pair with :func:`echo` on the peer core)."""

    def root(ctx):
        acc = []
        for i in range(rounds):
            yield ctx.send(peer, payload=i * 10, tag=("ping", i))
            msg = yield ctx.recv(tag=("pong", i))
            acc.append(msg.payload)
        return acc

    expected = [i * 10 + 1 for i in range(rounds)]

    def verify(result):
        assert result == expected, (result, expected)

    return SimpleNamespace(root=root, verify=verify)


def echo(rounds: int = 3):
    """Answer each tagged ping with payload + 1."""

    def root(ctx):
        for i in range(rounds):
            msg = yield ctx.recv(tag=("ping", i))
            yield ctx.send(msg.src, payload=msg.payload + 1,
                           tag=("pong", i))
        return rounds

    def verify(result):
        assert result == rounds, (result, rounds)

    return SimpleNamespace(root=root, verify=verify)


def lone_compute(steps: int = 5, chunk: float = 40.0):
    """Pure local compute; returns the step count (never a time)."""

    def root(ctx):
        for _ in range(steps):
            yield ctx.compute(chunk)
        return steps

    def verify(result):
        assert result == steps, (result, steps)

    return SimpleNamespace(root=root, verify=verify)


def fanout(n_children: int = 3, child_cycles: float = 60.0):
    """Spawn ``n_children`` compute tasks and join them (exercises the
    run-time dispatcher, the birth ledger and task groups)."""

    def child(ctx, i):
        yield ctx.compute(cycles=child_cycles)
        return i

    def root(ctx):
        from ..core.task import TaskGroup

        group = TaskGroup("fuzz-fanout")
        for i in range(n_children):
            yield from ctx.spawn_or_inline(child, i, group=group)
        yield ctx.join(group)
        return n_children

    def verify(result):
        assert result == n_children, (result, n_children)

    return SimpleNamespace(root=root, verify=verify)
