"""Differential serial-vs-sharded conformance fuzzer.

``python -m repro fuzz`` generates seeded random cases — mesh size,
drift bound, shard count, adaptive-window and batching knobs, sync
policy, and a random mix of workload roots — and runs each case under
both execution backends with the sanitizer on, comparing canonical
trace digests, merged stats and workload results.

Two conformance contracts are checked, mirroring docs/parallel.md:

* **strict** — when the serial run never drift-stalls *and* no USER
  message crosses a shard boundary (the run is shard-closed), the
  fenced regions are decoupled and the backends must be
  *bit-identical*: equal results, equal completion time, equal
  per-kind message counts and equal trace digests.
* **determinism** — coupled cases (the serial run stalls, or messages
  cross shards and are therefore delivered at round granularity) only
  promise run-to-run determinism of the sharded backend plus verified
  outputs; the sharded run executes twice and must hash identically.

On a mismatch the fuzzer greedily shrinks the case (dropping
workloads, collapsing the window and batching knobs) while the failure
reproduces, then prints a one-line reproducer::

    python -m repro fuzz --case '<json>'

Case generation is a plain seeded ``random.Random`` walk so a seed is
a complete description; :func:`case_strategy` wraps the same generator
as a hypothesis strategy (shrinking over the seed) for the property
tests in ``tests/test_fuzzer.py``.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_BENCHMARKS = ("quicksort", "dijkstra", "spmxv")
_MESHES = (9, 12, 16, 20, 25)
_DRIFTS = (5.0, 20.0, 100.0, 1e9)
_WINDOW_MAX = (1.0, 4.0, 64.0)
_ROUND_BATCH = (1, 4, 16)


@dataclass
class FuzzCase:
    """One self-contained fuzz case (JSON round-trippable)."""

    seed: int = 0
    n_cores: int = 16
    shards: int = 2
    drift_bound: float = 100.0
    sync: str = "spatial"
    window_max_factor: float = 64.0
    round_batch: int = 16
    #: WorkloadSpec keyword dicts (picklable / JSON-able).
    workloads: List[Dict] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        return cls(**json.loads(text))

    def specs(self):
        from ..parallel import WorkloadSpec

        return [WorkloadSpec(**w) for w in self.workloads]

    def config(self, backend: str, sanitize: bool):
        from ..arch import shared_mesh

        return dataclasses.replace(
            shared_mesh(self.n_cores),
            backend=backend,
            shards=self.shards,
            sync=self.sync,
            drift_bound=self.drift_bound,
            adaptive_window=self.window_max_factor > 1.0,
            window_max_factor=self.window_max_factor,
            round_batch=self.round_batch,
            sanitize=sanitize,
            collect_trace=True,
            seed=self.seed & 0x7FFFFFFF,
        )

    def describe(self) -> str:
        return (f"seed={self.seed} mesh={self.n_cores} "
                f"shards={self.shards} T={self.drift_bound:g} "
                f"sync={self.sync} window<=x{self.window_max_factor:g} "
                f"batch={self.round_batch} "
                f"workloads={len(self.workloads)}")


def generate_case(rng: random.Random, seed: int = 0) -> FuzzCase:
    """Derive one case from a seeded RNG (deterministic in the seed)."""
    from ..core.errors import SimConfigError
    from ..network.topology import square_mesh
    from ..parallel.partition import contiguous_partition

    n = rng.choice(_MESHES)
    shards = rng.randint(1, min(4, n))
    topo = square_mesh(n)
    while True:
        # Some (mesh, shards) combinations yield disconnected regions
        # (the partitioner validates and refuses); back off toward 1,
        # which always succeeds.
        try:
            part = contiguous_partition(topo, shards)
            break
        except SimConfigError:
            shards -= 1
    case = FuzzCase(
        seed=seed,
        n_cores=n,
        shards=shards,
        drift_bound=rng.choice(_DRIFTS),
        sync="spatial" if rng.random() < 0.8 else "unbounded",
        window_max_factor=rng.choice(_WINDOW_MAX),
        round_batch=rng.choice(_ROUND_BATCH),
    )
    workloads: List[Dict] = []
    for sid in range(shards):
        owned = list(part.cores_of(sid))
        kind = rng.random()
        if kind < 0.45:
            workloads.append(dict(
                benchmark=rng.choice(_BENCHMARKS), scale="tiny",
                seed=rng.randrange(1000), memory="shared",
                root_core=rng.choice(owned)))
        elif kind < 0.65:
            workloads.append(dict(
                benchmark="", root_core=rng.choice(owned),
                factory="repro.verify.fuzz_roots:lone_compute",
                kwargs={"steps": rng.randrange(2, 8),
                        "chunk": float(rng.choice((15, 40, 90)))}))
        elif kind < 0.8:
            workloads.append(dict(
                benchmark="", root_core=rng.choice(owned),
                factory="repro.verify.fuzz_roots:fanout",
                kwargs={"n_children": rng.randrange(2, 5)}))
        # else: quiet shard (exercises adaptive windows / idle shadows)
    if rng.random() < 0.5 or not workloads:
        # A messaging pair; cores may land in different shards, which
        # exercises the boundary codec and round traffic.
        a, b = rng.sample(range(n), 2)
        rounds = rng.randrange(1, 4)
        workloads.append(dict(
            benchmark="", root_core=a,
            factory="repro.verify.fuzz_roots:pingpong",
            kwargs={"peer": b, "rounds": rounds}))
        workloads.append(dict(
            benchmark="", root_core=b,
            factory="repro.verify.fuzz_roots:echo",
            kwargs={"rounds": rounds}))
    case.workloads = workloads
    return case


def case_strategy():
    """Hypothesis strategy over fuzz cases (shrinks via the seed)."""
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda s: generate_case(random.Random(s), seed=s))


# -- execution -------------------------------------------------------------

def _verify_outputs(specs, results) -> Optional[str]:
    for spec, result in zip(specs, results):
        workload = spec.resolve()
        verify = getattr(workload, "verify", None)
        if verify is None:
            continue
        try:
            if spec.factory:
                verify(result)
            else:
                verify(result["output"])
        except AssertionError as exc:
            return (f"workload on core {spec.root_core} produced a wrong "
                    f"result: {exc}")
    return None


def _run_serial(case: FuzzCase, sanitize: bool):
    from ..arch import build_machine
    from ..harness.trace import Tracer, trace_digest

    machine = build_machine(case.config("serial", sanitize))
    tracer = Tracer(machine)
    specs = case.specs()
    results = machine.run_roots(
        [(spec.resolve().root, (), spec.root_core) for spec in specs])
    trace = tracer.export()
    return {
        "results": results,
        "digest": trace_digest(trace),
        "trace": trace,
        "completion": machine.stats.completion_vtime,
        "messages": dict(machine.stats.messages_by_kind),
        "drift_stalls": machine.stats.drift_stalls,
    }


def _shard_closed(case: FuzzCase, trace) -> bool:
    """Whether no USER message in the (serial) trace crosses a shard
    boundary.  Cross-shard messages are delivered at coordination-round
    granularity, so the receiver may legitimately process them at a
    different virtual time than serial — the bit-identity contract only
    covers shard-closed runs (docs/parallel.md)."""
    if case.shards <= 1:
        return True
    from ..arch.builder import build_topology
    from ..parallel.partition import contiguous_partition

    part = contiguous_partition(
        build_topology(case.config("serial", False)), case.shards)
    owner = part.owner
    return not any(m["kind"] == "user" and owner[m["src"]] != owner[m["dst"]]
                   for m in trace["messages"])


def _run_sharded(case: FuzzCase, sanitize: bool):
    from ..arch import build_backend
    from ..harness.trace import trace_digest

    backend = build_backend(case.config("sharded", sanitize))
    specs = case.specs()
    results = backend.run_workloads(specs)
    digest = (trace_digest(backend.trace)
              if backend.trace is not None else None)
    return {
        "results": results,
        "digest": digest,
        "completion": backend.stats.completion_vtime,
        "messages": dict(backend.stats.messages_by_kind),
        "protocol": dict(backend.protocol),
    }


def run_case(case: FuzzCase, sanitize: bool = True) -> Tuple[bool, Dict]:
    """Run one case under both backends; return (ok, report).

    The report carries ``mode`` ("strict" or "determinism"), the
    digests, and on failure a ``mismatches`` list naming exactly what
    diverged (or ``error`` when a run raised).
    """
    report: Dict = {"case": case.to_json()}
    try:
        serial = _run_serial(case, sanitize)
        sharded = _run_sharded(case, sanitize)
    except Exception as exc:  # SimDeadlock, SanitizerViolation, ...
        report["error"] = f"{type(exc).__name__}: {exc}"
        return False, report

    specs = case.specs()
    mismatches: List[str] = []
    bad = _verify_outputs(specs, sharded["results"])
    if bad:
        mismatches.append(f"sharded: {bad}")
    bad = _verify_outputs(specs, serial["results"])
    if bad:
        mismatches.append(f"serial: {bad}")

    strict = (serial["drift_stalls"] == 0
              and _shard_closed(case, serial["trace"]))
    report["mode"] = "strict" if strict else "determinism"
    if strict:
        second = sharded
    else:
        # Coupled regions: the contract weakens to run-to-run
        # determinism of the sharded backend (plus verified outputs).
        try:
            second = _run_sharded(case, sanitize)
        except Exception as exc:
            report["error"] = f"{type(exc).__name__}: {exc}"
            return False, report
        serial = sharded  # compare the two sharded runs below

    for key, label in (("results", "results"),
                       ("completion", "completion vtime"),
                       ("messages", "messages by kind"),
                       ("digest", "trace digest")):
        if serial[key] != second[key]:
            mismatches.append(
                f"{label} differ: {serial[key]!r} vs {second[key]!r}")
    report["digest"] = second["digest"]
    if mismatches:
        report["mismatches"] = mismatches
        return False, report
    return True, report


def run_snapshot_case(case: FuzzCase, sanitize: bool = True
                      ) -> Tuple[bool, Dict]:
    """Split-run equivalence for one case (``fuzz --snapshot``).

    Pins ``run(0..end) == run(0..k); restore; run(k..end)`` — results,
    completion vtime, message counts, stats and trace digest all
    bit-identical — at a case-derived random boundary ``k``: a
    virtual-time stop for the serial backend, and (when the straight
    run spans at least two rounds) a coordination round for the sharded
    one.  The checkpointed run itself must also match the straight run,
    i.e. snapshotting is observation-only.
    """
    from ..checkpoint import run_straight, split_run

    report: Dict = {"case": case.to_json(), "mode": "snapshot"}
    rng = random.Random(case.seed * 9_176_549 + 11)
    mismatches: List[str] = []

    def det(outcome):
        return {k: v for k, v in outcome.items() if k != "host"}

    try:
        specs = case.specs()
        cfg = case.config("serial", sanitize)
        straight = run_straight(cfg, specs)
        k = max(1.0, straight["completion"] * rng.uniform(0.2, 0.8))
        snap, chk, resumed = split_run(cfg, specs, k)
        report["serial_boundary"] = (None if snap is None
                                     else snap.boundary["value"])
        if det(chk) != det(straight):
            mismatches.append("serial checkpointed run diverged from the "
                              "straight run")
        if snap is not None and det(resumed) != det(straight):
            mismatches.append(f"serial resume from vtime {k:.1f} diverged "
                              f"from the straight run")
        report["digest"] = straight["digest"]

        if case.shards > 1:
            cfg_sh = case.config("sharded", sanitize)
            straight_sh = run_straight(cfg_sh, specs)
            rounds = straight_sh["protocol"]["rounds"]
            if rounds >= 2:
                r = rng.randint(1, rounds - 1)
                snap_sh, chk_sh, resumed_sh = split_run(cfg_sh, specs, r)
                report["sharded_boundary"] = (None if snap_sh is None
                                              else r)
                if det(chk_sh) != det(straight_sh):
                    mismatches.append("sharded checkpointed run diverged "
                                      "from the straight run")
                if snap_sh is not None and det(resumed_sh) != det(straight_sh):
                    mismatches.append(f"sharded resume from round {r} "
                                      f"diverged from the straight run")
    except Exception as exc:  # CheckpointMismatchError, SimDeadlock, ...
        report["error"] = f"{type(exc).__name__}: {exc}"
        return False, report
    if mismatches:
        report["mismatches"] = mismatches
        return False, report
    return True, report


def _failure_signature(report: Dict) -> Tuple:
    """Coarse failure class, so shrinking cannot morph one bug into
    another (e.g. dropping half a pingpong pair turns a digest mismatch
    into a recv deadlock — simpler, but a different failure)."""
    if "error" in report:
        return ("error", report["error"].split(":", 1)[0])
    return ("mismatch", tuple(sorted(
        m.split(":", 1)[0] for m in report.get("mismatches", ()))))


def shrink_case(case: FuzzCase, sanitize: bool = True,
                budget: int = 16, runner=run_case) -> FuzzCase:
    """Greedy shrink: keep a simplification only while it reproduces the
    *same class* of failure.  ``runner`` is the ``(case, sanitize) ->
    (ok, report)`` oracle — :func:`run_case` for conformance failures,
    :func:`run_snapshot_case` for split-run failures."""
    ok, report = runner(case, sanitize)
    if ok:
        return case
    signature = _failure_signature(report)

    def still_fails(candidate: FuzzCase) -> bool:
        ok, rep = runner(candidate, sanitize)
        return not ok and _failure_signature(rep) == signature

    current = case
    improved = True
    while improved and budget > 0:
        improved = False
        candidates: List[FuzzCase] = []
        for i in range(len(current.workloads)):
            trimmed = [w for j, w in enumerate(current.workloads) if j != i]
            if trimmed:
                candidates.append(
                    dataclasses.replace(current, workloads=trimmed))
        if current.round_batch > 1:
            candidates.append(dataclasses.replace(current, round_batch=1))
        if current.window_max_factor > 1.0:
            candidates.append(
                dataclasses.replace(current, window_max_factor=1.0))
        for candidate in candidates:
            if budget <= 0:
                break
            budget -= 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current


# -- CLI entry -------------------------------------------------------------

def fuzz_main(cases: int, seed: int, sanitize: bool,
              case_json: Optional[str], out,
              snapshot: bool = False) -> int:
    """Back end of ``python -m repro fuzz``; returns the exit code."""
    runner = run_snapshot_case if snapshot else run_case
    repro_flag = " --snapshot" if snapshot else ""
    if case_json is not None:
        case = FuzzCase.from_json(case_json)
        ok, report = runner(case, sanitize)
        print(f"case {case.describe()}", file=out)
        _print_report(ok, report, out)
        return 0 if ok else 1

    failures = 0
    for i in range(cases):
        case_seed = seed * 1_000_003 + i
        case = generate_case(random.Random(case_seed), seed=case_seed)
        ok, report = runner(case, sanitize)
        status = "ok" if ok else "FAIL"
        print(f"[{i + 1:3d}/{cases}] {status:4s} "
              f"({report.get('mode', 'error'):>11s}) {case.describe()}",
              file=out)
        if not ok:
            failures += 1
            _print_report(ok, report, out)
            shrunk = shrink_case(case, sanitize, runner=runner)
            if shrunk.to_json() != case.to_json():
                print(f"  shrunk to: {shrunk.describe()}", file=out)
            print("  reproduce with:", file=out)
            print(f"    python -m repro fuzz{repro_flag} "
                  f"--case '{shrunk.to_json()}'", file=out)
    if failures:
        print(f"{failures}/{cases} cases failed", file=out)
        return 1
    print(f"all {cases} cases passed", file=out)
    return 0


def _print_report(ok: bool, report: Dict, out) -> None:
    if ok:
        print(f"  ok ({report.get('mode')}), digest "
              f"{str(report.get('digest'))[:16]}...", file=out)
        return
    if "error" in report:
        print(f"  error: {report['error']}", file=out)
    for line in report.get("mismatches", ()):
        print(f"  mismatch: {line}", file=out)
