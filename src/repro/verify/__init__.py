"""Verification subsystem: runtime sanitizer, canonical trace hashing
and the differential serial-vs-sharded conformance fuzzer.

Three layers, each usable on its own:

* :class:`~repro.verify.sanitizer.Sanitizer` — an opt-in runtime
  checker (``ArchConfig.sanitize`` / ``--sanitize``) that hooks the
  fabric, NoC and scheduler and asserts the engine's core invariants
  continuously: the neighbour drift bound at every admission, causal
  and per-channel-FIFO message delivery, publish monotonicity, lock
  accounting, and the sharded backend's adopt/window-lift protocol.
  Violations raise :class:`~repro.core.errors.SanitizerViolation`.
* canonical traces — :func:`repro.harness.trace.trace_digest` turns any
  run's trace into a stable sha256 so two executions can be compared by
  hash instead of golden numbers.
* the fuzzer (``python -m repro fuzz``) — generates seeded random
  workload/config cases, runs each under the serial and sharded
  backends with the sanitizer on, and diffs digests and stats,
  shrinking and printing a reproducer command on mismatch.

See docs/testing.md for how the layers fit together.
"""

from .sanitizer import Sanitizer
from .fuzzer import FuzzCase, generate_case, run_case

__all__ = ["Sanitizer", "FuzzCase", "generate_case", "run_case"]
