"""Runtime invariant checker (``ArchConfig.sanitize``).

The sanitizer attaches to a built machine the same way the tracer does
— by wrapping methods, never by editing engine code — so the checked
run executes the exact production hot paths.  What it asserts:

``drift-admission``
    Every positive ``may_run`` answer from a drift-checking policy
    (``SyncPolicy.checks_drift``) is cross-validated against the
    fabric's reference :meth:`~repro.core.fabric.VirtualTimeFabric.drift_ok`.
    The policy inlines the drift rule for speed (the single hottest call
    in the engine); this check pins the inlined fast path to the
    reference semantics on every admission.  Lock holders are exempt
    (the paper's Section II-B waiver) and so are forced waiver slices
    (the sharded escalation ladder's counted accuracy concession).
``publish``
    After every ``fabric.advance``/``fabric.commit``: an active core's
    published time covers its virtual time, and published times never
    regress (fast shadow mode publishes monotonically; a revoked
    permission could wedge neighbours that already ran under it).
``causal-delivery`` / ``fifo-delivery``
    Every NoC arrival satisfies ``arrival >= depart + min_latency`` and
    arrivals on one directed ``(src, dst)`` channel never regress.
``inject-*``
    Messages injected across a shard boundary re-check causality and
    per-channel FIFO on the receiving side, and must carry finite
    times — this is the guard against codec corruption on the wire.
``ordered-inbox``
    Policies promising arrival-order processing
    (``SyncPolicy.ordered_inbox``) turn the engine's out-of-order
    *counter* into a hard failure.
``window-lift``
    The sharded round protocol's lift must stay within the grant the
    adaptive window is allowed to make:
    ``0 <= lift <= (window_max_factor - 1) * T``.  Checked per round on
    the worker (:meth:`Sanitizer.begin_round`) and by the coordinator
    before each broadcast.
``proxy`` / ``adopt``
    Boundary-proxy anchors and adopted shadows must be finite and may
    only raise a core's published time.
``lock-leak`` / ``task-leak``
    At a clean end of run (no live tasks) every core has released its
    locks and retired its current task.

All failures raise :class:`~repro.core.errors.SanitizerViolation` with
the check name, core, virtual times and a details dict (see
``fabric.drift_report``); the sharded worker ships them to the
coordinator as structured data.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Tuple

from ..core.errors import SanitizerViolation

_EPS = 1e-9
_INF = math.inf


class Sanitizer:
    """Wrap-based runtime checker for one machine.

    Construct with a fully-built machine (the builder does this when
    ``cfg.sanitize`` is set); the instance registers itself as
    ``machine.sanitizer``.  ``checks`` counts how often each check ran,
    so tests can assert the sanitizer actually exercised a path.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        #: Per-check execution counters (check name -> times evaluated).
        self.checks: Counter = Counter()
        #: Current round's window lift (sharded worker; 0.0 elsewhere).
        self.lift = 0.0
        self._in_waiver = False
        self._fifo: Dict[Tuple[int, int], float] = {}
        self._inject_fifo: Dict[Tuple[int, int], float] = {}
        n = machine.n_cores
        self._pub_seen = [-_INF] * n
        fabric = machine.fabric
        self._fast_shadows = fabric.shadow_mode == "fast"
        self._drift_checked = bool(
            getattr(machine.policy, "checks_drift", False))
        machine.sanitizer = self
        self._install()

    # -- violation plumbing ------------------------------------------------
    def _violate(self, check: str, message: str, *, core=None, vtime=None,
                 bound=None, **details) -> None:
        raise SanitizerViolation(check, message, core=core, vtime=vtime,
                                 bound=bound, details=details)

    # -- hook installation -------------------------------------------------
    def _install(self) -> None:
        machine = self.machine
        fabric = machine.fabric
        policy = machine.policy
        noc = machine.noc
        checks = self.checks

        # 1. Admission cross-check: policy fast path vs fabric reference.
        if self._drift_checked:
            orig_may_run = policy.may_run  # bound method (class attribute)

            def may_run(core):
                ok = orig_may_run(core)
                if (ok and not self._in_waiver and fabric.active[core.cid]
                        and core.locks_held == 0):
                    checks["drift-admission"] += 1
                    if not fabric.drift_ok(core.cid):
                        report = fabric.drift_report(core.cid)
                        self._violate(
                            "drift-admission",
                            f"core {core.cid} admitted at vtime "
                            f"{report['vtime']:.3f} above floor "
                            f"{report['floor']:.3f} + T {report['T']:g}",
                            core=core.cid, vtime=report["vtime"],
                            bound=report["floor"] + report["T"],
                            report=report)
                return ok

            policy.__dict__["may_run"] = may_run
            self._may_run_wrap = may_run

            # run_shard_waiver swaps policy.__dict__["may_run"] around
            # its forced slice and deletes the entry afterwards, which
            # would silently drop our wrapper — reinstate it, and mark
            # the slice exempt (the waiver is a *deliberate*, counted
            # drift-rule bypass).
            orig_waiver = machine.run_shard_waiver

            def run_shard_waiver():
                self._in_waiver = True
                try:
                    return orig_waiver()
                finally:
                    self._in_waiver = False
                    policy.__dict__["may_run"] = may_run

            machine.run_shard_waiver = run_shard_waiver

        # 2. Publish consistency after every advance/commit.
        orig_advance = fabric.advance
        orig_commit = fabric.commit

        def advance(cid, new_time):
            orig_advance(cid, new_time)
            self._check_publish(cid)

        def commit(cid):
            orig_commit(cid)
            self._check_publish(cid)

        fabric.advance = advance
        fabric.commit = commit

        # 3. Causal + per-channel-FIFO delivery at the NoC.
        orig_delivery = noc.delivery_time

        def delivery_time(src, dst, size, depart):
            arrival = orig_delivery(src, dst, size, depart)
            checks["causal-delivery"] += 1
            lo = depart + noc.min_latency(src, dst)
            if arrival < lo - _EPS:
                self._violate(
                    "causal-delivery",
                    f"message {src}->{dst} departs at {depart:.3f} but "
                    f"arrives at {arrival:.3f} < {lo:.3f} "
                    f"(min latency {noc.min_latency(src, dst):g})",
                    core=dst, vtime=arrival, bound=lo,
                    src=src, depart=depart)
            if src != dst:
                key = (src, dst)
                last = self._fifo.get(key, -_INF)
                if arrival < last - _EPS:
                    self._violate(
                        "fifo-delivery",
                        f"channel {src}->{dst} arrival regressed: "
                        f"{arrival:.3f} after {last:.3f}",
                        core=dst, vtime=arrival, bound=last, src=src)
                if arrival > last:
                    self._fifo[key] = arrival
            return arrival

        noc.delivery_time = delivery_time

        # 4. Boundary injections (sharded receive side): the codec must
        # hand back exactly what the sender's NoC computed.
        orig_inject = machine.inject_message

        def inject_message(kind, src, dst, send_time, size, arrival,
                           payload=None, tag=None):
            checks["inject"] += 1
            if not (math.isfinite(send_time) and math.isfinite(arrival)):
                self._violate(
                    "inject-time-finite",
                    f"injected message {src}->{dst} carries non-finite "
                    f"times (send={send_time!r}, arrival={arrival!r})",
                    core=dst, src=src)
            lo = send_time + noc.min_latency(src, dst)
            if arrival < lo - _EPS:
                self._violate(
                    "inject-causal",
                    f"injected message {src}->{dst} sent at "
                    f"{send_time:.3f} arrives at {arrival:.3f} < {lo:.3f}",
                    core=dst, vtime=arrival, bound=lo, src=src,
                    send_time=send_time)
            key = (src, dst)
            last = self._inject_fifo.get(key, -_INF)
            if arrival < last - _EPS:
                self._violate(
                    "inject-fifo",
                    f"injected channel {src}->{dst} arrival regressed: "
                    f"{arrival:.3f} after {last:.3f}",
                    core=dst, vtime=arrival, bound=last, src=src)
            if arrival > last:
                self._inject_fifo[key] = arrival
            return orig_inject(kind, src, dst, send_time, size, arrival,
                               payload, tag)

        machine.inject_message = inject_message

        # 5. Ordered-inbox promise becomes a hard failure.
        if getattr(policy, "ordered_inbox", False):
            orig_process = machine._process_message

            def process_message(core, msg):
                checks["ordered-inbox"] += 1
                if msg.arrival < core.last_processed_arrival - 1e-9:
                    self._violate(
                        "ordered-inbox",
                        f"core {core.cid} processed arrival "
                        f"{msg.arrival:.3f} after "
                        f"{core.last_processed_arrival:.3f} under an "
                        f"arrival-ordered policy",
                        core=core.cid, vtime=msg.arrival,
                        bound=core.last_processed_arrival)
                orig_process(core, msg)

            machine._process_message = process_message

        # 6. Proxy/adopt protocol: finite, raise-only.
        orig_proxy = fabric.set_proxy_time
        orig_adopt = fabric.adopt_shadow

        def set_proxy_time(cid, value):
            checks["proxy"] += 1
            if math.isnan(value):
                self._violate("proxy", f"proxy {cid} anchored at NaN",
                              core=cid)
            before = fabric.published[cid]
            orig_proxy(cid, value)
            if fabric.published[cid] < min(before, value) - _EPS:
                self._violate(
                    "proxy",
                    f"proxy {cid} published time regressed: "
                    f"{fabric.published[cid]:.3f} after {before:.3f}",
                    core=cid, vtime=fabric.published[cid], bound=before)

        def adopt_shadow(cid, value):
            checks["adopt"] += 1
            if math.isnan(value):
                self._violate("adopt", f"shadow {cid} adopted NaN",
                              core=cid)
            before = fabric.published[cid]
            orig_adopt(cid, value)
            if fabric.published[cid] < min(before, value) - _EPS:
                self._violate(
                    "adopt",
                    f"shadow {cid} published time regressed: "
                    f"{fabric.published[cid]:.3f} after {before:.3f}",
                    core=cid, vtime=fabric.published[cid], bound=before)

        fabric.set_proxy_time = set_proxy_time
        fabric.adopt_shadow = adopt_shadow

        # 7. End-of-run lock / task accounting.
        orig_finish = machine.finish_run

        def finish_run():
            orig_finish()
            if machine.live_tasks == 0:
                checks["end-of-run"] += 1
                for core in machine.cores:
                    if core.locks_held != 0:
                        self._violate(
                            "lock-leak",
                            f"core {core.cid} still holds "
                            f"{core.locks_held} lock(s) at end of run",
                            core=core.cid)
                    if core.current is not None:
                        self._violate(
                            "task-leak",
                            f"core {core.cid} still runs "
                            f"{core.current!r} at end of run with no "
                            f"live tasks",
                            core=core.cid)

        machine.finish_run = finish_run

    # -- per-check helpers -------------------------------------------------
    def _check_publish(self, cid: int) -> None:
        if not self._fast_shadows:
            return  # exact mode recomputes shadows; no monotone promise
        self.checks["publish"] += 1
        fabric = self.machine.fabric
        pub = fabric.published[cid]
        if fabric.active[cid] and pub < fabric.vtime[cid] - _EPS:
            self._violate(
                "publish",
                f"core {cid} advanced to {fabric.vtime[cid]:.3f} but "
                f"publishes only {pub:.3f}",
                core=cid, vtime=fabric.vtime[cid], bound=pub)
        if pub != _INF:
            last = self._pub_seen[cid]
            if pub < last - _EPS:
                self._violate(
                    "publish",
                    f"core {cid} published time regressed: {pub:.3f} "
                    f"after {last:.3f}",
                    core=cid, vtime=pub, bound=last)
            if pub > last:
                self._pub_seen[cid] = pub

    # -- sharded round protocol -------------------------------------------
    def begin_round(self, lift: float, window_max_factor: float) -> None:
        """Validate one coordination round's window lift (worker side).

        The adaptive window may grant at most
        ``(window_max_factor - 1) * T`` of extra drift permission; a
        lift beyond that (or a negative one) means the coordinator's
        window arithmetic is broken and every drift check this round
        would silently run under wrong permissions.
        """
        self.checks["window-lift"] += 1
        T = self.machine.fabric.T
        bound = (window_max_factor - 1.0) * T
        if lift < -_EPS or lift > bound * (1.0 + 1e-12) + _EPS:
            self._violate(
                "window-lift",
                f"round lift {lift:g} outside [0, {bound:g}] "
                f"(window_max_factor {window_max_factor:g}, T {T:g})",
                bound=bound, lift=lift,
                window_max_factor=window_max_factor)
        self.lift = lift
