"""Sparse matrix-vector multiply (paper, Section V).

Matrices are stored in a row-oriented CSR format (alike to Harwell-Boeing).
The paper uses 30 Matrix Market matrices plus randomly generated ones; we
generate random and structured (banded) matrices with the same row/nnz
shape parameters.

Rows are distributed with the tasks that process them; the input vector is
broadcast (read-only), so the benchmark exhibits little data movement and
no cell contention — which is why its distributed-memory results barely
differ from the shared-memory ones (Fig. 9), and why it is representative
of the simulator's intrinsic behaviour (Fig. 7).

It scales well until the row blocks run out relative to the core count
(the paper: tops at 64 cores for their datasets).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import WorkloadRun
from .generators import params_for, random_sparse_matrix, structured_sparse_matrix
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Per-nonzero work: load value + column index + x element, multiply-add.
NNZ_WORK = Block(
    "spmxv-nnz",
    instr_counts={
        InstrClass.FP_MUL: 1, InstrClass.FP_ADD: 1,
        InstrClass.LOAD: 3, InstrClass.INT_ALU: 2,
    },
)
#: Per-row overhead (row pointer handling, result store).
ROW_WORK = Block(
    "spmxv-row",
    instr_counts={InstrClass.INT_ALU: 4, InstrClass.LOAD: 2, InstrClass.STORE: 1},
    cond_branches=1,
    static_exits=1,
)

#: Rows per leaf task.
ROW_CHUNK = 16


def multiply_task(ctx, indptr, indices, data, x, y, lo: int, hi: int,
                  group: TaskGroup):
    """Compute y[lo:hi) = A[lo:hi) @ x, splitting row ranges recursively."""
    if hi - lo > ROW_CHUNK:
        mid = (lo + hi) // 2
        yield from ctx.spawn_or_inline(
            multiply_task, indptr, indices, data, x, y, mid, hi, group,
            group=group,
        )
        yield from multiply_task(ctx, indptr, indices, data, x, y, lo, mid, group)
        return
    nnz = int(indptr[hi] - indptr[lo])
    rows = hi - lo
    yield ctx.compute(block=ROW_WORK, repeat=rows)
    if nnz:
        yield ctx.compute(block=NNZ_WORK, repeat=nnz)
        # Matrix values stream from memory; x has some reuse, y is written.
        yield ctx.mem(reads=2 * nnz, obj=("spmxv-A", lo // 64),
                      l1_hit_fraction=0.2)
        yield ctx.mem(reads=nnz, obj="spmxv-x", l1_hit_fraction=0.6)
    yield ctx.mem(writes=rows, obj=("spmxv-y", lo // 64))
    for row in range(lo, hi):
        start, end = int(indptr[row]), int(indptr[row + 1])
        acc = 0.0
        for k in range(start, end):
            acc += data[k] * x[indices[k]]
        y[row] = acc


def make_workload(scale: str = "small", seed: int = 0, memory: str = "shared",
                  rows: Optional[int] = None, nnz_per_row: Optional[int] = None,
                  structured: bool = False, **_ignored) -> WorkloadRun:
    """SpMxV workload instance.

    ``structured=True`` uses a banded matrix standing in for the Matrix
    Market collection entries used in the validation experiments.
    """
    params = params_for("spmxv", scale)
    rows = rows if rows is not None else params["rows"]
    nnz_per_row = nnz_per_row if nnz_per_row is not None else params["nnz_per_row"]
    if structured:
        matrix = structured_sparse_matrix(rows, bandwidth=max(2, nnz_per_row // 2),
                                          seed=seed)
    else:
        matrix = random_sparse_matrix(rows, nnz_per_row, seed=seed)
    rng = np.random.default_rng(seed + 12345)
    x = rng.random(rows)
    indptr = matrix.indptr
    indices = matrix.indices
    data = matrix.data

    def root(ctx):
        y = [0.0] * rows
        group = TaskGroup("spmxv")
        yield from multiply_task(ctx, indptr, indices, data, x, y,
                                 0, rows, group)
        yield ctx.join(group)
        done = yield ctx.now()
        return {"output": y, "work_vtime": done}

    expected = matrix @ x

    def verify(result):
        got = np.asarray(result)
        assert got.shape == expected.shape
        assert np.allclose(got, expected, rtol=1e-9, atol=1e-12), \
            "SpMxV result mismatch"

    def native():
        y = [0.0] * rows
        for row in range(rows):
            start, end = int(indptr[row]), int(indptr[row + 1])
            acc = 0.0
            for k in range(start, end):
                acc += data[k] * x[indices[k]]
            y[row] = acc
        return y

    return WorkloadRun(
        name="spmxv",
        root=root,
        verify=verify,
        native=native,
        meta={"rows": rows, "nnz": int(matrix.nnz), "seed": seed,
              "memory": memory, "structured": structured},
    )
