"""Quicksort (paper, Section V).

Two parallel versions, as in the paper:

* **shared-memory**: works on arrays; after each pivot step a new task is
  spawned to handle one of the sub-arrays, the other is handled inline.
  The theoretical maximum speedup is ``log2(n)/2`` for balanced arrays of
  ``n`` elements (the first, serial partition pass dominates the critical
  path) — about 8.3 for the paper's 100 000-element arrays.

* **distributed-memory**: an adaptation to lists, avoiding the transfer of
  whole sub-arrays to remote nodes.  Pivot steps are distributed and
  gradually construct a binary search tree; browsing the list in order is
  then tantamount to traversing the constructed tree.  Element chunks are
  cells fetched once per pivot step, so data movement stays low and the
  distributed results track the shared-memory ones (Fig. 9).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import WorkloadRun, spread_home
from .generators import params_for, random_array
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Per-element partition work: load, compare (cond branch), possible swap.
PARTITION_ELEM = Block(
    "qsort-partition-elem",
    instr_counts={InstrClass.INT_ALU: 3, InstrClass.LOAD: 1, InstrClass.STORE: 0.5},
    cond_branches=1,
)
#: Per-element insertion-sort work for small base cases.
INSERTION_ELEM = Block(
    "qsort-insertion-elem",
    instr_counts={InstrClass.INT_ALU: 4, InstrClass.LOAD: 2, InstrClass.STORE: 1},
    cond_branches=2,
)
#: Fixed overhead of a pivot step (pivot selection, bookkeeping).
PIVOT_SETUP = Block(
    "qsort-pivot-setup",
    instr_counts={InstrClass.INT_ALU: 12, InstrClass.LOAD: 3, InstrClass.STORE: 2},
    cond_branches=2,
    static_exits=1,
)

#: Below this segment length the task sorts inline (task granularity knob).
BASE_CASE = 32
#: Elements per chunk cell in the distributed list version.
CHUNK = 32


def _partition(arr: List[int], lo: int, hi: int) -> int:
    """Hoare partition of arr[lo:hi); returns split point p.

    Guarantees lo < p < hi, so both sub-ranges [lo, p) and [p, hi) are
    strictly smaller than the input (median-of-ends pivot moved to lo).
    """
    mid = (lo + hi - 1) // 2
    if arr[mid] < arr[lo]:
        arr[mid], arr[lo] = arr[lo], arr[mid]
    pivot = arr[lo]
    i, j = lo - 1, hi
    while True:
        i += 1
        while arr[i] < pivot:
            i += 1
        j -= 1
        while arr[j] > pivot:
            j -= 1
        if i >= j:
            return j + 1
        arr[i], arr[j] = arr[j], arr[i]


def _seg_obj(arr_id: int, lo: int) -> tuple:
    """Coherence/placement object for an array segment (64-element grain).

    Keys must be stable across runs (NUMA home placement hashes them), so
    the array is identified by a run-stable label, not id().
    """
    return ("qsort", arr_id, lo // 64)


def sort_task(ctx, arr: List[int], lo: int, hi: int, group: TaskGroup):
    """Sort arr[lo:hi) in place, spawning one half after each pivot step."""
    n = hi - lo
    if n <= 1:
        return
    arr_id = 0  # one array per workload instance; stable across runs
    if n <= BASE_CASE:
        yield ctx.compute(block=INSERTION_ELEM, repeat=n * max(1, n // 4))
        yield ctx.mem(reads=2 * n, writes=n, obj=_seg_obj(arr_id, lo),
                      l1_hit_fraction=0.8)
        arr[lo:hi] = sorted(arr[lo:hi])
        return
    yield ctx.compute(block=PIVOT_SETUP)
    yield ctx.compute(block=PARTITION_ELEM, repeat=n)
    yield ctx.mem(reads=n, writes=n // 2, obj=_seg_obj(arr_id, lo),
                  l1_hit_fraction=0.5)
    mid = _partition(arr, lo, hi)
    # Spawn the smaller side; recurse inline on the larger one.
    if mid - lo <= hi - mid:
        small = (lo, mid)
        large = (mid, hi)
    else:
        small = (mid, hi)
        large = (lo, mid)
    yield from ctx.spawn_or_inline(sort_task, arr, small[0], small[1], group,
                                   group=group)
    yield from sort_task(ctx, arr, large[0], large[1], group)


def make_shared(scale: str = "small", seed: int = 0, n: Optional[int] = None,
                **_ignored) -> WorkloadRun:
    """Shared-memory Quicksort workload instance."""
    n = n if n is not None else params_for("quicksort", scale)["n"]
    data = random_array(n, seed=seed)

    def root(ctx):
        arr = list(data)
        group = TaskGroup("qsort")
        yield from sort_task(ctx, arr, 0, len(arr), group)
        yield ctx.join(group)
        done = yield ctx.now()
        return {"output": arr, "work_vtime": done}

    expected = sorted(data)

    def verify(result):
        assert result == expected, "quicksort output is not sorted"

    def native():
        arr = list(data)
        _native_quicksort(arr, 0, len(arr))
        return arr

    return WorkloadRun(
        name="quicksort",
        root=root,
        verify=verify,
        native=native,
        meta={"n": n, "seed": seed, "version": "shared"},
    )


def _native_quicksort(arr: List[int], lo: int, hi: int) -> None:
    """Host-native equivalent computation (Fig. 7 denominator)."""
    while hi - lo > 1:
        if hi - lo <= BASE_CASE:
            arr[lo:hi] = sorted(arr[lo:hi])
            return
        mid = _partition(arr, lo, hi)
        if mid - lo < hi - mid:
            _native_quicksort(arr, lo, mid)
            lo = mid
        else:
            _native_quicksort(arr, mid, hi)
            hi = mid


# -- distributed list version ---------------------------------------------


_bst_counter = [0]


class BstNode:
    """A node of the gradually constructed binary search tree."""

    __slots__ = ("nid", "pivot", "left", "right", "values")

    def __init__(self, pivot: Optional[int] = None):
        self.nid = _bst_counter[0]
        _bst_counter[0] += 1
        self.pivot = pivot
        self.left: Optional["BstNode"] = None
        self.right: Optional["BstNode"] = None
        self.values: Optional[List[int]] = None  # leaves only


def _chunks(values: List[int]) -> List[List[int]]:
    return [values[i:i + CHUNK] for i in range(0, len(values), CHUNK)]


def dist_sort_task(ctx, space, chunk_handles, node: BstNode, group: TaskGroup):
    """Distributed pivot step over a list of chunk cells.

    Fetches each chunk (ownership moves here), partitions its values around
    the pivot, creates fresh local chunk cells for both sides, and spawns a
    task for one side.
    """
    values: List[int] = []
    for handle in chunk_handles:
        chunk = yield from space.read(ctx, handle)
        yield ctx.compute(block=PARTITION_ELEM, repeat=len(chunk))
        values.extend(chunk)
    n = len(values)
    if n <= BASE_CASE:
        yield ctx.compute(block=INSERTION_ELEM, repeat=n * max(1, n // 4))
        node.values = sorted(values)
        node.pivot = None
        return
    yield ctx.compute(block=PIVOT_SETUP)
    pivot = values[n // 2]
    left = [v for v in values if v < pivot]
    right = [v for v in values if v > pivot]
    equal = [v for v in values if v == pivot]
    node.pivot = pivot
    node.values = equal
    node.left = BstNode()
    node.right = BstNode()
    home = ctx.core_id
    left_handles = [
        space.new(ctx, ("qsl", node.nid, i), c, size=8.0 * len(c), home=home)
        for i, c in enumerate(_chunks(left))
    ]
    right_handles = [
        space.new(ctx, ("qsr", node.nid, i), c, size=8.0 * len(c), home=home)
        for i, c in enumerate(_chunks(right))
    ]
    yield ctx.mem(writes=n, l1_hit_fraction=0.5)
    if left:
        yield from ctx.spawn_or_inline(
            dist_sort_task, space, left_handles, node.left, group, group=group
        )
    if right:
        yield from ctx.spawn_or_inline(
            dist_sort_task, space, right_handles, node.right, group, group=group
        )


def _traverse(node: Optional[BstNode], out: List[int]) -> None:
    if node is None:
        return
    _traverse(node.left, out)
    if node.values:
        out.extend(node.values)
    _traverse(node.right, out)


def make_distributed(scale: str = "small", seed: int = 0,
                     n: Optional[int] = None, **_ignored) -> WorkloadRun:
    """Distributed-memory (list/BST) Quicksort workload instance."""
    from .base import DistSpace

    n = n if n is not None else params_for("quicksort", scale)["n"]
    data = random_array(n, seed=seed)

    def root(ctx):
        space = DistSpace()
        n_cores = ctx.n_cores
        handles = [
            space.new(ctx, ("qs0", i), chunk, size=8.0 * len(chunk),
                      home=spread_home(i, n_cores))
            for i, chunk in enumerate(_chunks(data))
        ]
        tree = BstNode()
        group = TaskGroup("qsort-dist")
        yield from dist_sort_task(ctx, space, handles, tree, group)
        yield ctx.join(group)
        done = yield ctx.now()
        out: List[int] = []
        _traverse(tree, out)
        return {"output": out, "work_vtime": done}

    expected = sorted(data)

    def verify(result):
        assert result == expected, "distributed quicksort output is not sorted"

    def native():
        tree = BstNode()
        _native_dist_sort(list(data), tree)
        out: List[int] = []
        _traverse(tree, out)
        return out

    return WorkloadRun(
        name="quicksort",
        root=root,
        verify=verify,
        native=native,
        meta={"n": n, "seed": seed, "version": "distributed"},
    )


def _native_dist_sort(values: List[int], node: BstNode) -> None:
    n = len(values)
    if n <= BASE_CASE:
        node.values = sorted(values)
        return
    pivot = values[n // 2]
    node.pivot = pivot
    node.values = [v for v in values if v == pivot]
    node.left = BstNode()
    node.right = BstNode()
    _native_dist_sort([v for v in values if v < pivot], node.left)
    _native_dist_sort([v for v in values if v > pivot], node.right)
