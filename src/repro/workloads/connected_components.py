"""Connected Components (paper, Section V).

Since the graph topology is not known in advance, depth-first searches are
launched from lots of nodes in parallel.  Tags (component labels) live in
shared records (or cells on distributed memory); nodes belonging to the
same component get tagged repeatedly by competing searches, producing the
contention that makes this benchmark's scalability peak early and collapse
on the distributed-memory architecture (Figs. 8-9).

Labels are minimum-propagated: every node ends up tagged with the smallest
start-node id of its component, which an independent union-find reference
verifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import DataSpace, WorkloadRun, make_space, spread_home
from .generators import adjacency_lists, params_for, random_graph
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Work per visited node: tag comparison and neighbour iteration setup.
VISIT_NODE = Block(
    "cc-visit",
    instr_counts={InstrClass.INT_ALU: 6, InstrClass.LOAD: 2, InstrClass.STORE: 1},
    cond_branches=2,
)
#: Work per scanned edge.
SCAN_EDGE = Block(
    "cc-edge",
    instr_counts={InstrClass.INT_ALU: 2, InstrClass.LOAD: 1},
    cond_branches=1,
)

#: A DFS task hands off half its frontier when it exceeds this size.
FRONTIER_SPLIT = 8
#: Number of parallel search seeds as a fraction of the node count.
SEED_FRACTION = 8  # one seed every SEED_FRACTION nodes


def dfs_task(ctx, space: DataSpace, adj: List[List[int]], tags, stack: List[int],
             label: int, group: TaskGroup):
    """Depth-first tagging with min-label propagation and frontier splits."""
    while stack:
        node = stack.pop()
        yield ctx.compute(block=VISIT_NODE)
        # Atomic min-tag: separate read/write actions would race between
        # interleaved searches and overwrite a smaller label.
        improved = [False]

        def tag_min(current, _label=label, _flag=improved):
            if current is None or _label < current:
                _flag[0] = True
                return _label
            return current

        yield from space.update(ctx, tags[node], tag_min)
        if not improved[0]:
            continue  # already tagged by an equal or better search
        neighbors = adj[node]
        if neighbors:
            yield ctx.compute(block=SCAN_EDGE, repeat=len(neighbors))
        stack.extend(neighbors)
        if len(stack) > FRONTIER_SPLIT:
            half = stack[len(stack) // 2:]
            del stack[len(stack) // 2:]
            spawned = yield ctx.try_spawn(
                dfs_task, space, adj, tags, half, label, group, group=group
            )
            if not spawned:
                stack.extend(half)


def _reference_components(nodes: int, edges) -> List[int]:
    """Union-find reference labelling (smallest member id per component)."""
    parent = list(range(nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        u, v = edge[0], edge[1]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return [find(x) for x in range(nodes)]


def make_workload(scale: str = "small", seed: int = 0, memory: str = "shared",
                  nodes: Optional[int] = None, edges: Optional[int] = None,
                  **_ignored) -> WorkloadRun:
    """Connected Components workload instance."""
    params = params_for("connected_components", scale)
    nodes = nodes if nodes is not None else params["nodes"]
    n_edges = edges if edges is not None else params["edges"]
    edge_list = random_graph(nodes, n_edges, seed=seed)
    adj = adjacency_lists(nodes, edge_list)
    space = make_space(memory)

    def root(ctx):
        n_cores = ctx.n_cores
        tags = [
            space.new(ctx, ("cc", v), None, size=16.0,
                      home=spread_home(v, n_cores))
            for v in range(nodes)
        ]
        group = TaskGroup("cc")
        # Depth-first searches launched from lots of nodes in parallel:
        # every node is a potential seed; already-tagged seeds die cheaply.
        for start in range(nodes):
            yield from ctx.spawn_or_inline(
                dfs_task, space, adj, tags, [start], start, group, group=group
            )
        yield ctx.join(group)
        done = yield ctx.now()
        out = []
        for v in range(nodes):
            out.append((yield from space.read(ctx, tags[v])))
        return {"output": out, "work_vtime": done}

    expected = _reference_components(nodes, edge_list)

    def verify(result):
        assert len(result) == nodes
        assert result == expected, "component labels disagree with union-find"

    def native():
        tags: List[Optional[int]] = [None] * nodes
        for start in range(nodes):
            if tags[start] is not None:
                continue
            stack = [start]
            while stack:
                node = stack.pop()
                if tags[node] is not None and tags[node] <= start:
                    continue
                tags[node] = start
                stack.extend(adj[node])
        return tags

    return WorkloadRun(
        name="connected_components",
        root=root,
        verify=verify,
        native=native,
        meta={"nodes": nodes, "edges": n_edges, "seed": seed, "memory": memory},
    )
