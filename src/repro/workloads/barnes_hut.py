"""Barnes-Hut N-body force computation (paper, Section V).

Only the scalability of the second phase — computing the force on each
body by traversing the space-partitioning tree from the root — is
reported, assuming the built tree has been broadcast to all cores before
the phase starts.  Each body's computation is independent; the resulting
communication patterns are highly irregular because different bodies
traverse different, overlapping parts of the tree.

Datasets follow the paper: 128- and 200-body sets.  Verification compares
accelerations against a sequential run of the identical tree algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .base import DataSpace, WorkloadRun, make_space, spread_home
from .generators import Body, params_for, random_bodies
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Opening test at an internal node (distance computation + MAC compare).
MAC_TEST = Block(
    "bh-mac",
    instr_counts={
        InstrClass.FP_ADD: 6, InstrClass.FP_MUL: 6, InstrClass.LOAD: 4,
        InstrClass.INT_ALU: 2,
    },
    cond_branches=1,
)
#: Body-body / body-cell interaction (force accumulation with sqrt/div).
INTERACTION = Block(
    "bh-interact",
    instr_counts={
        InstrClass.FP_ADD: 9, InstrClass.FP_MUL: 9, InstrClass.FP_DIV: 2,
        InstrClass.LOAD: 4, InstrClass.STORE: 3,
    },
)

#: Barnes-Hut opening angle.
THETA = 0.5
#: Bodies per leaf of the partitioning tree.
LEAF_CAP = 4
#: Force tasks handle body ranges; ranges split down to this size.
BODY_CHUNK = 4
EPS2 = 1e-4  # softening


@dataclass
class BHNode:
    """A node of the spatial octree (center of mass of its subtree)."""

    nid: int
    center: Tuple[float, float, float]
    half: float
    mass: float = 0.0
    com: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    bodies: List[int] = field(default_factory=list)  # leaves only
    children: List["BHNode"] = field(default_factory=list)


def build_tree(bodies: List[Body]) -> BHNode:
    """Build the Barnes-Hut octree (host-side; phase 1 is not simulated)."""
    counter = [0]

    def new_node(center, half) -> BHNode:
        node = BHNode(counter[0], center, half)
        counter[0] += 1
        return node

    root = new_node((0.5, 0.5, 0.5), 0.5)

    def insert(node: BHNode, idx: int, depth: int = 0) -> None:
        if not node.children and (len(node.bodies) < LEAF_CAP or depth > 24):
            node.bodies.append(idx)
            return
        if not node.children:
            old = node.bodies
            node.bodies = []
            for oct_id in range(8):
                dx = 0.5 if oct_id & 1 else -0.5
                dy = 0.5 if oct_id & 2 else -0.5
                dz = 0.5 if oct_id & 4 else -0.5
                h = node.half / 2
                node.children.append(new_node(
                    (node.center[0] + dx * h * 2 / 2,
                     node.center[1] + dy * h * 2 / 2,
                     node.center[2] + dz * h * 2 / 2),
                    h,
                ))
            for other in old:
                insert(node, other, depth)
        body = bodies[idx]
        oct_id = ((body.x >= node.center[0])
                  | ((body.y >= node.center[1]) << 1)
                  | ((body.z >= node.center[2]) << 2))
        insert(node.children[oct_id], idx, depth + 1)

    for idx in range(len(bodies)):
        insert(root, idx)

    def summarize(node: BHNode) -> Tuple[float, Tuple[float, float, float]]:
        if not node.children:
            mass = sum(bodies[i].mass for i in node.bodies)
            if mass > 0:
                com = (
                    sum(bodies[i].mass * bodies[i].x for i in node.bodies) / mass,
                    sum(bodies[i].mass * bodies[i].y for i in node.bodies) / mass,
                    sum(bodies[i].mass * bodies[i].z for i in node.bodies) / mass,
                )
            else:
                com = node.center
            node.mass, node.com = mass, com
            return mass, com
        total = 0.0
        acc = [0.0, 0.0, 0.0]
        for child in node.children:
            m, com = summarize(child)
            total += m
            acc[0] += m * com[0]
            acc[1] += m * com[1]
            acc[2] += m * com[2]
        if total > 0:
            node.com = (acc[0] / total, acc[1] / total, acc[2] / total)
        else:
            node.com = node.center
        node.mass = total
        return node.mass, node.com

    summarize(root)
    return root


def _pair_accel(px, py, pz, qx, qy, qz, qmass) -> Tuple[float, float, float]:
    dx, dy, dz = qx - px, qy - py, qz - pz
    r2 = dx * dx + dy * dy + dz * dz + EPS2
    inv = qmass / (r2 * math.sqrt(r2))
    return dx * inv, dy * inv, dz * inv


def _accel_on(bodies: List[Body], idx: int, node: BHNode,
              visits: Optional[List[int]] = None) -> Tuple[float, float, float]:
    """Sequential tree-walk acceleration on one body (reference + kernel)."""
    body = bodies[idx]
    ax = ay = az = 0.0
    stack = [node]
    while stack:
        cur = stack.pop()
        if visits is not None:
            visits[0] += 1
        if cur.mass == 0.0:
            continue
        if not cur.children:
            for other in cur.bodies:
                if other == idx:
                    continue
                o = bodies[other]
                gx, gy, gz = _pair_accel(body.x, body.y, body.z,
                                         o.x, o.y, o.z, o.mass)
                ax, ay, az = ax + gx, ay + gy, az + gz
                if visits is not None:
                    visits[1] += 1
            continue
        dx = cur.com[0] - body.x
        dy = cur.com[1] - body.y
        dz = cur.com[2] - body.z
        dist = math.sqrt(dx * dx + dy * dy + dz * dz) + 1e-12
        if (2 * cur.half) / dist < THETA:
            gx, gy, gz = _pair_accel(body.x, body.y, body.z,
                                     cur.com[0], cur.com[1], cur.com[2], cur.mass)
            ax, ay, az = ax + gx, ay + gy, az + gz
            if visits is not None:
                visits[1] += 1
        else:
            stack.extend(cur.children)
    return ax, ay, az


def force_task(ctx, space: DataSpace, bodies, tree_handles, root_node,
               accels, lo: int, hi: int, group: TaskGroup):
    """Compute accelerations for bodies[lo:hi), splitting recursively."""
    if hi - lo > BODY_CHUNK:
        mid = (lo + hi) // 2
        yield from ctx.spawn_or_inline(
            force_task, space, bodies, tree_handles, root_node, accels,
            mid, hi, group, group=group,
        )
        yield from force_task(ctx, space, bodies, tree_handles, root_node,
                              accels, lo, mid, group)
        return
    for idx in range(lo, hi):
        visits = [0, 0]  # nodes visited, interactions computed
        accel = _accel_on(bodies, idx, root_node, visits)
        # Timing: one tree-node record read + MAC test per visited node,
        # one interaction kernel per computed interaction.
        sample = tree_handles[idx % len(tree_handles)]
        for _ in range(min(visits[0], 4)):
            yield from space.read(ctx, sample)
        if visits[0] > 4:
            yield ctx.mem(reads=visits[0] - 4, obj=("bh-tree", idx % 16),
                          l1_hit_fraction=0.3)
        yield ctx.compute(block=MAC_TEST, repeat=visits[0])
        yield ctx.compute(block=INTERACTION, repeat=visits[1])
        yield ctx.mem(writes=1, obj=("bh-acc", idx))
        accels[idx] = accel


def _flatten(node: BHNode, out: List[BHNode]) -> None:
    out.append(node)
    for child in node.children:
        _flatten(child, out)


# -- phase 1 (extension): parallel tree build --------------------------------
#
# The paper reports only phase 2, assuming the built tree was broadcast.
# This extension simulates the build phase too, using the standard domain
# decomposition: the root pre-splits into octants, one build task per
# octant constructs its subtree independently (no shared state), and the
# center-of-mass summarization runs per subtree before a final combine.

#: Insertion work per (body, level) step: octant selection + pointer chase.
INSERT_STEP = Block(
    "bh-insert",
    instr_counts={InstrClass.FP_ADD: 3, InstrClass.INT_ALU: 6,
                  InstrClass.LOAD: 3, InstrClass.STORE: 1},
    cond_branches=3,
)
#: Center-of-mass accumulation per node.
SUMMARIZE_NODE = Block(
    "bh-summarize",
    instr_counts={InstrClass.FP_ADD: 9, InstrClass.FP_MUL: 6,
                  InstrClass.FP_DIV: 1, InstrClass.LOAD: 4,
                  InstrClass.STORE: 4},
)


def _presplit_root() -> BHNode:
    """A root whose eight octants exist up front (parallel decomposition)."""
    root = BHNode(-1, (0.5, 0.5, 0.5), 0.5)
    for oct_id in range(8):
        dx = 0.25 if oct_id & 1 else -0.25
        dy = 0.25 if oct_id & 2 else -0.25
        dz = 0.25 if oct_id & 4 else -0.25
        root.children.append(BHNode(
            -(oct_id + 2), (0.5 + dx, 0.5 + dy, 0.5 + dz), 0.25))
    return root


def _octant_of(root: BHNode, body: Body) -> int:
    return ((body.x >= root.center[0])
            | ((body.y >= root.center[1]) << 1)
            | ((body.z >= root.center[2]) << 2))


def _insert_into(node: BHNode, bodies: List[Body], idx: int,
                 depth: int = 0, steps: Optional[List[int]] = None) -> None:
    """Sequential insertion into a subtree (shared by build + reference)."""
    if steps is not None:
        steps[0] += 1
    if not node.children and (len(node.bodies) < LEAF_CAP or depth > 24):
        node.bodies.append(idx)
        return
    if not node.children:
        old = node.bodies
        node.bodies = []
        for oct_id in range(8):
            dx = 0.5 if oct_id & 1 else -0.5
            dy = 0.5 if oct_id & 2 else -0.5
            dz = 0.5 if oct_id & 4 else -0.5
            h = node.half / 2
            node.children.append(BHNode(
                -1,
                (node.center[0] + dx * h, node.center[1] + dy * h,
                 node.center[2] + dz * h),
                h,
            ))
        for other in old:
            _insert_subtree(node, bodies, other, depth, None)
    _insert_subtree(node, bodies, idx, depth, steps)


def _insert_subtree(node: BHNode, bodies: List[Body], idx: int,
                    depth: int, steps: Optional[List[int]]) -> None:
    body = bodies[idx]
    oct_id = ((body.x >= node.center[0])
              | ((body.y >= node.center[1]) << 1)
              | ((body.z >= node.center[2]) << 2))
    _insert_into(node.children[oct_id], bodies, idx, depth + 1, steps)


def _summarize(node: BHNode, bodies: List[Body],
               count: Optional[List[int]] = None) -> None:
    """Bottom-up center-of-mass computation (reference + kernel)."""
    if count is not None:
        count[0] += 1
    if not node.children:
        mass = sum(bodies[i].mass for i in node.bodies)
        if mass > 0:
            node.com = (
                sum(bodies[i].mass * bodies[i].x for i in node.bodies) / mass,
                sum(bodies[i].mass * bodies[i].y for i in node.bodies) / mass,
                sum(bodies[i].mass * bodies[i].z for i in node.bodies) / mass,
            )
        else:
            node.com = node.center
        node.mass = mass
        return
    total = 0.0
    acc = [0.0, 0.0, 0.0]
    for child in node.children:
        _summarize(child, bodies, count)
        total += child.mass
        acc[0] += child.mass * child.com[0]
        acc[1] += child.mass * child.com[1]
        acc[2] += child.mass * child.com[2]
    node.mass = total
    node.com = ((acc[0] / total, acc[1] / total, acc[2] / total)
                if total > 0 else node.center)


def build_task(ctx, bodies: List[Body], root_node: BHNode, oct_id: int,
               indices: List[int], group: TaskGroup):
    """Build one octant's subtree and summarize it (phase 1 worker)."""
    subtree = root_node.children[oct_id]
    steps = [0]
    for idx in indices:
        _insert_into(subtree, bodies, idx, depth=1, steps=steps)
    yield ctx.compute(block=INSERT_STEP, repeat=steps[0])
    yield ctx.mem(reads=2 * steps[0], writes=steps[0],
                  obj=("bh-build", oct_id), l1_hit_fraction=0.4)
    nodes = [0]
    _summarize(subtree, bodies, nodes)
    yield ctx.compute(block=SUMMARIZE_NODE, repeat=nodes[0])
    yield ctx.mem(reads=nodes[0], writes=nodes[0],
                  obj=("bh-build", oct_id), l1_hit_fraction=0.6)


def parallel_build_root(bodies: List[Body]):
    """Root task for the simulated phase-1 build; returns the tree."""

    def root(ctx):
        tree = _presplit_root()
        octants: List[List[int]] = [[] for _ in range(8)]
        yield ctx.compute(block=INSERT_STEP, repeat=len(bodies))
        for idx in range(len(bodies)):
            octants[_octant_of(tree, bodies[idx])].append(idx)
        group = TaskGroup("bh-build")
        for oct_id in range(8):
            if octants[oct_id]:
                yield from ctx.spawn_or_inline(
                    build_task, bodies, tree, oct_id, octants[oct_id],
                    group, group=group,
                )
            else:
                # Empty octants need no task; their summary is trivial.
                child = tree.children[oct_id]
                child.mass = 0.0
                child.com = child.center
        yield ctx.join(group)
        # Final combine at the root (eight children).
        yield ctx.compute(block=SUMMARIZE_NODE)
        total = sum(c.mass for c in tree.children)
        acc = [0.0, 0.0, 0.0]
        for child in tree.children:
            acc[0] += child.mass * child.com[0]
            acc[1] += child.mass * child.com[1]
            acc[2] += child.mass * child.com[2]
        tree.mass = total
        tree.com = ((acc[0] / total, acc[1] / total, acc[2] / total)
                    if total > 0 else tree.center)
        done = yield ctx.now()
        return {"output": tree, "work_vtime": done}

    return root


def reference_parallel_tree(bodies: List[Body]) -> BHNode:
    """Host-side build with the identical pre-split algorithm."""
    tree = _presplit_root()
    for idx in range(len(bodies)):
        oct_id = _octant_of(tree, bodies[idx])
        _insert_into(tree.children[oct_id], bodies, idx, depth=1)
    _summarize(tree, bodies)
    return tree


def make_workload(scale: str = "small", seed: int = 0, memory: str = "shared",
                  bodies: Optional[int] = None, **_ignored) -> WorkloadRun:
    """Barnes-Hut (force phase) workload instance."""
    n_bodies = bodies if bodies is not None else params_for("barnes_hut", scale)["bodies"]
    body_list = random_bodies(n_bodies, seed=seed)
    tree = build_tree(body_list)
    nodes: List[BHNode] = []
    _flatten(tree, nodes)
    space = make_space(memory)

    def root(ctx):
        n_cores = ctx.n_cores
        # The tree was broadcast before the phase; on distributed memory the
        # upper nodes are cells that force tasks keep pulling around.
        handles = [
            space.new(ctx, ("bh-node", node.nid), node, size=64.0,
                      home=spread_home(node.nid, n_cores))
            for node in nodes[: max(16, len(nodes) // 4)]
        ]
        accels: List = [None] * n_bodies
        group = TaskGroup("bh")
        yield from force_task(ctx, space, body_list, handles, tree, accels,
                              0, n_bodies, group)
        yield ctx.join(group)
        done = yield ctx.now()
        return {"output": accels, "work_vtime": done}

    expected = [_accel_on(body_list, i, tree) for i in range(n_bodies)]

    def verify(result):
        assert len(result) == n_bodies
        for got, want in zip(result, expected):
            assert got is not None, "missing acceleration"
            for g, w in zip(got, want):
                assert abs(g - w) <= 1e-9 * max(1.0, abs(w)), "acceleration mismatch"

    def native():
        return [_accel_on(body_list, i, tree) for i in range(n_bodies)]

    return WorkloadRun(
        name="barnes_hut",
        root=root,
        verify=verify,
        native=native,
        meta={"bodies": n_bodies, "seed": seed, "memory": memory,
              "tree_nodes": len(nodes)},
    )
