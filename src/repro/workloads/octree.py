"""Octree update (paper, Section V).

A tree-traversal benchmark that updates all objects within an octree
structure, as typically used in gaming or graphics generation.  The paper
runs 50 randomly generated octrees of depth 6.

Each task updates its node's objects and spawns one task per child
subtree; subtrees are disjoint, so there are no data dependencies between
tasks — making Octree (with Quicksort and SpMxV) representative of the
simulator's intrinsic behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import DataSpace, WorkloadRun, make_space, spread_home
from .generators import OctreeNode, octree_size, params_for, random_octree
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Per-object update work (transform computation).
UPDATE_OBJECT = Block(
    "octree-update",
    instr_counts={
        InstrClass.FP_MUL: 4, InstrClass.FP_ADD: 4,
        InstrClass.LOAD: 2, InstrClass.STORE: 2,
    },
)
#: Per-node traversal overhead.
VISIT_NODE = Block(
    "octree-visit",
    instr_counts={InstrClass.INT_ALU: 5, InstrClass.LOAD: 2},
    cond_branches=1,
    static_exits=1,
)

#: The update applied to every object (must match _native_update).
SCALE = 1.25
OFFSET = 0.5


def update_task(ctx, space: DataSpace, handles: Dict[int, object],
                node: OctreeNode, group: TaskGroup):
    """Update one node's objects, then spawn per-child subtree tasks."""
    yield ctx.compute(block=VISIT_NODE)
    handle = handles[node.nid]
    record = yield from space.read(ctx, handle)
    yield ctx.compute(block=UPDATE_OBJECT, repeat=len(node.objects))
    node.objects[:] = [SCALE * obj + OFFSET for obj in node.objects]
    yield from space.write(ctx, handle, record)
    for child in node.children:
        yield from ctx.spawn_or_inline(
            update_task, space, handles, child, group, group=group
        )


def _collect(node: OctreeNode, out: List[float]) -> None:
    out.extend(node.objects)
    for child in node.children:
        _collect(child, out)


def _assign_handles(space: DataSpace, ctx, node: OctreeNode, n_cores: int,
                    handles: Dict[int, object]) -> None:
    handles[node.nid] = space.new(
        ctx, ("oct", node.nid), node.nid, size=32.0,
        home=spread_home(node.nid, n_cores),
    )
    for child in node.children:
        _assign_handles(space, ctx, child, n_cores, handles)


def make_workload(scale: str = "small", seed: int = 0, memory: str = "shared",
                  depth: Optional[int] = None, **_ignored) -> WorkloadRun:
    """Octree update workload instance."""
    params = params_for("octree", scale)
    depth = depth if depth is not None else params["depth"]
    objects_per_leaf = params["objects_per_leaf"]

    def fresh_tree() -> OctreeNode:
        return random_octree(depth, objects_per_leaf=objects_per_leaf, seed=seed)

    tree = fresh_tree()
    space = make_space(memory)

    def root(ctx):
        handles: Dict[int, object] = {}
        _assign_handles(space, ctx, tree, ctx.n_cores, handles)
        group = TaskGroup("octree")
        yield from ctx.spawn_or_inline(
            update_task, space, handles, tree, group, group=group
        )
        yield ctx.join(group)
        done = yield ctx.now()
        out: List[float] = []
        _collect(tree, out)
        return {"output": out, "work_vtime": done}

    reference_tree = fresh_tree()
    _native_update(reference_tree)
    expected: List[float] = []
    _collect(reference_tree, expected)

    def verify(result):
        assert len(result) == len(expected)
        for got, want in zip(result, expected):
            assert abs(got - want) < 1e-12, "octree object updated incorrectly"

    def native():
        t = fresh_tree()
        _native_update(t)
        out: List[float] = []
        _collect(t, out)
        return out

    return WorkloadRun(
        name="octree",
        root=root,
        verify=verify,
        native=native,
        meta={"depth": depth, "nodes": octree_size(tree), "seed": seed,
              "memory": memory},
    )


def _native_update(node: OctreeNode) -> None:
    node.objects[:] = [SCALE * obj + OFFSET for obj in node.objects]
    for child in node.children:
        _native_update(child)
