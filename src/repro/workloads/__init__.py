"""Dwarf-like task-based benchmarks (paper, Section V).

Six benchmarks with dynamic control flow and irregular data structures:
Quicksort (shared-memory array and distributed list/BST versions),
Connected Components, Dijkstra, Barnes-Hut (force phase), SpMxV, Octree.

Use :func:`get_workload` to build an instance:

    run = get_workload("dijkstra", scale="small", seed=0, memory="shared")
    machine = build_machine(shared_mesh(64))
    result = machine.run(run.root)
    run.verify(result["output"])
"""

from __future__ import annotations

from typing import Callable, Dict

from . import barnes_hut, connected_components, dijkstra, octree, quicksort, spmxv
from .base import (
    DataSpace,
    DistSpace,
    SharedSpace,
    WorkloadRun,
    make_space,
    spread_home,
)
from .generators import SCALE_PARAMS, params_for

#: The six dwarfs, in the paper's presentation order.
BENCHMARKS = (
    "barnes_hut",
    "connected_components",
    "dijkstra",
    "quicksort",
    "spmxv",
    "octree",
)

#: The subset used for cycle-level validation (Figs. 5-6).
VALIDATION_BENCHMARKS = (
    "barnes_hut",
    "connected_components",
    "quicksort",
    "spmxv",
)


def _make_quicksort(scale="small", seed=0, memory="shared", **kwargs):
    if memory == "distributed":
        return quicksort.make_distributed(scale=scale, seed=seed, **kwargs)
    return quicksort.make_shared(scale=scale, seed=seed, **kwargs)


_FACTORIES: Dict[str, Callable[..., WorkloadRun]] = {
    "quicksort": _make_quicksort,
    "connected_components": connected_components.make_workload,
    "dijkstra": dijkstra.make_workload,
    "barnes_hut": barnes_hut.make_workload,
    "spmxv": spmxv.make_workload,
    "octree": octree.make_workload,
}


def get_workload(name: str, scale: str = "small", seed: int = 0,
                 memory: str = "shared", **kwargs) -> WorkloadRun:
    """Build a benchmark instance by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(_FACTORIES)}"
        ) from exc
    return factory(scale=scale, seed=seed, memory=memory, **kwargs)


__all__ = [
    "BENCHMARKS",
    "DataSpace",
    "DistSpace",
    "SCALE_PARAMS",
    "SharedSpace",
    "VALIDATION_BENCHMARKS",
    "WorkloadRun",
    "get_workload",
    "make_space",
    "params_for",
    "spread_home",
]
