"""Dataset generators for the dwarf benchmarks (paper, Section V).

All generators are deterministic given their seed.  Default sizes are
scaled-down versions of the paper's datasets (50 arrays of 100 000
elements, graphs of 1000-2000 nodes, 10^6 x 10^6 sparse matrices); the
``paper`` scale reproduces the published sizes for users with patience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

#: Per-scale dataset parameters, one entry per benchmark family.
SCALE_PARAMS: Dict[str, Dict[str, Dict[str, int]]] = {
    "tiny": {
        "quicksort": {"n": 200},
        "connected_components": {"nodes": 60, "edges": 120},
        "dijkstra": {"nodes": 80, "edges": 140},
        "barnes_hut": {"bodies": 24},
        "spmxv": {"rows": 64, "nnz_per_row": 4},
        "octree": {"depth": 3, "objects_per_leaf": 2},
    },
    "small": {
        "quicksort": {"n": 1000},
        "connected_components": {"nodes": 150, "edges": 300},
        "dijkstra": {"nodes": 200, "edges": 320},
        "barnes_hut": {"bodies": 64},
        "spmxv": {"rows": 256, "nnz_per_row": 8},
        "octree": {"depth": 4, "objects_per_leaf": 2},
    },
    "medium": {
        "quicksort": {"n": 4000},
        "connected_components": {"nodes": 400, "edges": 800},
        "dijkstra": {"nodes": 500, "edges": 800},
        "barnes_hut": {"bodies": 128},
        "spmxv": {"rows": 1024, "nnz_per_row": 12},
        "octree": {"depth": 5, "objects_per_leaf": 2},
    },
    "paper": {
        "quicksort": {"n": 100_000},
        "connected_components": {"nodes": 1000, "edges": 2000},
        "dijkstra": {"nodes": 2000, "edges": 3000},
        "barnes_hut": {"bodies": 200},
        "spmxv": {"rows": 1_000_000, "nnz_per_row": 50},
        "octree": {"depth": 6, "objects_per_leaf": 2},
    },
}


def params_for(benchmark: str, scale: str) -> Dict[str, int]:
    """Dataset parameters of one benchmark at one scale."""
    try:
        return dict(SCALE_PARAMS[scale][benchmark])
    except KeyError as exc:
        raise ValueError(f"unknown scale/benchmark: {scale}/{benchmark}") from exc


def random_array(n: int, seed: int = 0) -> List[int]:
    """A random integer array for Quicksort."""
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.integers(0, 10 * max(n, 1), size=n)]


def random_graph(
    nodes: int, edges: int, seed: int = 0, weighted: bool = False
) -> List[Tuple]:
    """A random (multi-)graph as an edge list; may be disconnected.

    Matches the paper's Connected Components datasets (1000 nodes / 2000
    edges) and Dijkstra datasets (2000 nodes / ~3000 edges, weighted).
    """
    rng = np.random.default_rng(seed)
    us = rng.integers(0, nodes, size=edges)
    vs = rng.integers(0, nodes, size=edges)
    if weighted:
        ws = rng.integers(1, 100, size=edges)
        return [(int(u), int(v), int(w)) for u, v, w in zip(us, vs, ws) if u != v]
    return [(int(u), int(v)) for u, v in zip(us, vs) if u != v]


def adjacency_lists(nodes: int, edges: List[Tuple]) -> List[List]:
    """Undirected adjacency lists from an edge list."""
    adj: List[List] = [[] for _ in range(nodes)]
    for edge in edges:
        if len(edge) == 3:
            u, v, w = edge
            adj[u].append((v, w))
            adj[v].append((u, w))
        else:
            u, v = edge
            adj[u].append(v)
            adj[v].append(u)
    return adj


@dataclass
class Body:
    """A point mass for Barnes-Hut."""

    x: float
    y: float
    z: float
    mass: float


def random_bodies(n: int, seed: int = 0) -> List[Body]:
    """Random bodies in the unit cube (paper: 128- and 200-body sets)."""
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    mass = rng.random(n) + 0.1
    return [Body(float(p[0]), float(p[1]), float(p[2]), float(m))
            for p, m in zip(pos, mass)]


def random_sparse_matrix(
    rows: int, nnz_per_row: int, seed: int = 0
) -> sp.csr_matrix:
    """A random square CSR matrix with ~nnz_per_row entries per row."""
    rng = np.random.default_rng(seed)
    nnz = rows * nnz_per_row
    data = rng.random(nnz) + 0.01
    row_idx = np.repeat(np.arange(rows), nnz_per_row)
    col_idx = rng.integers(0, rows, size=nnz)
    mat = sp.csr_matrix((data, (row_idx, col_idx)), shape=(rows, rows))
    mat.sum_duplicates()
    return mat


def structured_sparse_matrix(
    rows: int, bandwidth: int = 5, seed: int = 0
) -> sp.csr_matrix:
    """A banded matrix standing in for the Matrix Market collection entries."""
    rng = np.random.default_rng(seed)
    diags = []
    offsets = []
    for k in range(-bandwidth, bandwidth + 1):
        diags.append(rng.random(rows - abs(k)) + 0.01)
        offsets.append(k)
    return sp.diags(diags, offsets, shape=(rows, rows), format="csr")


@dataclass
class OctreeNode:
    """One node of the Octree benchmark's spatial tree."""

    nid: int
    depth: int
    children: List["OctreeNode"]
    objects: List[float]


def random_octree(
    depth: int, objects_per_leaf: int = 2, branching: int = 8,
    fill: float = 0.6, seed: int = 0,
) -> OctreeNode:
    """A randomly pruned octree of the given depth (paper: depth 6).

    ``fill`` is the probability that a child subtree exists, keeping the
    tree irregular like real spatial octrees.
    """
    rng = np.random.default_rng(seed)
    counter = [0]

    def build(level: int) -> OctreeNode:
        nid = counter[0]
        counter[0] += 1
        objects = [float(x) for x in rng.random(objects_per_leaf)]
        children = []
        if level < depth:
            for _ in range(branching):
                if rng.random() < fill:
                    children.append(build(level + 1))
        return OctreeNode(nid, level, children, objects)

    root = build(0)
    # Guarantee the root is not degenerate.
    if not root.children and depth > 0:
        root.children.append(build(1))
    return root


def octree_size(node: OctreeNode) -> int:
    """Number of nodes in an octree."""
    return 1 + sum(octree_size(child) for child in node.children)
