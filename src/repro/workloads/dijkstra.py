"""Parallel single-source shortest paths (paper, Section V).

A label-correcting parallelization of Dijkstra's algorithm in the style of
Capsule [29]: tasks carry tentative distances along paths; a task reaching a
node with a distance no better than the stored one terminates quickly,
freeing its core for more interesting paths.  Already-explored paths may
have to be explored again when reached with a lower distance.

More cores mean more concurrently explored paths, raising the probability
of tagging nodes with near-optimal distances early — which prunes the
search and produces the paper's super-linear speedups on the optimistic
shared-memory architecture (up to 4282x in the paper).  On distributed
memory, the per-node distance cells ping-pong between explorers and
performance collapses (Fig. 9).

Verification compares against networkx's Dijkstra.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import networkx as nx

from .base import DataSpace, WorkloadRun, make_space, spread_home
from .generators import adjacency_lists, params_for, random_graph
from ..core.task import TaskGroup
from ..timing.annotator import Block
from ..timing.isa import InstrClass

#: Work per relaxed node (distance compare + update bookkeeping).
RELAX_NODE = Block(
    "sssp-relax",
    instr_counts={InstrClass.INT_ALU: 8, InstrClass.LOAD: 2, InstrClass.STORE: 1},
    cond_branches=2,
)
#: Work per scanned outgoing edge.
SCAN_EDGE = Block(
    "sssp-edge",
    instr_counts={InstrClass.INT_ALU: 3, InstrClass.LOAD: 1},
    cond_branches=1,
)

#: A task hands off half its frontier when it grows beyond this.
FRONTIER_SPLIT = 6

SOURCE = 0


def explore_task(ctx, space: DataSpace, adj, dists, frontier: List[Tuple[int, int]],
                 group: TaskGroup):
    """Explore (node, tentative-distance) pairs, re-exploring improvements."""
    while frontier:
        node, dist = frontier.pop()
        yield ctx.compute(block=RELAX_NODE)
        # Atomic relax: separate read/write actions would race between
        # interleaved tasks and overwrite a better distance.
        improved = [False]

        def relax(current, _d=dist, _flag=improved):
            if current is None or _d < current:
                _flag[0] = True
                return _d
            return current

        yield from space.update(ctx, dists[node], relax)
        if not improved[0]:
            continue  # a better path already reached this node
        edges = adj[node]
        if edges:
            yield ctx.compute(block=SCAN_EDGE, repeat=len(edges))
        for nbr, weight in edges:
            frontier.append((nbr, dist + weight))
        if len(frontier) > FRONTIER_SPLIT:
            half = frontier[len(frontier) // 2:]
            del frontier[len(frontier) // 2:]
            spawned = yield ctx.try_spawn(
                explore_task, space, adj, dists, half, group, group=group
            )
            if not spawned:
                frontier.extend(half)


def _reference(nodes: int, edge_list) -> List[float]:
    """networkx reference distances from SOURCE (inf when unreachable)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(nodes))
    for u, v, w in edge_list:
        # Keep the lightest parallel edge, like adjacency_lists traversal.
        if graph.has_edge(u, v):
            if w < graph[u][v]["weight"]:
                graph[u][v]["weight"] = w
        else:
            graph.add_edge(u, v, weight=w)
    lengths = nx.single_source_dijkstra_path_length(graph, SOURCE)
    return [lengths.get(v, math.inf) for v in range(nodes)]


def make_workload(scale: str = "small", seed: int = 0, memory: str = "shared",
                  nodes: Optional[int] = None, edges: Optional[int] = None,
                  **_ignored) -> WorkloadRun:
    """Dijkstra workload instance."""
    params = params_for("dijkstra", scale)
    nodes = nodes if nodes is not None else params["nodes"]
    n_edges = edges if edges is not None else params["edges"]
    edge_list = random_graph(nodes, n_edges, seed=seed, weighted=True)
    adj = adjacency_lists(nodes, edge_list)
    space = make_space(memory)

    def root(ctx):
        n_cores = ctx.n_cores
        dists = [
            space.new(ctx, ("sssp", v), None, size=16.0,
                      home=spread_home(v, n_cores))
            for v in range(nodes)
        ]
        group = TaskGroup("sssp")
        yield from ctx.spawn_or_inline(
            explore_task, space, adj, dists, [(SOURCE, 0)], group, group=group
        )
        yield ctx.join(group)
        done = yield ctx.now()
        out = []
        for v in range(nodes):
            d = yield from space.read(ctx, dists[v])
            out.append(math.inf if d is None else d)
        return {"output": out, "work_vtime": done}

    expected = _reference(nodes, edge_list)

    def verify(result):
        assert len(result) == nodes
        for v, (got, want) in enumerate(zip(result, expected)):
            assert got == want, f"distance mismatch at node {v}: {got} != {want}"

    def native():
        dists: List[Optional[int]] = [None] * nodes
        stack = [(SOURCE, 0)]
        while stack:
            node, dist = stack.pop()
            if dists[node] is not None and dists[node] <= dist:
                continue
            dists[node] = dist
            for nbr, weight in adj[node]:
                stack.append((nbr, dist + weight))
        return [math.inf if d is None else d for d in dists]

    return WorkloadRun(
        name="dijkstra",
        root=root,
        verify=verify,
        native=native,
        meta={"nodes": nodes, "edges": n_edges, "seed": seed, "memory": memory},
    )
