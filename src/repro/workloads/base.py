"""Workload infrastructure.

The paper's benchmarks are written once against the run-time API and run on
both shared-memory and distributed-memory architecture types (Section V).
We achieve the same with a small data-access layer: a :class:`DataSpace`
maps logical records to either plain shared-memory objects (timed as bank
accesses with coherence effects) or distributed cells (timed as local L2
hits or DATA_REQUEST round trips), so each benchmark's task code is
memory-organization agnostic.

Every workload provides a :class:`WorkloadRun`: a root task function, a
verifier that checks the *program output* against an independent reference
(sorting really sorts, shortest paths match networkx, ...), and a native
closure that performs the equivalent computation without simulation — the
denominator of the paper's normalized simulation time (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from ..core.task import TaskContext

#: Scale presets: dataset sizes for quick tests, benchmark runs, and the
#: paper's full sizes.
SCALES = ("tiny", "small", "medium", "paper")


class DataSpace:
    """Abstract record store; subclasses time accesses differently."""

    kind = "abstract"

    def new(self, ctx: Optional[TaskContext], key: Any, data: Any,
            size: float = 64.0, home: int = 0):
        """Create a record; returns an opaque handle."""
        raise NotImplementedError

    def read(self, ctx: TaskContext, handle) -> Iterator:
        """Yieldable sub-generator; returns the record's data."""
        raise NotImplementedError

    def write(self, ctx: TaskContext, handle, data) -> Iterator:
        """Yieldable sub-generator; stores ``data`` in the record."""
        raise NotImplementedError

    def update(self, ctx: TaskContext, handle, fn: Callable) -> Iterator:
        """Atomic read-modify-write; returns the new data."""
        raise NotImplementedError


class _SharedRecord:
    __slots__ = ("key", "data", "size")

    def __init__(self, key, data, size):
        self.key = key
        self.data = data
        self.size = size


class SharedSpace(DataSpace):
    """Records live in uniform-latency shared banks (+ L1/coherence)."""

    kind = "shared"

    def new(self, ctx, key, data, size=64.0, home=0):
        return _SharedRecord(key, data, size)

    def read(self, ctx, handle):
        yield ctx.mem(reads=1, obj=handle.key)
        return handle.data

    def write(self, ctx, handle, data):
        handle.data = data
        yield ctx.mem(writes=1, obj=handle.key)

    def update(self, ctx, handle, fn):
        yield ctx.mem(reads=1, writes=1, obj=handle.key)
        handle.data = fn(handle.data)
        return handle.data


class DistSpace(DataSpace):
    """Records are run-time managed cells (exclusive, migrating)."""

    kind = "distributed"

    def new(self, ctx, key, data, size=64.0, home=0):
        if ctx is not None:
            machine = ctx.machine
        else:
            raise ValueError("DistSpace.new requires a task context")
        fence = machine.fence
        if fence is not None:
            # Shard mode: keep the cell's home in the creating core's
            # region so DATA traffic never crosses a shard boundary
            # (pure function of (home, creator) — identical placement on
            # the serial and sharded backends).
            home = fence.remap_home(home, ctx.core_id)
        return machine.memory.new_cell(data=data, size=size, home=home)

    def read(self, ctx, handle):
        cell = yield ctx.cell(handle, "r")
        return cell.data

    def write(self, ctx, handle, data):
        cell = yield ctx.cell(handle, "w")
        cell.data = data

    def update(self, ctx, handle, fn):
        cell = yield ctx.cell(handle, "rw")
        cell.data = fn(cell.data)
        return cell.data


def make_space(memory: str) -> DataSpace:
    """Data space matching an architecture's memory organization.

    NUMA machines use the shared-record flavour: records are plain objects
    whose accesses the NUMA memory model times by home-bank placement.
    """
    if memory in ("shared", "numa"):
        return SharedSpace()
    if memory == "distributed":
        return DistSpace()
    raise ValueError(f"unknown memory organization {memory!r}")


@dataclass
class WorkloadRun:
    """One runnable benchmark instance.

    Produced by :func:`repro.workloads.get_workload`; the triple of
    root task, output verifier and native reference is what lets the
    harness check program correctness and normalize simulation time
    (paper Fig. 7) for every benchmark uniformly.

    Example::

        from repro import build_machine, get_workload
        from repro.arch import shared_mesh

        w = get_workload("quicksort", scale="tiny", seed=0,
                         memory="shared")
        result = build_machine(shared_mesh(16)).run(w.root)
        w.verify(result["output"])      # raises if the sort is wrong
        assert result["output"] == w.native()
    """

    name: str
    root: Callable  # root(ctx) generator
    verify: Callable[[Any], None]  # raises AssertionError on bad output
    native: Callable[[], Any]  # unsimulated equivalent computation
    meta: Dict[str, Any] = field(default_factory=dict)


def spread_home(i: int, n_cores: int) -> int:
    """Deterministic round-robin home placement for distributed records."""
    return i % n_cores
