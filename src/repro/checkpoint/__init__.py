"""Versioned run snapshots with verified-replay restore.

Public surface of the checkpoint subsystem:

* codec + errors (``encode``/``decode``, content hashes, atomic files);
* machine-state capture and bit-exact verification;
* the :class:`Snapshot` container with save/load;
* run drivers (``run_checkpointed``, ``resume_run``, ``split_run``).

See ``docs/checkpoint.md`` for the correctness contract.
"""

from .codec import (CHECKPOINT_VERSION, CheckpointCorruptError,
                    CheckpointError, CheckpointMismatchError,
                    CheckpointVersionError, content_hash, decode, encode,
                    read_snapshot_file, write_snapshot_file)
from .runner import (restore_serial, resume_run, resume_serial,
                     resume_sharded, run_checkpointed,
                     run_serial_checkpointed, run_sharded_checkpointed,
                     run_straight, split_run)
from .snapshot import (Snapshot, load_snapshot, make_snapshot,
                       save_snapshot)
from .state import (capture_machine_state, state_hash,
                    verify_machine_state)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointVersionError",
    "Snapshot",
    "capture_machine_state",
    "content_hash",
    "decode",
    "encode",
    "load_snapshot",
    "make_snapshot",
    "read_snapshot_file",
    "restore_serial",
    "resume_run",
    "resume_serial",
    "resume_sharded",
    "run_checkpointed",
    "run_serial_checkpointed",
    "run_sharded_checkpointed",
    "run_straight",
    "save_snapshot",
    "split_run",
    "state_hash",
    "verify_machine_state",
    "write_snapshot_file",
]
