"""Canonical binary codec for checkpoint snapshots.

The snapshot contract is *bit-identity*: two captures of the same
simulation state must encode to the same bytes, and decoding must give
back exactly the value that was encoded — including every float bit
pattern (NaN payloads, signed zeros, infinities, subnormals).  JSON
cannot do this (it has one NaN spelling and decimal round-trips), so
snapshots use a small tagged binary encoding instead:

==========  ==================================================
tag         value
==========  ==================================================
``N``       None
``T``/``F`` True / False
``I``       int (decimal text, unbounded)
``D``       float, raw little-endian IEEE-754 bits
``S``       str (utf-8)
``B``       bytes
``L``/``U`` list / tuple, length-prefixed items
``M``       dict, items sorted by encoded key bytes
``A``       ``array.array``, typecode + raw buffer
==========  ==================================================

Dict items are sorted by their *encoded key bytes*, so encoding is
insensitive to insertion order (and well-defined for mixed key types);
container identity (list vs tuple) survives the round trip.

On disk a snapshot is ``magic | version | sha256(body) | len | body``
written atomically (temp file + ``os.replace``).  Readers verify the
magic, the version and the content hash before decoding; any mismatch
raises :class:`CheckpointCorruptError` / :class:`CheckpointVersionError`
rather than returning a silently wrong state.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from array import array
from typing import Any, List, Tuple

from ..core.errors import SimError

#: File magic for snapshot files.
MAGIC = b"RPSNAP"
#: Bump on any change to the encoding or the captured-state schema.
CHECKPOINT_VERSION = 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


class CheckpointError(SimError):
    """Base class for checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """The snapshot bytes fail the magic, hash or structural checks."""


class CheckpointVersionError(CheckpointError):
    """The snapshot was written by an incompatible codec version."""


class CheckpointMismatchError(CheckpointError):
    """Replayed state diverged from the captured state (determinism bug)."""


# -- encoding -----------------------------------------------------------------

def _encode_into(obj: Any, out: List[bytes]) -> None:
    if obj is None:
        out.append(b"N")
    elif obj is True:
        out.append(b"T")
    elif obj is False:
        out.append(b"F")
    elif isinstance(obj, int):
        text = str(obj).encode()
        out.append(b"I" + _U32.pack(len(text)) + text)
    elif isinstance(obj, float):
        out.append(b"D" + _F64.pack(obj))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(b"S" + _U32.pack(len(data)) + data)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(b"B" + _U32.pack(len(obj)) + bytes(obj))
    elif isinstance(obj, (list, tuple)):
        out.append((b"L" if isinstance(obj, list) else b"U")
                   + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        pairs = []
        for key, value in obj.items():
            kparts: List[bytes] = []
            _encode_into(key, kparts)
            vparts: List[bytes] = []
            _encode_into(value, vparts)
            pairs.append((b"".join(kparts), b"".join(vparts)))
        pairs.sort(key=lambda kv: kv[0])
        out.append(b"M" + _U32.pack(len(pairs)))
        for kbytes, vbytes in pairs:
            out.append(kbytes)
            out.append(vbytes)
    elif isinstance(obj, array):
        raw = obj.tobytes()
        out.append(b"A" + obj.typecode.encode("ascii")
                   + _U32.pack(len(raw)) + raw)
    else:
        raise CheckpointError(
            f"cannot encode {type(obj).__name__!r} into a snapshot; "
            "capture code must reduce state to plain containers first")


def encode(obj: Any) -> bytes:
    """Encode ``obj`` into canonical snapshot bytes."""
    out: List[bytes] = []
    _encode_into(obj, out)
    return b"".join(out)


# -- decoding -----------------------------------------------------------------

def _decode_at(data: bytes, pos: int) -> Tuple[Any, int]:
    try:
        tag = data[pos:pos + 1]
        if tag == b"N":
            return None, pos + 1
        if tag == b"T":
            return True, pos + 1
        if tag == b"F":
            return False, pos + 1
        if tag == b"I":
            (n,) = _U32.unpack_from(data, pos + 1)
            start = pos + 5
            return int(data[start:start + n].decode()), start + n
        if tag == b"D":
            (value,) = _F64.unpack_from(data, pos + 1)
            return value, pos + 9
        if tag == b"S":
            (n,) = _U32.unpack_from(data, pos + 1)
            start = pos + 5
            return data[start:start + n].decode("utf-8"), start + n
        if tag == b"B":
            (n,) = _U32.unpack_from(data, pos + 1)
            start = pos + 5
            if start + n > len(data):
                raise ValueError("truncated bytes")
            return data[start:start + n], start + n
        if tag in (b"L", b"U"):
            (n,) = _U32.unpack_from(data, pos + 1)
            pos += 5
            items = []
            for _ in range(n):
                item, pos = _decode_at(data, pos)
                items.append(item)
            return (items if tag == b"L" else tuple(items)), pos
        if tag == b"M":
            (n,) = _U32.unpack_from(data, pos + 1)
            pos += 5
            result = {}
            for _ in range(n):
                key, pos = _decode_at(data, pos)
                value, pos = _decode_at(data, pos)
                result[key] = value
            return result, pos
        if tag == b"A":
            typecode = data[pos + 1:pos + 2].decode("ascii")
            (n,) = _U32.unpack_from(data, pos + 2)
            start = pos + 6
            if start + n > len(data):
                raise ValueError("truncated array")
            arr = array(typecode)
            arr.frombytes(data[start:start + n])
            return arr, start + n
        raise ValueError(f"unknown tag {tag!r} at offset {pos}")
    except CheckpointCorruptError:
        raise
    except Exception as exc:
        raise CheckpointCorruptError(
            f"snapshot body is structurally invalid at offset {pos}: {exc}"
        ) from exc


def decode(data: bytes) -> Any:
    """Decode canonical snapshot bytes back into the original value."""
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise CheckpointCorruptError(
            f"{len(data) - end} trailing bytes after the encoded value")
    return value


def content_hash(obj: Any) -> str:
    """sha256 hex digest over the canonical encoding of ``obj``."""
    return hashlib.sha256(encode(obj)).hexdigest()


# -- snapshot files -----------------------------------------------------------

def write_snapshot_file(path: str, payload: Any) -> str:
    """Atomically write ``payload`` as a snapshot file; return its hash.

    The temp file lives in the destination directory so ``os.replace``
    is a same-filesystem atomic rename: readers see either the previous
    snapshot or the complete new one, never a torn write.
    """
    body = encode(payload)
    digest = hashlib.sha256(body).digest()
    blob = (MAGIC + _U32.pack(CHECKPOINT_VERSION) + digest
            + _U64.pack(len(body)) + body)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return digest.hex()


def read_snapshot_file(path: str) -> Any:
    """Read and verify a snapshot file written by :func:`write_snapshot_file`."""
    with open(path, "rb") as fh:
        blob = fh.read()
    header = len(MAGIC) + 4 + 32 + 8
    if len(blob) < header or not blob.startswith(MAGIC):
        raise CheckpointCorruptError(f"{path} is not a snapshot file")
    (version,) = _U32.unpack_from(blob, len(MAGIC))
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"{path} is snapshot version {version}; this build reads "
            f"version {CHECKPOINT_VERSION}")
    digest = blob[len(MAGIC) + 4:len(MAGIC) + 36]
    (length,) = _U64.unpack_from(blob, len(MAGIC) + 36)
    body = blob[header:]
    if len(body) != length:
        raise CheckpointCorruptError(
            f"{path}: body is {len(body)} bytes, header says {length}")
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointCorruptError(f"{path}: content hash mismatch")
    return decode(body)
