"""Capture and verify the complete deterministic run state of a machine.

:func:`capture_machine_state` reduces a live :class:`~repro.core.engine.
Machine` to plain containers the snapshot codec can encode.  The capture
is split into two sections:

``det``
    Everything the deterministic trajectory defines: the raw bytes of
    every struct-of-arrays column (float-bit-exact), the fabric's birth
    ledger and frontier, per-core inboxes in both their deque (delivery
    order) and heap (arrival order) views, mailboxes and receive
    waiters, task queues, the ready-ring order, runtime scheduler /
    steal / lock state, per-core branch-predictor RNG states and the
    virtual-time statistics.  Two runs that executed the same trajectory
    produce byte-identical ``det`` sections — this is what restore
    verifies bit-for-bit.

``host``
    Observations of the host machine (wall-clock seconds, telemetry
    snapshots with wall-time histograms).  Informational only: carried
    in snapshots, never verified.

Live continuations (``task.gen`` generator frames) and the Python
objects flowing through message payloads cannot be serialized, so tasks
and payloads are captured as *structural summaries*: enough to prove a
replayed machine reached the same state, deliberately excluding
process-global identifiers (``Task.tid``, ``TaskGroup.gid``,
``Message.seq``) whose absolute values differ between two runs in the
same interpreter.  Restore therefore works by deterministic replay — see
``repro.checkpoint.runner`` — with this capture as the bit-exact
acceptance check at the snapshot boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.soa import COLUMNS
from ..core.task import Task, TaskGroup
from .codec import CheckpointMismatchError, content_hash

#: Bound on payload summary recursion (payloads are shallow tuples).
_MAX_DEPTH = 6


# -- structural summaries -----------------------------------------------------

def _raw(value: Any) -> Any:
    """Floats pass through (codec stores raw bits); everything else as-is."""
    return float(value) if isinstance(value, float) else value


def summarize(obj: Any, depth: int = _MAX_DEPTH) -> Any:
    """Reduce an arbitrary payload object to a deterministic summary.

    The summary must be (a) encodable by the codec and (b) equal between
    two runs that executed the same trajectory — so object identities
    and process-global counters are excluded by construction.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if depth <= 0:
        return ("depth", type(obj).__name__)
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return (kind, tuple(summarize(o, depth - 1) for o in obj))
    if isinstance(obj, dict):
        return ("dict", tuple(sorted(
            (summarize(k, depth - 1), summarize(v, depth - 1))
            for k, v in obj.items())))
    if isinstance(obj, Task):
        return summarize_task(obj, depth - 1)
    if isinstance(obj, TaskGroup):
        # gid (and the default name derived from it) is process-global.
        return ("group", obj.count, len(obj.joiners))
    type_name = type(obj).__name__
    if type_name == "SimLock":
        return ("lock", obj.home_core, obj.holder is not None,
                len(obj.waiters), obj.acquisitions,
                obj.contended_acquisitions)
    if type_name == "Message":
        return summarize_message(obj, depth - 1)
    if hasattr(obj, "__dataclass_fields__"):  # engine actions
        fields = tuple(
            (name, summarize(getattr(obj, name), depth - 1))
            for name in sorted(obj.__dataclass_fields__))
        return ("action", type_name, fields)
    if callable(obj):
        return ("fn", getattr(obj, "__qualname__", repr(type(obj))))
    if hasattr(obj, "value") and hasattr(obj, "name"):  # enums
        return ("enum", type_name, obj.name)
    return ("obj", type_name)


def summarize_task(task: Task, depth: int = _MAX_DEPTH) -> tuple:
    """Deterministic task summary (``tid`` deliberately excluded)."""
    return (
        "task",
        getattr(task.fn, "__qualname__", str(task.fn)),
        task.state.value,
        task.core,
        _raw(task.birth_time),
        _raw(task.ready_time),
        _raw(task.start_time),
        _raw(task.resume_time),
        bool(task.resume_is_ctx_switch),
        summarize(task.resume_value, depth - 1) if depth > 0 else None,
        summarize(task.waiting_on, depth - 1) if depth > 0 else None,
        bool(task.is_root),
    )


def summarize_message(msg, depth: int = _MAX_DEPTH) -> tuple:
    """Deterministic message summary (``seq`` deliberately excluded)."""
    return (
        "msg",
        msg.kind.name,
        msg.src,
        msg.dst,
        _raw(msg.send_time),
        _raw(msg.size),
        _raw(msg.arrival),
        msg.tag,
        bool(msg.consumed),
        summarize(msg.payload, depth - 1) if depth > 0 else None,
    )


# -- per-subsystem capture ----------------------------------------------------

def _capture_core(core) -> Dict[str, Any]:
    live_deque = [summarize_message(m) for m in core.inbox if not m.consumed]
    heap = core._inbox_heap
    # The heap's internal order depends on push/pop history, which the
    # deterministic trajectory fixes; entries keep their tombstones so
    # the lazy-purge state is captured too.
    live_heap = [( _raw(arrival), summarize_message(m))
                 for arrival, _seq, m in heap] if heap is not None else None
    out = {
        "queue": [summarize_task(t) for t in core.queue],
        "current": summarize_task(core.current) if core.current else None,
        "inbox": live_deque,
        "inbox_heap": live_heap,
        "mailbox": [summarize_message(m) for m in core.user_mailbox],
        "recv_waiters": [(summarize_task(t), tag)
                         for t, tag in core.recv_waiters],
        "reserved_slots": core.reserved_slots,
        "locks_held": int(core.locks_held),
        "lax_ref": _raw(core.lax_ref),
        "lax_next_check": _raw(core.lax_next_check),
    }
    predictor = core.annotator.predictor
    if predictor is not None:
        rng = predictor._rng
        out["predictor"] = {
            "predictions": predictor.predictions,
            "mispredictions": predictor.mispredictions,
            "rng": _freeze_bitgen_state(rng.bit_generator.state)
            if rng is not None else None,
        }
    return out


def _freeze_bitgen_state(state: Dict[str, Any]) -> Any:
    """numpy BitGenerator state dicts hold nested dicts/uint arrays."""
    if isinstance(state, dict):
        return {k: _freeze_bitgen_state(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [int(v) for v in state]
    if hasattr(state, "tolist"):  # ndarray of uint64 words
        return [int(v) for v in state.tolist()]
    if isinstance(state, float):
        return float(state)
    return int(state) if isinstance(state, int) else state


def restore_bitgen_state(frozen: Any) -> Any:
    """Inverse of :func:`_freeze_bitgen_state` for ``bit_generator.state``."""
    import numpy as np

    if isinstance(frozen, dict):
        out = {}
        for key, value in frozen.items():
            if key == "state" and isinstance(value, list):
                out[key] = np.array(value, dtype=np.uint64)
            else:
                out[key] = restore_bitgen_state(value)
        return out
    return frozen


def _capture_fabric(fabric) -> Dict[str, Any]:
    births = [sorted((float(t), int(n)) for t, n in per_core.items())
              for per_core in fabric._births]
    return {
        "max_vtime": _raw(fabric.max_vtime),
        "shadow_recomputes": fabric.shadow_recomputes,
        "births": births,
        "idle_nbr_count": list(fabric._idle_nbr_count),
        "dirty": bool(fabric._dirty),
    }


def _capture_runtime(runtime) -> Dict[str, Any]:
    # _group_last_finish is keyed by process-global gids; two runs visit
    # the same groups in the same order, so the sorted value multiset is
    # the deterministic content.
    finishes = sorted((_raw(t), core)
                      for t, core in runtime._group_last_finish.values())
    return {
        "proxy": [sorted((n, occ) for n, occ in proxies.items())
                  for proxies in runtime._proxy],
        "cursor": list(runtime._cursor),
        "last_broadcast": list(runtime._last_broadcast),
        "steal_pending": [bool(b) for b in runtime._steal_pending],
        "steals_attempted": runtime.steals_attempted,
        "steals_successful": runtime.steals_successful,
        "group_last_finish": finishes,
    }


def _capture_stats(stats) -> Dict[str, Any]:
    by_kind = sorted((kind.name, int(count))
                     for kind, count in stats.messages_by_kind.items())
    return {
        "completion_vtime": _raw(stats.completion_vtime),
        "actions": stats.actions,
        "compute_actions": stats.compute_actions,
        "mem_accesses": stats.mem_accesses,
        "cell_accesses": stats.cell_accesses,
        "remote_cell_accesses": stats.remote_cell_accesses,
        "context_switches": stats.context_switches,
        "tasks_started": stats.tasks_started,
        "tasks_spawned_remote": stats.tasks_spawned_remote,
        "tasks_run_inline": stats.tasks_run_inline,
        "drift_stalls": stats.drift_stalls,
        "lock_waiver_runs": stats.lock_waiver_runs,
        "out_of_order_msgs": stats.out_of_order_msgs,
        "messages_by_kind": by_kind,
        "noc": {str(k): _raw(v) for k, v in stats.noc.items()},
        "core_busy_cycles": {int(k): _raw(v)
                             for k, v in stats.core_busy_cycles.items()},
    }


# -- whole-machine capture ----------------------------------------------------

def capture_machine_state(machine) -> Dict[str, Any]:
    """Capture the complete run state of ``machine`` at a safe point.

    Safe points are the places the drivers stop with no slice in flight:
    a serial ``stop_at_vtime`` return or a sharded round barrier.  The
    result is codec-encodable; ``det`` is bit-exact and verifiable,
    ``host`` is informational.
    """
    soa = machine.soa
    det: Dict[str, Any] = {
        "n_cores": machine.n_cores,
        "live_tasks": machine.live_tasks,
        "last_finish_time": _raw(machine.last_finish_time),
        # floor_lb is excluded: it is a pure admission cache, primed at
        # every drain start, so a resumed run (which re-enters
        # _drain_ready once more than a straight run) legitimately holds
        # different cached bounds.  Admission decisions re-derive the
        # exact floor on a cache miss (SpatialSync.may_run), so cache
        # content can never change the trajectory.
        "columns": {name: getattr(soa, name).tobytes()
                    for name, _code, _fill in COLUMNS
                    if name != "floor_lb"},
        "ready_ring": [core.cid for core in machine._ready],
        "stalled": sorted(machine._stalled),
        "window_parked": sorted(machine._window_parked),
        "cores": [_capture_core(core) for core in machine.cores],
        "fabric": _capture_fabric(machine.fabric),
        "runtime": (_capture_runtime(machine.runtime)
                    if machine.runtime is not None else None),
        "stats": _capture_stats(machine.stats),
        "roots": [summarize_task(t) for t in machine.root_tasks],
    }
    host: Dict[str, Any] = {
        "wall_seconds": _raw(machine.stats.wall_seconds),
        "engine_kernel": machine.engine_kernel,
    }
    if machine.telemetry is not None:
        host["telemetry"] = summarize(machine.telemetry.snapshot())
    return {"det": det, "host": host}


def state_hash(state: Dict[str, Any]) -> str:
    """Content hash of a capture's deterministic section."""
    return content_hash(state["det"])


def _first_divergence(expected: Any, actual: Any, path: str) -> str:
    """Human-oriented pointer at the first differing leaf."""
    if type(expected) is not type(actual):
        return (f"{path}: type {type(expected).__name__} != "
                f"{type(actual).__name__}")
    if isinstance(expected, dict):
        for key in expected:
            if key not in actual:
                return f"{path}.{key}: missing in replayed state"
            if expected[key] != actual[key]:
                return _first_divergence(expected[key], actual[key],
                                         f"{path}.{key}")
        extra = set(actual) - set(expected)
        if extra:
            return f"{path}: unexpected keys {sorted(extra, key=str)!r}"
    elif isinstance(expected, (list, tuple)):
        if len(expected) != len(actual):
            return f"{path}: length {len(expected)} != {len(actual)}"
        for i, (e, a) in enumerate(zip(expected, actual)):
            if e != a:
                return _first_divergence(e, a, f"{path}[{i}]")
    return f"{path}: {expected!r} != {actual!r}"


def verify_machine_state(expected: Dict[str, Any],
                         actual: Dict[str, Any]) -> None:
    """Require bit-identical ``det`` sections, else fail loudly.

    Raises :class:`CheckpointMismatchError` naming the first divergent
    field — a replay that does not reproduce the captured state is a
    determinism bug, and continuing from it would silently produce
    wrong results.
    """
    exp, act = expected["det"], actual["det"]
    if exp == act:
        return
    where = _first_divergence(exp, act, "det")
    raise CheckpointMismatchError(
        "replayed state diverged from the checkpoint at the snapshot "
        f"boundary ({where}); refusing to resume from a state the "
        "replay cannot reproduce")
