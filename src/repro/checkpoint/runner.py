"""Checkpointed run drivers: snapshot, restore-by-verified-replay, resume.

Tasks are live Python generator frames and message payloads carry live
``Task``/``SimLock`` objects, so a snapshot cannot byte-serialize the
continuations themselves.  Restore therefore works by **verified
replay**: rebuild the machine from the snapshot's config and workload
specs (both fully deterministic), re-execute from virtual time zero to
the snapshot boundary, and require the replayed machine state to be
*bit-identical* to the captured one —
:class:`~repro.checkpoint.codec.CheckpointMismatchError` otherwise.
Only then does execution continue past the boundary.

This yields exactly the differential contract the conformance fuzzer
pins: ``run(0→end)`` and ``run(0→k); restore; run(k→end)`` produce
bit-identical result documents and trace digests, for any workload ×
backend × kernel.  What a checkpoint buys is not wall-clock on the
prefix (the prefix is re-simulated) but *integrity*: a killed or
preempted job resumes onto a state proven equal to the one it lost,
and any divergence — code drift, nondeterminism, a corrupted file —
fails loudly instead of silently producing wrong numbers.

Boundaries are the backends' natural safe points: a ``stop_at_vtime``
return for the serial engine (no slice in flight) and a coordination
round barrier for the sharded backend (workers blocked on the next
command).

Limitations, by design: restoring onto a different shard count fails
loudly (the coordinator refuses mismatched state lists), and
``parallelism_sample_interval`` sampling is perturbed by segment
boundaries (samples are host-observation only and excluded from
captures).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.builder import build_backend, build_machine
from ..arch.config import ArchConfig
from ..parallel.channels import WorkloadSpec
from .codec import CheckpointError
from .snapshot import Snapshot, load_snapshot, make_snapshot
from .state import capture_machine_state, verify_machine_state

#: Keys of the round-protocol dict that are host observations (wall
#: clock), excluded from deterministic outcome comparison.
_HOST_PROTOCOL_KEYS = ("worker_busy_s", "parallel_efficiency")


# -- outcome documents --------------------------------------------------------

def _resolve_roots(specs: Sequence[WorkloadSpec]):
    return [(spec.resolve().root, (), spec.root_core) for spec in specs]


def _build_serial(cfg: ArchConfig):
    machine = build_machine(cfg)
    tracer = None
    if cfg.collect_trace:
        from ..harness.trace import Tracer

        tracer = Tracer(machine)
    return machine, tracer


def _serial_outcome(machine, tracer, results) -> Dict:
    stats = machine.stats.as_dict()
    host = {"wall_seconds": stats.pop("wall_seconds", 0.0)}
    digest = None
    if tracer is not None:
        from ..harness.trace import trace_digest

        digest = trace_digest(tracer.export())
    return {
        "backend": "serial",
        "results": results,
        "digest": digest,
        "completion": machine.stats.completion_vtime,
        "messages": {k.name: v
                     for k, v in machine.stats.messages_by_kind.items()},
        "stats_vt": stats,
        "host": host,
    }


def _sharded_outcome(backend, results) -> Dict:
    stats = backend.stats.as_dict()
    host = {"wall_seconds": stats.pop("wall_seconds", 0.0)}
    protocol = dict(backend.protocol)
    for key in _HOST_PROTOCOL_KEYS:
        host[key] = protocol.pop(key, None)
    digest = None
    if backend.trace is not None:
        from ..harness.trace import trace_digest

        digest = trace_digest(backend.trace)
    return {
        "backend": "sharded",
        "results": results,
        "digest": digest,
        "completion": backend.stats.completion_vtime,
        "messages": {k.name: v
                     for k, v in backend.stats.messages_by_kind.items()},
        "stats_vt": stats,
        "protocol": protocol,
        "host": host,
    }


def run_straight(cfg: ArchConfig, specs: Sequence[WorkloadSpec],
                 timeout: Optional[float] = 300.0) -> Dict:
    """Uninterrupted reference run; returns the outcome document."""
    specs = list(specs)
    if cfg.backend == "sharded":
        backend = build_backend(cfg)
        results = backend.run_workloads(specs, timeout=timeout)
        return _sharded_outcome(backend, results)
    machine, tracer = _build_serial(cfg)
    results = machine.run_roots(_resolve_roots(specs))
    return _serial_outcome(machine, tracer, results)


# -- checkpointing runs -------------------------------------------------------

def run_serial_checkpointed(cfg: ArchConfig, specs: Sequence[WorkloadSpec],
                            every: float,
                            sink: Callable[[Snapshot], None]) -> Dict:
    """Serial run that snapshots every ``every`` virtual-time cycles.

    ``sink`` receives a fresh :class:`Snapshot` at each boundary the
    run crosses with work still live; checkpointing is observation-only
    (the outcome is bit-identical to :func:`run_straight`).
    """
    if every <= 0:
        raise CheckpointError(f"checkpoint interval must be > 0, got {every}")
    specs = list(specs)
    machine, tracer = _build_serial(cfg)
    k = float(every)
    results = machine.run_roots(_resolve_roots(specs), stop_at_vtime=k)
    while machine.live_tasks > 0:
        sink(make_snapshot("serial", cfg, specs,
                           {"kind": "vtime", "value": k},
                           [capture_machine_state(machine)]))
        # Skip boundaries the last segment overshot, so every snapshot
        # captures fresh progress.
        while k <= machine.fabric.max_vtime:
            k += every
        results = machine.resume_run(stop_at_vtime=k)
    return _serial_outcome(machine, tracer, results)


def run_sharded_checkpointed(cfg: ArchConfig, specs: Sequence[WorkloadSpec],
                             every: int, sink: Callable[[Snapshot], None],
                             timeout: Optional[float] = 300.0) -> Dict:
    """Sharded run that snapshots every ``every`` coordination rounds."""
    specs = list(specs)
    backend = build_backend(cfg)

    def board_sink(round_no: int, states: List[dict]) -> None:
        sink(make_snapshot("sharded", cfg, specs,
                           {"kind": "round", "value": round_no}, states))

    results = backend.run_workloads(specs, timeout=timeout,
                                    checkpoint_every=int(every),
                                    checkpoint_sink=board_sink)
    return _sharded_outcome(backend, results)


def run_checkpointed(cfg: ArchConfig, specs: Sequence[WorkloadSpec],
                     every, sink: Callable[[Snapshot], None],
                     timeout: Optional[float] = 300.0) -> Dict:
    """Backend-dispatching checkpointed run (interval in virtual-time
    cycles for serial, coordination rounds for sharded)."""
    if cfg.backend == "sharded":
        return run_sharded_checkpointed(cfg, specs, int(every), sink,
                                        timeout=timeout)
    return run_serial_checkpointed(cfg, specs, float(every), sink)


# -- restore / resume ---------------------------------------------------------

def restore_serial(snap: Snapshot):
    """Rebuild + replay a serial snapshot to its boundary, bit-verified.

    Returns ``(machine, tracer, specs)`` stopped exactly at the
    boundary, ready for ``machine.resume_run()``.
    """
    if snap.kind != "serial":
        raise CheckpointError(
            f"snapshot kind {snap.kind!r} cannot restore on the serial "
            "backend")
    cfg = snap.rebuild_config()
    specs = snap.rebuild_workloads()
    machine, tracer = _build_serial(cfg)
    k = float(snap.boundary["value"])
    machine.run_roots(_resolve_roots(specs), stop_at_vtime=k)
    verify_machine_state(snap.states[0], capture_machine_state(machine))
    return machine, tracer, specs


def resume_serial(snap: Snapshot, *,
                  checkpoint_every: Optional[float] = None,
                  sink: Optional[Callable[[Snapshot], None]] = None) -> Dict:
    """Restore a serial snapshot and run to completion.

    With ``checkpoint_every``/``sink``, checkpointing continues past the
    boundary (boundaries advance from the snapshot's one).
    """
    machine, tracer, specs = restore_serial(snap)
    cfg = snap.rebuild_config()
    if checkpoint_every:
        every = float(checkpoint_every)
        k = float(snap.boundary["value"])
        while k <= machine.fabric.max_vtime:
            k += every
        results = machine.resume_run(stop_at_vtime=k)
        while machine.live_tasks > 0:
            sink(make_snapshot("serial", cfg, specs,
                               {"kind": "vtime", "value": k},
                               [capture_machine_state(machine)]))
            while k <= machine.fabric.max_vtime:
                k += every
            results = machine.resume_run(stop_at_vtime=k)
    else:
        results = machine.resume_run()
    return _serial_outcome(machine, tracer, results)


def resume_sharded(snap: Snapshot, *,
                   checkpoint_every: Optional[int] = None,
                   sink: Optional[Callable[[Snapshot], None]] = None,
                   timeout: Optional[float] = 300.0) -> Dict:
    """Restore a sharded snapshot (verified replay at the round barrier)
    and run to completion on a fresh worker pool.

    The shard count is the snapshot's; the coordinator refuses a state
    list that does not match its partition, so restoring onto a
    different shard count fails loudly rather than approximately.
    """
    if snap.kind != "sharded":
        raise CheckpointError(
            f"snapshot kind {snap.kind!r} cannot restore on the sharded "
            "backend")
    cfg = snap.rebuild_config()
    specs = snap.rebuild_workloads()
    backend = build_backend(cfg)
    board_sink = None
    if checkpoint_every:
        def board_sink(round_no: int, states: List[dict]) -> None:
            sink(make_snapshot("sharded", cfg, specs,
                               {"kind": "round", "value": round_no}, states))
    results = backend.run_workloads(
        specs, timeout=timeout,
        verify_round=int(snap.boundary["value"]),
        verify_states=snap.states,
        checkpoint_every=int(checkpoint_every) if checkpoint_every else None,
        checkpoint_sink=board_sink)
    return _sharded_outcome(backend, results)


def resume_run(snap, *, checkpoint_every=None, sink=None,
               timeout: Optional[float] = 300.0) -> Dict:
    """Resume a snapshot (object or file path) on its own backend."""
    if isinstance(snap, str):
        snap = load_snapshot(snap)
    if snap.kind == "sharded":
        return resume_sharded(snap, checkpoint_every=checkpoint_every,
                              sink=sink, timeout=timeout)
    return resume_serial(snap, checkpoint_every=checkpoint_every, sink=sink)


# -- split-run equivalence (fuzzing / CI) -------------------------------------

def split_run(cfg: ArchConfig, specs: Sequence[WorkloadSpec], k,
              timeout: Optional[float] = 300.0
              ) -> Tuple[Optional[Snapshot], Dict, Optional[Dict]]:
    """One ``run(0→k); restore; run(k→end)`` round trip.

    Returns ``(snapshot, checkpointed_outcome, resumed_outcome)``;
    ``snapshot``/``resumed_outcome`` are ``None`` when the run finished
    before ever crossing ``k`` (nothing to verify — the checkpointed
    outcome is still a complete straight run).
    """
    first: List[Snapshot] = []

    def keep_first(snapshot: Snapshot) -> None:
        if not first:
            first.append(snapshot)

    straight = run_checkpointed(cfg, specs, k, keep_first, timeout=timeout)
    if not first:
        return None, straight, None
    resumed = resume_run(first[0], timeout=timeout)
    return first[0], straight, resumed
