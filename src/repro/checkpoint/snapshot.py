"""Snapshot container: config + workloads + boundary + captured state.

A :class:`Snapshot` is everything a restore needs to continue a run:

* the full :class:`~repro.arch.config.ArchConfig` (including
  non-semantic fields — the restore must rebuild the *same* machine,
  kernel selection included, to reproduce the trajectory bit-exactly);
* the resolved :class:`~repro.parallel.channels.WorkloadSpec` list
  (workload factories are deterministic in their spec, so the rebuilt
  roots are identical);
* the boundary — a virtual-time stop for the serial backend
  (``{"kind": "vtime", "value": k}``) or a coordination-round count for
  the sharded one (``{"kind": "round", "value": k}``);
* one machine-state capture per shard (exactly one for serial), each
  with a bit-exact ``det`` section and an informational ``host``
  section (see ``repro.checkpoint.state``).

Snapshots serialize through the canonical codec
(``repro.checkpoint.codec``) with atomic writes and a verified content
hash; :func:`load_snapshot` refuses corrupt or version-mismatched
files and structurally invalid payloads.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..arch.config import ArchConfig
from ..parallel.channels import WorkloadSpec
from .codec import (CheckpointCorruptError, content_hash,
                    read_snapshot_file, write_snapshot_file)

#: ``kind`` values a snapshot may carry.
KINDS = ("serial", "sharded")


@dataclasses.dataclass
class Snapshot:
    """In-memory snapshot of a run at a boundary."""

    kind: str                      # "serial" | "sharded"
    config: Dict[str, Any]         # full ArchConfig as a plain dict
    workloads: List[Dict[str, Any]]  # WorkloadSpec fields per root
    boundary: Dict[str, Any]       # {"kind": "vtime"|"round", "value": k}
    states: List[Dict[str, Any]]   # one capture per shard (serial: one)
    note: str = ""                 # free-form provenance (spec hash, ...)

    @property
    def state_hash(self) -> str:
        """Content hash over every shard's deterministic section."""
        return content_hash([s["det"] for s in self.states])

    def rebuild_config(self) -> ArchConfig:
        return ArchConfig(**self.config)

    def rebuild_workloads(self) -> List[WorkloadSpec]:
        return [WorkloadSpec(**dict(w, kwargs=dict(w["kwargs"])))
                for w in self.workloads]


def make_snapshot(kind: str, cfg: ArchConfig,
                  specs: List[WorkloadSpec],
                  boundary: Dict[str, Any],
                  states: List[Dict[str, Any]],
                  note: str = "") -> Snapshot:
    """Build a snapshot from live objects (no file involved yet)."""
    config = dataclasses.asdict(cfg)
    if config.get("speed_factors") is not None:
        config["speed_factors"] = [float(f) for f in config["speed_factors"]]
    workloads = [dataclasses.asdict(spec) for spec in specs]
    return Snapshot(kind=kind, config=config, workloads=workloads,
                    boundary=dict(boundary), states=list(states), note=note)


def save_snapshot(snap: Snapshot, path: str) -> str:
    """Atomically write ``snap`` to ``path``; return the content hash."""
    payload = {
        "kind": snap.kind,
        "config": snap.config,
        "workloads": snap.workloads,
        "boundary": snap.boundary,
        "states": snap.states,
        "note": snap.note,
    }
    return write_snapshot_file(path, payload)


def load_snapshot(path: str) -> Snapshot:
    """Read, verify and structurally validate a snapshot file."""
    payload = read_snapshot_file(path)
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(f"{path}: payload is not a mapping")
    missing = {"kind", "config", "workloads", "boundary",
               "states"} - set(payload)
    if missing:
        raise CheckpointCorruptError(
            f"{path}: snapshot payload lacks {sorted(missing)}")
    if payload["kind"] not in KINDS:
        raise CheckpointCorruptError(
            f"{path}: unknown snapshot kind {payload['kind']!r}")
    boundary = payload["boundary"]
    if (not isinstance(boundary, dict)
            or boundary.get("kind") not in ("vtime", "round")
            or not isinstance(boundary.get("value"), (int, float))):
        raise CheckpointCorruptError(f"{path}: malformed boundary")
    states = payload["states"]
    if (not isinstance(states, list) or not states
            or not all(isinstance(s, dict) and "det" in s for s in states)):
        raise CheckpointCorruptError(f"{path}: malformed state captures")
    return Snapshot(kind=payload["kind"], config=payload["config"],
                    workloads=payload["workloads"], boundary=boundary,
                    states=states, note=payload.get("note", ""))
