"""SiMany: a very fast discrete-event simulator for many-core architectures.

Reproduction of Certner, Li, Raman and Temam, "A Very Fast Simulator for
Exploring the Many-Core Future" (IPDPS 2011).

Quickstart::

    from repro import build_machine, shared_mesh, get_workload

    workload = get_workload("dijkstra", scale="small", memory="shared")
    machine = build_machine(shared_mesh(64))
    result = machine.run(workload.root)
    workload.verify(result["output"])
    print("virtual completion time:", result["work_vtime"])

Packages:

* :mod:`repro.core` — virtual time, spatial synchronization, the engine;
* :mod:`repro.network` — topologies, routing, NoC timing;
* :mod:`repro.memory` — shared/distributed memory models, caches, coherence;
* :mod:`repro.timing` — instruction-class costs, branch prediction;
* :mod:`repro.runtime` — conditional spawning, task groups, locks;
* :mod:`repro.cyclelevel` — the cycle-level validation referee;
* :mod:`repro.arch` — architecture configs and paper presets;
* :mod:`repro.workloads` — the six dwarf benchmarks;
* :mod:`repro.harness` — per-figure experiment runners and reports.
"""

from .arch import (
    ArchConfig,
    build_machine,
    clustered_dist,
    dist_mesh,
    numa_mesh,
    polymorphic_dist,
    polymorphic_shared,
    shared_mesh,
    shared_mesh_validation,
    single_core,
)
from .core import EngineParams, Machine, SimDeadlock, SimError, TaskGroup
from .cyclelevel import build_cycle_level_machine
from .runtime import SimLock
from .workloads import BENCHMARKS, get_workload

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "BENCHMARKS",
    "EngineParams",
    "Machine",
    "SimDeadlock",
    "SimError",
    "SimLock",
    "TaskGroup",
    "build_cycle_level_machine",
    "build_machine",
    "clustered_dist",
    "dist_mesh",
    "get_workload",
    "numa_mesh",
    "polymorphic_dist",
    "polymorphic_shared",
    "shared_mesh",
    "shared_mesh_validation",
    "single_core",
    "__version__",
]
