"""Sweep-space declaration, validation and expansion.

A **sweep spec** declares a family of simulations as a base run spec
plus typed parameter axes::

    {
      "name": "mesh-family",
      "base": {
        "arch":     {"preset": "shared_mesh", "n_cores": 9},
        "workload": {"benchmark": "quicksort", "scale": "tiny"}
      },
      "axes": {
        "arch.n_cores":     [9, 16],
        "arch.drift_bound": [50.0, 100.0],
        "workload.seed":    [0, 1]
      },
      "budget":     {"max_power_w": 150.0, "max_area_mm2": 400.0},
      "cost_model": {},
      "objectives": ["perf", "power", "area"]
    }

Axis names are dotted paths into the two spec sections: ``arch.<field>``
must name a real :class:`~repro.arch.ArchConfig` field (or the preset
keys ``preset`` / ``n_clusters``), ``workload.<field>`` one of the
workload identity fields.  :func:`expand_sweep` takes the cartesian
product — axes in sorted-name order, values in declared order, which
fixes a deterministic **cell index** for the whole sweep — and resolves
every cell through the *existing* service machinery
(:func:`repro.service.hashing.resolve_spec`), so each cell is validated
exactly like an HTTP submission and carries the same content hash the
result cache is keyed by.  A cell whose static cost evaluation breaks
the budget is marked pruned at expansion time and never simulated.

Every validation failure raises :class:`SweepSpecError` (a
:class:`~repro.service.hashing.SpecError`, i.e. HTTP 400 material)
naming the axis or cell at fault.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional

from ..arch.io import config_field_names
from ..core.errors import SimConfigError
from ..service.hashing import (ResolvedSpec, SpecError, canonical_json,
                               hash_canonical, resolve_spec)
from .models import (CostModel, SystemBudget, resolve_budget,
                     resolve_cost_model, resolve_objectives)

#: Sweep-spec schema version (bumped on incompatible layout changes).
SWEEP_SCHEMA = 1

#: Hard expansion cap: a typo'd axis must not OOM the host.
MAX_CELLS = 4096

#: Keys a sweep spec may carry at the top level.
SWEEP_KEYS = frozenset({"name", "base", "axes", "budget", "cost_model",
                        "objectives"})

#: Arch-section keys that are not ArchConfig fields but are legal in a
#: spec's arch object (consumed by the preset factories).
_ARCH_EXTRA_KEYS = frozenset({"preset"})

#: Workload identity fields a workload axis may vary.
_WORKLOAD_KEYS = frozenset({"benchmark", "scale", "seed", "root_core"})


class SweepSpecError(SpecError):
    """A sweep spec failed validation (HTTP 400 material)."""


@dataclasses.dataclass
class SweepCell:
    """One fully-resolved point of the sweep space.

    ``index`` is the cell's position in deterministic expansion order
    (the result frame is ordered by it regardless of completion order);
    ``params`` maps each axis name to this cell's value; ``spec`` is the
    resolved run spec whose ``spec_hash`` identifies the cell in the
    result cache; ``cost`` is the static cost evaluation and
    ``violations`` the budget breaches (non-empty == pruned).
    """

    index: int
    params: Dict[str, Any]
    spec: ResolvedSpec
    cost: Dict[str, Any]
    violations: List[str]

    @property
    def pruned(self) -> bool:
        return bool(self.violations)


@dataclasses.dataclass
class SweepPlan:
    """An expanded, validated sweep: cells plus the models that shaped it."""

    name: str
    axes: Dict[str, List[Any]]          # sorted axis name -> values
    cells: List[SweepCell]
    budget: SystemBudget
    cost_model: CostModel
    objectives: List[str]
    sweep_hash: str

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def short_id(self) -> str:
        return self.sweep_hash[:12]

    def feasible_cells(self) -> List[SweepCell]:
        """The cells that survived budget pruning, in index order."""
        return [c for c in self.cells if not c.pruned]


def _check_axes(axes: Any) -> Dict[str, List[Any]]:
    """Validate the axes mapping; returns it with sorted names."""
    if not isinstance(axes, dict) or not axes:
        raise SweepSpecError("'axes' must be a non-empty JSON object "
                             "mapping dotted field names to value lists")
    arch_fields = config_field_names() | _ARCH_EXTRA_KEYS
    out: Dict[str, List[Any]] = {}
    for name in sorted(axes):
        section, _, field = name.partition(".")
        if section == "arch" and field in arch_fields:
            pass
        elif section == "workload" and field in _WORKLOAD_KEYS:
            pass
        else:
            raise SweepSpecError(
                f"unknown sweep axis {name!r}: use 'arch.<field>' with a "
                f"real ArchConfig field (or 'arch.preset') or "
                f"'workload.<field>' with one of "
                f"{sorted(_WORKLOAD_KEYS)}")
        values = axes[name]
        if not isinstance(values, list) or not values:
            raise SweepSpecError(
                f"axis {name!r} must list at least one value, "
                f"got {values!r}")
        if any(isinstance(v, (dict, list)) for v in values):
            raise SweepSpecError(
                f"axis {name!r} values must be JSON scalars")
        if len(set(map(repr, values))) != len(values):
            raise SweepSpecError(f"axis {name!r} repeats a value")
        out[name] = list(values)
    return out


def _cell_raw_spec(base: Dict[str, Any],
                   params: Dict[str, Any]) -> Dict[str, Any]:
    """The raw (service-shaped) run spec of one cell: base + overrides."""
    arch = dict(base.get("arch") or {})
    workload = dict(base.get("workload") or {})
    for name, value in params.items():
        section, _, field = name.partition(".")
        (arch if section == "arch" else workload)[field] = value
    # Execution options are fixed for sweep cells: never waited on at
    # submission, no per-cell digest/telemetry — keeps the per-cell
    # document a pure function of the semantic spec.
    return {"arch": arch, "workload": workload,
            "options": {"digest": False, "telemetry": None}}


def expand_sweep(payload: Any) -> SweepPlan:
    """Validate a sweep spec and expand it into a :class:`SweepPlan`.

    Cells are ordered by the cartesian product of the axes (axis names
    sorted, values in declared order); each cell's run spec resolves
    through :func:`repro.service.hashing.resolve_spec` so invalid
    combinations fail *here*, naming the cell, never inside a worker.

    Example::

        from repro.dse import expand_sweep
        plan = expand_sweep({
            "base": {"workload": {"benchmark": "quicksort",
                                  "scale": "tiny"}},
            "axes": {"arch.n_cores": [9, 16]},
        })
        assert plan.n_cells == 2
        assert plan.cells[0].spec.cfg.n_cores == 9
    """
    if not isinstance(payload, dict):
        raise SweepSpecError("sweep spec must be a JSON object")
    unknown = set(payload) - SWEEP_KEYS
    if unknown:
        raise SweepSpecError(f"unknown sweep key(s): {sorted(unknown)}; "
                             f"expected a subset of {sorted(SWEEP_KEYS)}")
    base = payload.get("base") or {}
    if not isinstance(base, dict):
        raise SweepSpecError("'base' must be a JSON object with 'arch' "
                             "and 'workload' sections")
    extra = set(base) - {"arch", "workload"}
    if extra:
        raise SweepSpecError(f"unknown base section(s): {sorted(extra)}; "
                             "a sweep base holds 'arch' and 'workload' only")
    axes = _check_axes(payload.get("axes"))
    try:
        budget = resolve_budget(payload.get("budget"))
        cost_model = resolve_cost_model(payload.get("cost_model"))
        objectives = resolve_objectives(payload.get("objectives"))
    except SimConfigError as exc:
        raise SweepSpecError(str(exc)) from exc
    name = payload.get("name") or "sweep"
    if not isinstance(name, str):
        raise SweepSpecError(f"'name' must be a string, got {name!r}")

    n_cells = 1
    for values in axes.values():
        n_cells *= len(values)
    if n_cells > MAX_CELLS:
        raise SweepSpecError(f"sweep expands to {n_cells} cells, more "
                             f"than the {MAX_CELLS}-cell cap")

    cells: List[SweepCell] = []
    names = list(axes)
    for index, combo in enumerate(
            itertools.product(*(axes[n] for n in names))):
        params = dict(zip(names, combo))
        try:
            spec = resolve_spec(_cell_raw_spec(base, params))
        except SpecError as exc:
            raise SweepSpecError(f"cell {index} {params}: {exc}") from exc
        cost = cost_model.evaluate(spec.cfg)
        cells.append(SweepCell(index=index, params=params, spec=spec,
                               cost=cost,
                               violations=budget.violations(cost, spec.cfg)))

    sweep_hash = hash_canonical({
        "schema": SWEEP_SCHEMA,
        "cells": [c.spec.spec_hash for c in cells],
        "budget": dataclasses.asdict(budget),
        "cost_model": dataclasses.asdict(cost_model),
        "objectives": objectives,
    })
    return SweepPlan(name=name, axes=axes, cells=cells, budget=budget,
                     cost_model=cost_model, objectives=objectives,
                     sweep_hash=sweep_hash)


def sweep_summary(plan: SweepPlan) -> Dict[str, Any]:
    """JSON-safe description of an expanded sweep (no per-cell specs)."""
    return {
        "schema": SWEEP_SCHEMA,
        "name": plan.name,
        "sweep_hash": plan.sweep_hash,
        "axes": {k: list(v) for k, v in plan.axes.items()},
        "n_cells": plan.n_cells,
        "n_pruned": sum(1 for c in plan.cells if c.pruned),
        "budget": dataclasses.asdict(plan.budget),
        "cost_model": dataclasses.asdict(plan.cost_model),
        "objectives": list(plan.objectives),
    }


def load_sweep_spec(path: str) -> Dict[str, Any]:
    """Read a sweep spec file (JSON) without expanding it."""
    import json
    import pathlib

    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        raise SweepSpecError(f"cannot read sweep spec {path!r}: {exc}")
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise SweepSpecError(f"invalid JSON in sweep spec {path!r}: {exc}")
    return payload


__all__ = ["MAX_CELLS", "SWEEP_SCHEMA", "SweepCell", "SweepPlan",
           "SweepSpecError", "canonical_json", "expand_sweep",
           "load_sweep_spec", "sweep_summary"]
