"""Cost, power and area models for design-space exploration.

A simulated architecture answers "how fast?"; a design-space decision
also needs "at what cost?".  This module attaches a lumos-style
first-order physical model to an :class:`~repro.arch.ArchConfig`:

* every core is assigned a **core class** derived from its resolved
  speed factor (the same factors the engine charges compute with), with
  per-class area, static (leakage) and peak dynamic power scaled by
  Pollack-style exponents — a core ``s``x faster costs
  ``s**area_exponent`` more area and ``s**power_exponent`` more dynamic
  power, so heterogeneous (polymorphic) meshes trade real silicon for
  their fast cores;
* the uncore (NoC routers, shared fabric, memory organization) adds a
  per-core and a flat term, with the memory organization (shared bank
  array vs. NUMA vs. distributed cells) priced differently;
* a :class:`SystemBudget` turns the totals into a **feasibility
  filter**: cells whose static evaluation already violates the power or
  area envelope are pruned *before* simulation, which is what lets a
  sweep over thousands of cells spend simulation time only on buildable
  systems.

Everything here is a pure function of the config — deterministic floats,
no randomness, no host dependence — so cost numbers are as cacheable and
reproducible as the simulation results they annotate.  The absolute
values are first-order (a 45 nm-flavoured flagship mesh, not a signed-off
floorplan); what matters for exploration is that they order designs
consistently, the same way the paper's timing model orders them by speed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..arch.config import ArchConfig
from ..core.errors import SimConfigError

#: Memory-organization uncore costs (area mm^2, power W): a shared bank
#: array is the biggest block, NUMA's distributed banks + directory sit
#: in the middle, fully distributed per-core cells are the leanest.
MEMORY_AREA_MM2 = {"shared": 16.0, "numa": 12.0, "distributed": 8.0}
MEMORY_POWER_W = {"shared": 4.0, "numa": 3.0, "distributed": 2.0}


@dataclasses.dataclass(frozen=True)
class CostModel:
    """First-order silicon model applied uniformly to every sweep cell.

    The base values describe the reference core (speed factor 1.0); a
    core with resolved speed ``s`` (``1 / speed_factor``) costs
    ``area * s**area_exponent`` and burns ``dynamic * s**power_exponent``
    at peak, static power scaling with area.  All fields are plain
    floats so a sweep spec can override any of them as JSON.
    """

    base_core_area_mm2: float = 4.0
    base_core_static_w: float = 0.3
    base_core_dynamic_w: float = 1.2
    #: Pollack's rule flavour: performance ~ sqrt(area) => area ~ s^2;
    #: 1.75 keeps fast cores expensive but not absurd.
    area_exponent: float = 1.75
    #: Dynamic power vs. single-core speed (frequency+voltage scaling).
    power_exponent: float = 2.0
    router_area_mm2: float = 0.6
    router_power_w: float = 0.15
    uncore_area_mm2: float = 12.0
    uncore_power_w: float = 3.0

    def evaluate(self, cfg: ArchConfig) -> Dict[str, Any]:
        """Static cost evaluation of one configuration.

        Returns a plain-JSON dict: total ``area_mm2``,
        ``static_power_w``, ``peak_dynamic_power_w`` and ``peak_power_w``
        (static + peak dynamic), plus a ``core_classes`` breakdown keyed
        by class name (``base`` / ``fast`` / ``eff``) with per-class
        counts and unit costs.  Deterministic: same config, same floats.
        """
        classes: Dict[str, Dict[str, Any]] = {}
        area = self.uncore_area_mm2 + MEMORY_AREA_MM2[cfg.memory]
        static = self.uncore_power_w + MEMORY_POWER_W[cfg.memory]
        dynamic = 0.0
        for factor in cfg.resolved_speed_factors():
            speed = 1.0 / factor
            name = ("base" if factor == 1.0
                    else "fast" if speed > 1.0 else "eff")
            cls = classes.get(name)
            if cls is None:
                unit_area = self.base_core_area_mm2 * speed ** self.area_exponent
                cls = classes[name] = {
                    "count": 0,
                    "speed": round(speed, 6),
                    "area_mm2": round(unit_area, 6),
                    "static_w": round(
                        self.base_core_static_w * speed ** self.area_exponent,
                        6),
                    "dynamic_w": round(
                        self.base_core_dynamic_w * speed ** self.power_exponent,
                        6),
                }
            cls["count"] += 1
            area += cls["area_mm2"] + self.router_area_mm2
            static += cls["static_w"] + self.router_power_w
            dynamic += cls["dynamic_w"]
        return {
            "area_mm2": round(area, 6),
            "static_power_w": round(static, 6),
            "peak_dynamic_power_w": round(dynamic, 6),
            "peak_power_w": round(static + dynamic, 6),
            "core_classes": {k: classes[k] for k in sorted(classes)},
        }


@dataclasses.dataclass(frozen=True)
class SystemBudget:
    """System envelope a feasible design must fit inside.

    ``None`` disables a dimension.  :meth:`violations` names every
    breached limit (not just the first), so a pruned cell's frame entry
    says exactly why it never simulated.
    """

    max_power_w: Optional[float] = None
    max_area_mm2: Optional[float] = None
    max_cores: Optional[int] = None

    def violations(self, cost: Dict[str, Any],
                   cfg: ArchConfig) -> List[str]:
        """Budget breaches for one statically-evaluated cell."""
        out = []
        if (self.max_power_w is not None
                and cost["peak_power_w"] > self.max_power_w):
            out.append(f"peak power {cost['peak_power_w']:g} W exceeds "
                       f"budget {self.max_power_w:g} W")
        if (self.max_area_mm2 is not None
                and cost["area_mm2"] > self.max_area_mm2):
            out.append(f"area {cost['area_mm2']:g} mm2 exceeds "
                       f"budget {self.max_area_mm2:g} mm2")
        if self.max_cores is not None and cfg.n_cores > self.max_cores:
            out.append(f"{cfg.n_cores} cores exceed budget "
                       f"{self.max_cores} cores")
        return out


#: Named budget presets, lumos-style (SysSmall/Medium/Large): a mobile
#: SoC envelope, a desktop socket, and a server socket.
BUDGETS: Dict[str, SystemBudget] = {
    "small": SystemBudget(max_power_w=45.0, max_area_mm2=160.0),
    "medium": SystemBudget(max_power_w=125.0, max_area_mm2=400.0),
    "large": SystemBudget(max_power_w=260.0, max_area_mm2=700.0),
}


def resolve_budget(payload: Any) -> SystemBudget:
    """A :class:`SystemBudget` from a sweep-spec ``budget`` section.

    Accepts ``None`` (no limits), a preset name from :data:`BUDGETS`, or
    an object with ``max_power_w`` / ``max_area_mm2`` / ``max_cores``
    keys; anything else is a config error.
    """
    if payload is None:
        return SystemBudget()
    if isinstance(payload, str):
        if payload not in BUDGETS:
            raise SimConfigError(f"unknown budget preset {payload!r}; "
                                 f"choose from {sorted(BUDGETS)}")
        return BUDGETS[payload]
    if not isinstance(payload, dict):
        raise SimConfigError("'budget' must be a preset name or an object")
    known = {f.name for f in dataclasses.fields(SystemBudget)}
    unknown = set(payload) - known
    if unknown:
        raise SimConfigError(f"unknown budget field(s): {sorted(unknown)}; "
                             f"valid fields: {sorted(known)}")
    for key, value in payload.items():
        if value is not None and (not isinstance(value, (int, float))
                                  or isinstance(value, bool) or value <= 0):
            raise SimConfigError(
                f"budget field {key!r} must be a positive number, "
                f"got {value!r}")
    return SystemBudget(**payload)


def resolve_cost_model(payload: Any) -> CostModel:
    """A :class:`CostModel` from a sweep-spec ``cost_model`` section
    (``None`` for the defaults; unknown keys are rejected by name)."""
    if payload is None:
        return CostModel()
    if not isinstance(payload, dict):
        raise SimConfigError("'cost_model' must be a JSON object")
    known = {f.name for f in dataclasses.fields(CostModel)}
    unknown = set(payload) - known
    if unknown:
        raise SimConfigError(f"unknown cost_model field(s): "
                             f"{sorted(unknown)}; valid fields: "
                             f"{sorted(known)}")
    for key, value in payload.items():
        if (not isinstance(value, (int, float)) or isinstance(value, bool)
                or value <= 0):
            raise SimConfigError(
                f"cost_model field {key!r} must be a positive number, "
                f"got {value!r}")
    return CostModel(**{k: float(v) for k, v in payload.items()})


# -- objectives ---------------------------------------------------------------

#: Objective registry: name -> (sense, metric key).  ``perf`` is the
#: reciprocal of virtual completion time (bigger is better); everything
#: else is minimized.  ``energy`` is the peak-power x virtual-time proxy
#: (watt-megacycles) — deterministic because virtual time is.
OBJECTIVES: Dict[str, tuple] = {
    "perf": ("max", "perf"),
    "vtime": ("min", "work_vtime"),
    "power": ("min", "peak_power_w"),
    "area": ("min", "area_mm2"),
    "energy": ("min", "energy"),
}


def resolve_objectives(payload: Any) -> List[str]:
    """Validated objective-name list (default ``perf, power, area``)."""
    if payload is None:
        return ["perf", "power", "area"]
    if (not isinstance(payload, list) or not payload
            or not all(isinstance(x, str) for x in payload)):
        raise SimConfigError("'objectives' must be a non-empty list of "
                             f"names from {sorted(OBJECTIVES)}")
    unknown = [x for x in payload if x not in OBJECTIVES]
    if unknown:
        raise SimConfigError(f"unknown objective(s) {unknown}; "
                             f"choose from {sorted(OBJECTIVES)}")
    if len(set(payload)) != len(payload):
        raise SimConfigError(f"duplicate objectives in {payload}")
    return list(payload)


def cell_metrics(cost: Dict[str, Any],
                 work_vtime: float) -> Dict[str, float]:
    """The per-cell metric dict objectives are evaluated against."""
    return {
        "work_vtime": work_vtime,
        "perf": round(1e6 / work_vtime, 9) if work_vtime else 0.0,
        "peak_power_w": cost["peak_power_w"],
        "area_mm2": cost["area_mm2"],
        "energy": round(cost["peak_power_w"] * work_vtime / 1e6, 9),
    }
