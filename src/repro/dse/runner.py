"""Fleet-scale sweep execution over the service job queue.

:func:`run_sweep` takes an expanded :class:`~repro.dse.space.SweepPlan`
and runs every feasible cell **through the existing service machinery**
— the bounded worker pool and content-hash result cache of
:mod:`repro.service.queue` — rather than a private executor.  That
single decision buys the fleet properties for free:

* **cache-first execution** — a cell whose content hash is already in
  the store completes instantly with zero simulation work, so re-running
  a sweep after an interrupt (or after changing one axis) only simulates
  the new hashes; the ``service.simulations_started`` counter is the
  proof, and tests pin it;
* **concurrency** — ``--jobs N`` is simply the worker-pool width;
* **failure isolation** — a crashed or timed-out cell fails *that* job;
  the sweep records the cell as ``failed`` and carries on;
* **de-duplication** — two cells that resolve to the same semantic
  config share one simulation.

The **result frame** is a plain-JSON document ordered by cell index —
deterministic regardless of completion order, worker count or cache
state.  Host-dependent fields (wall clock, telemetry) never enter it:
re-running the same sweep must produce byte-identical frames
(``frame_json``), which is what makes a frame diffable and cacheable.
Execution accounting (cache hits, wall time) lives in the separate
``execution`` dict of the :class:`SweepOutcome`.
"""

from __future__ import annotations

import dataclasses
import os
import queue as _queue_mod
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

from ..harness.ascii_chart import render_scatter
from ..harness.report import format_table
from ..obs.registry import MetricsRegistry
from ..service.queue import Job, JobQueue, QueueFullError
from ..service.store import ResultStore
from .models import OBJECTIVES, cell_metrics
from .pareto import non_dominated
from .space import SweepPlan, sweep_summary

#: Result-frame schema version (bumped on incompatible layout changes).
FRAME_SCHEMA = 1

#: Default per-cell wall-clock limit.
DEFAULT_CELL_TIMEOUT_S = 300.0


@dataclasses.dataclass
class SweepOutcome:
    """What one sweep run produced.

    ``frame`` is the deterministic result document (byte-identical
    across re-runs of the same plan); ``execution`` is the run's
    host-side accounting: ``simulations_started`` / ``cache_hits``
    deltas of the metrics registry, per-status cell counts, worker
    count and wall seconds.
    """

    frame: Dict[str, Any]
    execution: Dict[str, Any]


def run_sweep(plan: SweepPlan, store_dir: Optional[str] = None,
              jobs: int = 2, queue: Optional[JobQueue] = None,
              fresh: bool = False,
              timeout_s: float = DEFAULT_CELL_TIMEOUT_S) -> SweepOutcome:
    """Execute every feasible cell of ``plan`` and build its frame.

    Either pass ``store_dir`` (a private :class:`JobQueue` with ``jobs``
    workers is created over it and drained afterwards) or an existing
    ``queue`` (the service endpoint does — the sweep then shares the
    service's pool, cache and counters).  ``fresh=True`` evicts the
    cells' cached results first, forcing re-simulation; the default is
    resume semantics — only hashes missing from the store simulate.

    Example::

        import tempfile
        from repro.dse import expand_sweep, run_sweep
        plan = expand_sweep({
            "base": {"workload": {"benchmark": "quicksort",
                                  "scale": "tiny"}},
            "axes": {"arch.n_cores": [9, 16]},
        })
        outcome = run_sweep(plan, store_dir=tempfile.mkdtemp(), jobs=2)
        assert len(outcome.frame["cells"]) == 2
    """
    own_queue = queue is None
    if own_queue:
        if store_dir is None:
            raise ValueError("run_sweep needs a store_dir or a queue")
        registry = MetricsRegistry()
        queue = JobQueue(ResultStore(store_dir), workers=jobs,
                         depth=max(64, plan.n_cells),
                         default_timeout_s=timeout_s, registry=registry)
    else:
        registry = queue.registry
    t0 = time.time()
    sims_before = registry.counters["service.simulations_started"]
    hits_before = registry.counters["service.cache_hits"]
    try:
        if fresh:
            _evict_cells(queue.store, plan)
        cell_jobs = _submit_cells(plan, queue, timeout_s)
        _await_cells(cell_jobs, timeout_s)
        frame = build_frame(plan, cell_jobs)
    finally:
        if own_queue:
            queue.shutdown(drain=True, timeout=timeout_s)
    statuses = [c["status"] for c in frame["cells"]]
    execution = {
        "jobs": jobs if own_queue else None,
        "wall_seconds": round(time.time() - t0, 6),
        "simulations_started":
            registry.counters["service.simulations_started"] - sims_before,
        "cache_hits":
            registry.counters["service.cache_hits"] - hits_before,
        "cells_ok": statuses.count("ok"),
        "cells_pruned": statuses.count("pruned"),
        "cells_failed": statuses.count("failed"),
    }
    return SweepOutcome(frame=frame, execution=execution)


def _evict_cells(store: ResultStore, plan: SweepPlan) -> None:
    """Drop the plan's cells from the result cache (``--fresh``)."""
    for cell in plan.feasible_cells():
        try:
            os.remove(store.path_for(cell.spec.spec_hash))
        except OSError:
            pass


def _submit_cells(plan: SweepPlan, queue: JobQueue,
                  timeout_s: float) -> Dict[int, Job]:
    """Submit every feasible cell; returns cell index -> job.

    A full pool FIFO is backpressure, not failure: submission retries
    until a slot frees up (the workers are draining the same queue), so
    a sweep larger than the queue depth still completes.
    """
    out: Dict[int, Job] = {}
    deadline = time.monotonic() + timeout_s * max(1, len(plan.cells))
    for cell in plan.feasible_cells():
        while True:
            try:
                out[cell.index] = queue.submit(cell.spec)
                break
            except QueueFullError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
    return out


def _await_cells(cell_jobs: Dict[int, Job], timeout_s: float) -> None:
    """Block until every submitted cell reaches a terminal state."""
    for job in cell_jobs.values():
        # Each job enforces its own wall-clock limit; the extra margin
        # here only covers queueing delay behind other cells.
        job.wait(timeout_s * max(1, len(cell_jobs)))


def build_frame(plan: SweepPlan,
                cell_jobs: Dict[int, Job]) -> Dict[str, Any]:
    """The deterministic result frame of one executed sweep.

    Cells appear in expansion-index order whatever order they completed
    in.  Only spec-determined content is included: per-cell params, spec
    hash, status, static cost, simulation metrics and ``stats_vt``.
    Host wall clock, telemetry and trace digests are deliberately
    excluded — cached documents written by other clients may or may not
    carry them, and the frame must not depend on who simulated a cell.
    """
    cells: List[Dict[str, Any]] = []
    for cell in plan.cells:
        entry: Dict[str, Any] = {
            "index": cell.index,
            "spec_hash": cell.spec.spec_hash,
            "params": dict(cell.params),
            "cost": cell.cost,
        }
        if cell.pruned:
            entry["status"] = "pruned"
            entry["violations"] = list(cell.violations)
        else:
            job = cell_jobs.get(cell.index)
            if job is None or not job.finished:
                entry["status"] = "failed"
                entry["error"] = {"type": "timeout",
                                  "message": "cell never reached a "
                                             "terminal state"}
            elif job.state == "done":
                doc = job.document
                entry["status"] = "ok"
                entry["metrics"] = cell_metrics(
                    cell.cost, float(doc["result"]["work_vtime"]))
                entry["stats_vt"] = doc.get("stats_vt", {})
            else:
                entry["status"] = "failed"
                entry["error"] = dict(job.error or
                                      {"type": "unknown", "message": ""})
        cells.append(entry)

    senses = [OBJECTIVES[name][0] for name in plan.objectives]
    keys = [OBJECTIVES[name][1] for name in plan.objectives]
    ok_cells = [c for c in cells if c["status"] == "ok"]
    points = [[c["metrics"][k] for k in keys] for c in ok_cells]
    frontier = [ok_cells[i]["index"]
                for i in non_dominated(points, senses)]
    return {
        "schema": FRAME_SCHEMA,
        "sweep": sweep_summary(plan),
        "cells": cells,
        "pareto": {
            "objectives": list(plan.objectives),
            "senses": senses,
            "cells": frontier,
        },
    }


# -- exports ------------------------------------------------------------------

def frame_json(frame: Dict[str, Any]) -> str:
    """Canonical JSON serialization of a frame (sorted keys; the byte
    stream re-runs are compared against)."""
    import json

    return json.dumps(frame, sort_keys=True, indent=2) + "\n"


def frame_csv(frame: Dict[str, Any]) -> str:
    """Flat CSV export of a frame: one row per cell, stable columns."""
    axes = sorted(frame["sweep"]["axes"])
    metric_keys = ["work_vtime", "perf", "peak_power_w", "area_mm2",
                   "energy"]
    frontier = set(frame["pareto"]["cells"])
    columns = (["index", "status", "pareto", "spec_hash"] + axes
               + metric_keys)
    lines = [",".join(columns)]
    for cell in frame["cells"]:
        metrics = cell.get("metrics", {})
        row = [str(cell["index"]), cell["status"],
               "1" if cell["index"] in frontier else "0",
               cell["spec_hash"][:12]]
        row += [str(cell["params"].get(a, "")) for a in axes]
        row += [f"{metrics[k]:.6g}" if k in metrics else ""
                for k in metric_keys]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def pareto_chart(frame: Dict[str, Any], width: int = 56,
                 height: int = 16) -> str:
    """ASCII scatter of the sweep: every cell plus the Pareto frontier.

    The first two objectives give the axes (default perf vs. power);
    frontier cells are drawn with their own glyph over the cloud.
    """
    objectives = frame["pareto"]["objectives"]
    if len(objectives) < 2:
        return "(pareto chart needs at least two objectives)"
    x_key = OBJECTIVES[objectives[1]][1]
    y_key = OBJECTIVES[objectives[0]][1]
    frontier = set(frame["pareto"]["cells"])
    cloud, front = [], []
    for cell in frame["cells"]:
        if cell["status"] != "ok":
            continue
        point = (cell["metrics"][x_key], cell["metrics"][y_key])
        (front if cell["index"] in frontier else cloud).append(point)
    return render_scatter(
        {"cell": cloud, "pareto": front},
        title=(f"{frame['sweep']['name']}: {objectives[0]} vs "
               f"{objectives[1]} ({len(front)} non-dominated of "
               f"{len(cloud) + len(front)} cells)"),
        x_label=x_key, y_label=y_key, width=width, height=height)


def frontier_table(frame: Dict[str, Any]) -> str:
    """Text table of the Pareto-optimal cells (index order)."""
    axes = sorted(frame["sweep"]["axes"])
    keys = [OBJECTIVES[name][1] for name in frame["pareto"]["objectives"]]
    frontier = set(frame["pareto"]["cells"])
    rows = []
    for cell in frame["cells"]:
        if cell["index"] not in frontier:
            continue
        rows.append([cell["index"]]
                    + [cell["params"].get(a, "") for a in axes]
                    + [cell["metrics"][k] for k in keys])
    if not rows:
        return "(empty Pareto frontier: no cell completed)"
    return format_table(["cell"] + axes + keys, rows,
                        title="Pareto frontier")


# -- service-side sweep orchestration ----------------------------------------

class SweepRun:
    """One submitted sweep and its lifecycle (service-side).

    States: ``running -> done | failed``.  ``outcome`` holds the
    :class:`SweepOutcome` once done.
    """

    def __init__(self, sweep_id: str, plan: SweepPlan) -> None:
        self.sweep_id = sweep_id
        self.plan = plan
        self.state = "running"
        self.outcome: Optional[SweepOutcome] = None
        self.error: Optional[Dict[str, str]] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self._done = threading.Event()

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe lifecycle summary (no frame payload)."""
        body = {
            "sweep_id": self.sweep_id,
            "state": self.state,
            "sweep": sweep_summary(self.plan),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.outcome is not None:
            body["execution"] = self.outcome.execution
        return body


class SweepManager:
    """Runs sweeps against a shared service :class:`JobQueue`.

    Each submission expands on the caller's thread (validation errors
    surface as HTTP 400) and executes on a daemon thread through the
    *service's own* worker pool — a sweep is just many jobs, subject to
    the same cache, dedupe and timeout rules as individual submissions.
    A sweep whose hash matches one still running returns that run
    instead of double-submitting every cell.
    """

    def __init__(self, queue: JobQueue,
                 timeout_s: float = DEFAULT_CELL_TIMEOUT_S,
                 max_sweeps_indexed: int = 256) -> None:
        self.queue = queue
        self.timeout_s = timeout_s
        self.max_sweeps_indexed = max_sweeps_indexed
        self._runs: Dict[str, SweepRun] = {}
        self._order: List[str] = []
        self._live_by_hash: Dict[str, SweepRun] = {}
        self._lock = threading.Lock()

    def submit(self, plan: SweepPlan) -> SweepRun:
        """Start (or join) the run of one expanded sweep."""
        counters = self.queue.registry.counters
        with self._lock:
            live = self._live_by_hash.get(plan.sweep_hash)
            if live is not None:
                return live
            run = SweepRun(f"{plan.short_id}-{uuid.uuid4().hex[:8]}", plan)
            self._runs[run.sweep_id] = run
            self._order.append(run.sweep_id)
            while len(self._order) > self.max_sweeps_indexed:
                victim = self._runs.get(self._order[0])
                if victim is not None and not victim.finished:
                    break
                self._order.pop(0)
                if victim is not None:
                    self._runs.pop(victim.sweep_id, None)
            self._live_by_hash[plan.sweep_hash] = run
            counters["service.sweeps_submitted"] += 1
            counters["service.sweep_cells"] += plan.n_cells
        threading.Thread(target=self._execute, args=(run,),
                         name=f"repro-sweep-{run.sweep_id}",
                         daemon=True).start()
        return run

    def get(self, sweep_id: str) -> Optional[SweepRun]:
        with self._lock:
            return self._runs.get(sweep_id)

    def runs(self) -> List[SweepRun]:
        with self._lock:
            return [self._runs[sid] for sid in self._order
                    if sid in self._runs]

    def _execute(self, run: SweepRun) -> None:
        counters = self.queue.registry.counters
        try:
            run.outcome = run_sweep(run.plan, queue=self.queue,
                                    timeout_s=self.timeout_s)
            run.state = "done"
            counters["service.sweeps_completed"] += 1
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            run.state = "failed"
            run.error = {"type": type(exc).__name__,
                         "message": str(exc) or repr(exc)}
            counters["service.sweeps_failed"] += 1
        finally:
            run.finished_at = time.time()
            with self._lock:
                if self._live_by_hash.get(run.plan.sweep_hash) is run:
                    del self._live_by_hash[run.plan.sweep_hash]
            run._done.set()


__all__ = ["DEFAULT_CELL_TIMEOUT_S", "FRAME_SCHEMA", "SweepManager",
           "SweepOutcome", "SweepRun", "build_frame", "frame_csv",
           "frame_json", "frontier_table", "pareto_chart", "run_sweep"]
