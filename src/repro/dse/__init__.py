"""Fleet-scale design-space exploration (DSE) over the simulator.

The paper's pitch is that a fast simulator makes the *many-core design
space* explorable; this package is the machinery that actually explores
it.  A JSON **sweep spec** (base config + typed parameter axes) expands
into a validated cartesian grid of cells (:mod:`~repro.dse.space`), a
first-order cost/power/area model prunes cells that cannot be built
within a system budget (:mod:`~repro.dse.models`), the survivors run
concurrently through the simulation service's cache-first job queue
(:mod:`~repro.dse.runner`), and the result frame carries the
n-objective Pareto frontier (:mod:`~repro.dse.pareto`).

Entry points: ``python -m repro sweep <specfile>`` on the command line,
``POST /v1/sweeps`` on the service, :func:`expand_sweep` +
:func:`run_sweep` from Python.  See ``docs/dse.md``.
"""

from .models import (BUDGETS, OBJECTIVES, CostModel, SystemBudget,
                     cell_metrics, resolve_budget, resolve_cost_model,
                     resolve_objectives)
from .pareto import dominates, non_dominated, non_dominated_bruteforce
from .runner import (FRAME_SCHEMA, SweepManager, SweepOutcome, SweepRun,
                     build_frame, frame_csv, frame_json, frontier_table,
                     pareto_chart, run_sweep)
from .space import (MAX_CELLS, SWEEP_SCHEMA, SweepCell, SweepPlan,
                    SweepSpecError, expand_sweep, load_sweep_spec,
                    sweep_summary)

__all__ = [
    "BUDGETS",
    "CostModel",
    "FRAME_SCHEMA",
    "MAX_CELLS",
    "OBJECTIVES",
    "SWEEP_SCHEMA",
    "SweepCell",
    "SweepManager",
    "SweepOutcome",
    "SweepPlan",
    "SweepRun",
    "SweepSpecError",
    "SystemBudget",
    "build_frame",
    "cell_metrics",
    "dominates",
    "expand_sweep",
    "frame_csv",
    "frame_json",
    "frontier_table",
    "load_sweep_spec",
    "non_dominated",
    "non_dominated_bruteforce",
    "pareto_chart",
    "resolve_budget",
    "resolve_cost_model",
    "resolve_objectives",
    "run_sweep",
    "sweep_summary",
]
