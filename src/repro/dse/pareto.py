"""N-objective non-dominated (Pareto) filtering.

The output of a sweep is a cloud of (perf, power, area, ...) points; the
*answer* is its Pareto frontier — the cells no other cell beats on every
objective at once.  :func:`non_dominated` extracts it for any number of
objectives with mixed min/max senses.

Dominance is the standard weak-dominance definition: ``a`` dominates
``b`` iff ``a`` is at least as good on **every** objective and strictly
better on **at least one**.  Duplicate points therefore never dominate
each other — both survive — and with a single objective the frontier is
exactly the set of optimum-value points.  Both edge cases are pinned by
property tests against a brute-force O(n^2) reference
(``tests/test_dse_pareto.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Recognized objective senses.
SENSES = ("min", "max")


def _keyed(points: Sequence[Sequence[float]],
           senses: Sequence[str]) -> List[Tuple[float, ...]]:
    """Normalize points to all-minimization tuples (negate max axes)."""
    if not all(s in SENSES for s in senses):
        raise ValueError(f"senses must be 'min' or 'max', got {list(senses)}")
    k = len(senses)
    keyed = []
    for i, point in enumerate(points):
        if len(point) != k:
            raise ValueError(f"point {i} has {len(point)} coordinates, "
                             f"expected {k} (one per objective)")
        keyed.append(tuple(float(x) if s == "min" else -float(x)
                           for x, s in zip(point, senses)))
    return keyed


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether all-minimization point ``a`` dominates ``b``."""
    return all(x <= y for x, y in zip(a, b)) and tuple(a) != tuple(b)


def non_dominated(points: Sequence[Sequence[float]],
                  senses: Sequence[str]) -> List[int]:
    """Indices of the Pareto-optimal points, ascending.

    ``points[i]`` is one candidate's objective vector; ``senses[j]`` is
    ``"min"`` or ``"max"`` per objective.  Returns the indices of every
    non-dominated point, sorted ascending so the frontier order is a
    deterministic function of the input order alone.

    The filter presorts lexicographically (minimization form): any
    dominator of a point sorts strictly before it, so each candidate
    only needs comparing against the already-accepted frontier — the
    classic "simple cull with presort", O(n * |frontier|) instead of the
    brute-force all-pairs O(n^2).

    Example::

        from repro.dse.pareto import non_dominated
        # maximize x, minimize y: (3, 1) beats (2, 2); (1, 0) survives
        # on y even though its x is worst.
        front = non_dominated([(2, 2), (3, 1), (1, 0)], ("max", "min"))
        assert front == [1, 2]
    """
    keyed = _keyed(points, senses)
    order = sorted(range(len(keyed)), key=lambda i: (keyed[i], i))
    frontier: List[int] = []
    frontier_keys: List[Tuple[float, ...]] = []
    for i in order:
        candidate = keyed[i]
        if not any(dominates(f, candidate) for f in frontier_keys):
            frontier.append(i)
            frontier_keys.append(candidate)
    return sorted(frontier)


def non_dominated_bruteforce(points: Sequence[Sequence[float]],
                             senses: Sequence[str]) -> List[int]:
    """All-pairs O(n^2) reference implementation of :func:`non_dominated`.

    Exists so the fast filter has an independently-written oracle; the
    property suite checks both agree on arbitrary point clouds.
    """
    keyed = _keyed(points, senses)
    return [i for i, a in enumerate(keyed)
            if not any(dominates(b, a) for b in keyed)]
