"""Chrome/Perfetto ``trace_event`` export for execution timelines.

Builds the JSON object format described in the Trace Event Format spec
(the one ``chrome://tracing`` and https://ui.perfetto.dev load directly)
from the simulator's own timeline sources:

* ``harness.trace.Tracer.export()`` — per-core task spans, drift-stall
  instants and message records, all in **virtual time**;
* the sharded backend's per-worker host-round records and the
  coordinator's escalation events, in **wall-clock time**.

The two time bases cannot share an axis, so they live on separate
"processes" (Perfetto track groups): pid 1 carries one track per
simulated core where 1 virtual cycle is rendered as 1 µs, pid 2 carries
coordinator escalation instants, and pids 10+sid carry one wall-clock
track per shard worker.  The pid-1 metadata name says so explicitly —
read virtual-track durations as cycles, not microseconds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Process ids grouping tracks by time base.
PID_VIRTUAL = 1          # simulated cores, virtual time (1 cycle = 1 us)
PID_COORDINATOR = 2      # sharded coordinator, wall clock
PID_WORKER_BASE = 10     # shard worker sid -> pid 10 + sid, wall clock

_VALID_PHASES = frozenset("BEXiIMsftPnObe")


def build_chrome_trace(trace: Optional[dict] = None,
                       host_rounds: Optional[Dict[int, list]] = None,
                       coord_events: Optional[Iterable[dict]] = None,
                       include_messages: bool = False) -> dict:
    """Assemble a Chrome ``trace_event`` JSON document.

    ``trace`` is a ``Tracer.export()`` dict (``spans``/``stalls``/
    ``messages``); ``host_rounds`` maps shard id to ``(round_no,
    start_s, dur_s)`` tuples; ``coord_events`` is an iterable of
    ``{"name": ..., "ts_s": ..., ...}`` coordinator instants (waivers,
    reliefs).  Message instants flood dense traces, so they are opt-in.
    """
    events: List[dict] = []

    if trace is not None:
        events.append(_meta(PID_VIRTUAL, "process_name",
                            "simulated cores (virtual time, 1 cycle = 1us)"))
        cores = set()
        for span in trace.get("spans", ()):
            core = span["core"]
            cores.add(core)
            events.append({
                "ph": "X", "pid": PID_VIRTUAL, "tid": core,
                "name": span.get("task", "task"), "cat": "task",
                "ts": span["start"],
                "dur": max(span["end"] - span["start"], 0.0),
            })
        for stall in trace.get("stalls", ()):
            core = stall["core"]
            cores.add(core)
            events.append({
                "ph": "i", "pid": PID_VIRTUAL, "tid": core, "s": "t",
                "name": "drift-stall", "cat": "sync",
                "ts": stall["vtime"],
                "args": {"floor": stall.get("floor")},
            })
        if include_messages:
            for msg in trace.get("messages", ()):
                core = msg["dst"]
                cores.add(core)
                events.append({
                    "ph": "i", "pid": PID_VIRTUAL, "tid": core, "s": "t",
                    "name": msg.get("kind", "msg"), "cat": "message",
                    "ts": msg["arrival"],
                    "args": {"src": msg.get("src"),
                             "send_time": msg.get("send_time")},
                })
        for core in sorted(cores):
            events.append(_meta(PID_VIRTUAL, "thread_name", f"core {core}",
                                tid=core))

    if coord_events:
        events.append(_meta(PID_COORDINATOR, "process_name",
                            "shard coordinator (wall clock)"))
        events.append(_meta(PID_COORDINATOR, "thread_name", "escalation",
                            tid=0))
        for ev in coord_events:
            events.append({
                "ph": "i", "pid": PID_COORDINATOR, "tid": 0, "s": "p",
                "name": ev["name"], "cat": "protocol",
                "ts": ev["ts_s"] * 1e6,
                "args": {k: v for k, v in ev.items()
                         if k not in ("name", "ts_s")},
            })

    if host_rounds:
        for sid in sorted(host_rounds):
            pid = PID_WORKER_BASE + sid
            events.append(_meta(pid, "process_name",
                                f"shard worker {sid} (wall clock)"))
            events.append(_meta(pid, "thread_name", "rounds", tid=0))
            for round_no, start_s, dur_s in host_rounds[sid]:
                events.append({
                    "ph": "X", "pid": pid, "tid": 0,
                    "name": f"round {round_no}", "cat": "host",
                    "ts": start_s * 1e6, "dur": dur_s * 1e6,
                })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _meta(pid: int, name: str, value: str, tid: int = 0) -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": name,
            "args": {"name": value}, "ts": 0}


def validate_chrome_trace(doc) -> None:
    """Raise ``ValueError`` unless ``doc`` is structurally valid
    trace_event JSON (object format).  Used by tests and the CLI sink;
    intentionally strict about the fields Perfetto's importer needs."""
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must have a 'traceEvents' list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"traceEvents[{i}] has invalid phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(f"traceEvents[{i}].{field} must be an int")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"traceEvents[{i}].name must be a string")
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}].ts must be a number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}] complete event needs dur >= 0")
