"""Structured telemetry registry: counters, per-core vectors, histograms.

This is the data layer of the observability subsystem (see
``docs/observability.md``).  A :class:`Telemetry` object is attached to
a machine when ``ArchConfig.telemetry`` is non-empty; every hot-path
instrumentation site in the engine/fabric/runtime guards on a cached
``telemetry is not None`` check, so a machine built without telemetry
pays nothing beyond one attribute load per guard.

Design constraints, in order:

1. **Never perturb the simulation.**  Instruments only *read* simulator
   state and write to telemetry-private structures; golden numbers stay
   bit-identical with telemetry enabled (pinned by ``tests/test_obs.py``).
2. **Mergeable snapshots.**  ``snapshot()`` returns a plain-JSON dict and
   :func:`merge_snapshots` combines any number of them — counters and
   histogram buckets sum, per-core vectors add element-wise, gauges take
   the max — so the sharded coordinator folds per-worker telemetry
   exactly like it folds ``SimStats``.
3. **Cheap when on.**  Hot handles (``tel.actions``, ``tel.admits`` ...)
   are plain dicts/lists resolved once at construction; an instrumented
   event costs one container operation, not a registry lookup.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_INF = math.inf

#: Valid parts for an ``ArchConfig.telemetry`` spec.  ``counters`` is the
#: structured registry below; ``timeline`` asks the CLI/backend to keep
#: execution spans for the Chrome-trace export; ``profile`` enables the
#: sampling wall-clock profiler.
TELEMETRY_PARTS = ("counters", "timeline", "profile")

#: Snapshot schema version, bumped on incompatible layout changes.
SNAPSHOT_SCHEMA = 1

# Fixed bucket bounds.  Merging requires identical bounds on both sides,
# so these are module constants, not per-run choices.
FUSION_BOUNDS = (1, 2, 4, 8, 16, 32, 64)
INBOX_BOUNDS = (1, 2, 4, 8, 16, 32)
DRIFT_BOUNDS = (-1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0, 2.0)
WINDOW_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128)
ROUND_MS_BOUNDS = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0)


def parse_spec(spec) -> frozenset:
    """Normalize a telemetry spec to a frozenset of part names.

    Accepts ``""``/``None``/``False`` (off), ``"all"``/``"on"``/``"1"``/
    ``True`` (every part), or a comma-separated subset of
    :data:`TELEMETRY_PARTS`.  Raises ``ValueError`` on unknown parts so a
    typo fails at config time, not silently at summarize time.
    """
    if not spec:
        return frozenset()
    if spec is True or spec in ("all", "on", "1", "true"):
        return frozenset(TELEMETRY_PARTS)
    parts = frozenset(tok.strip() for tok in str(spec).split(",") if tok.strip())
    unknown = parts - frozenset(TELEMETRY_PARTS)
    if unknown:
        raise ValueError(
            f"unknown telemetry part(s) {sorted(unknown)}; "
            f"valid parts: {', '.join(TELEMETRY_PARTS)} (or 'all')")
    return parts


class Histogram:
    """Fixed-bounds histogram: bucket ``i`` counts values ``<= bounds[i]``;
    the final bucket is the overflow (``> bounds[-1]``)."""

    __slots__ = ("bounds", "counts")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must ascend: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def as_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


class MetricsRegistry:
    """Namespace of counters / per-core vectors / histograms / gauges."""

    def __init__(self, n_cores: int = 0):
        self.n_cores = n_cores
        self.counters: Dict[str, float] = defaultdict(int)
        # Families: counters keyed by an arbitrary hashable (e.g. an
        # action *class* — identity hashing beats string building on the
        # dispatch path); flattened to "family.key" strings at snapshot.
        self.families: Dict[str, dict] = {}
        self.per_core: Dict[str, List[int]] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, float] = {}

    def counter_family(self, name: str) -> dict:
        fam = self.families.get(name)
        if fam is None:
            fam = self.families[name] = defaultdict(int)
        return fam

    def counter_vec(self, name: str) -> List[int]:
        vec = self.per_core.get(name)
        if vec is None:
            vec = self.per_core[name] = [0] * self.n_cores
        return vec

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        elif hist.bounds != tuple(bounds):
            raise ValueError(f"histogram {name!r} already registered with "
                             f"bounds {hist.bounds}, requested {tuple(bounds)}")
        return hist

    def gauge_max(self, name: str, value) -> None:
        cur = self.gauges.get(name)
        if cur is None or value > cur:
            self.gauges[name] = value

    def snapshot(self) -> dict:
        """JSON-serializable snapshot; zero-valued vectors and empty
        histograms are dropped to keep ``metrics.json`` readable (merge
        treats absent keys as zeros)."""
        counters = {k: v for k, v in self.counters.items() if v}
        for fam_name, fam in self.families.items():
            for key, v in fam.items():
                if v:
                    label = getattr(key, "__name__", None) or str(key)
                    counters[f"{fam_name}.{label}"] = v
        return {
            "schema": SNAPSHOT_SCHEMA,
            "n_cores": self.n_cores,
            "counters": counters,
            "per_core": {k: list(v) for k, v in self.per_core.items()
                         if any(v)},
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()
                           if h.total},
            "gauges": dict(self.gauges),
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge snapshot dicts: counters/histograms sum, per-core vectors add
    element-wise, gauges take the max.  Histogram bounds must match
    (they are module constants, so they do unless schemas diverge)."""
    merged = {"schema": SNAPSHOT_SCHEMA, "n_cores": 0, "counters": {},
              "per_core": {}, "histograms": {}, "gauges": {}}
    profiles: Dict[str, int] = {}
    profile_meta: dict = {}
    for snap in snapshots:
        if not snap:
            continue
        if snap.get("schema", SNAPSHOT_SCHEMA) != SNAPSHOT_SCHEMA:
            raise ValueError(f"cannot merge telemetry snapshot with schema "
                             f"{snap.get('schema')!r} (expected {SNAPSHOT_SCHEMA})")
        merged["n_cores"] = max(merged["n_cores"], snap.get("n_cores", 0))
        for k, v in snap.get("counters", {}).items():
            merged["counters"][k] = merged["counters"].get(k, 0) + v
        for k, vec in snap.get("per_core", {}).items():
            cur = merged["per_core"].get(k)
            if cur is None:
                merged["per_core"][k] = list(vec)
            else:
                if len(vec) > len(cur):
                    cur.extend([0] * (len(vec) - len(cur)))
                for i, v in enumerate(vec):
                    cur[i] += v
        for k, h in snap.get("histograms", {}).items():
            cur = merged["histograms"].get(k)
            if cur is None:
                merged["histograms"][k] = {"bounds": list(h["bounds"]),
                                           "counts": list(h["counts"])}
            else:
                if list(cur["bounds"]) != list(h["bounds"]):
                    raise ValueError(f"histogram {k!r} bounds differ across "
                                     f"snapshots: {cur['bounds']} vs {h['bounds']}")
                cur["counts"] = [a + b for a, b in zip(cur["counts"], h["counts"])]
        for k, v in snap.get("gauges", {}).items():
            cur = merged["gauges"].get(k)
            if cur is None or v > cur:
                merged["gauges"][k] = v
        prof = snap.get("profile")
        if prof:
            profile_meta = {k: v for k, v in prof.items() if k != "samples"}
            for k, v in prof.get("samples", {}).items():
                profiles[k] = profiles.get(k, 0) + v
    if profiles:
        profile_meta["total_samples"] = sum(profiles.values())
        merged["profile"] = dict(profile_meta, samples=profiles)
    return merged


class Telemetry:
    """Per-machine telemetry facade: a registry plus cached hot handles.

    The engine, fabric and runtime hold a reference to this object and
    touch its plain-container attributes directly; everything funnels
    into :meth:`snapshot` for sinks and coordinator-side merging.
    """

    def __init__(self, spec="all", n_cores: int = 0):
        self.parts = parse_spec(spec) or frozenset(TELEMETRY_PARTS)
        self.registry = MetricsRegistry(n_cores)
        reg = self.registry
        # Current engine phase, sampled by obs.profiler.SamplingProfiler.
        self.phase = "startup"
        self.profile: Optional[dict] = None
        # Sharded workers append (round_no, start_offset_s, dur_s); the
        # coordinator lifts these into per-worker wall-clock tracks.
        self.host_rounds: List[Tuple[int, float, float]] = []
        # --- hot handles -------------------------------------------------
        self.counters = reg.counters
        self.actions = reg.counter_family("engine.actions")
        self.admits = reg.counter_vec("sync.admitted_slices")
        self.stalls = reg.counter_vec("sync.drift_stalls")
        self.relax_waves = reg.counter_vec("fabric.relax_waves")
        self.fusion_hist = reg.histogram("engine.fusion_len", FUSION_BOUNDS)
        self.inbox_hist = reg.histogram("engine.inbox_depth", INBOX_BOUNDS)
        self.drift_hist = reg.histogram("sync.drift_over_T", DRIFT_BOUNDS)

    def describe(self) -> str:
        parts = ",".join(p for p in TELEMETRY_PARTS if p in self.parts)
        return f"on ({parts})"

    # --- slice/stall notes ----------------------------------------------
    # Called from the engine only under a ``telemetry is not None`` guard.
    # Drift is computed from raw neighbour/birth state rather than
    # ``fabric.floor()`` because the latter may trigger an exact-mode
    # shadow recompute — observation must never change *when* fabric
    # state mutates.

    def _drift_ratio(self, fabric, cid):
        nbrs = fabric._neighbors[cid]
        published = fabric.published
        floor = min(map(published.__getitem__, nbrs)) if nbrs else _INF
        births = fabric._births_min[cid]
        if births < floor:
            floor = births
        if floor == _INF:
            return None
        return (fabric.vtime[cid] - floor) / fabric.T

    def note_slice(self, cid: int, fabric) -> None:
        self.admits[cid] += 1
        if fabric.active[cid]:
            ratio = self._drift_ratio(fabric, cid)
            if ratio is not None:
                self.drift_hist.observe(ratio)

    def note_stall(self, cid: int, fabric) -> None:
        self.stalls[cid] += 1
        if fabric.active[cid]:
            ratio = self._drift_ratio(fabric, cid)
            if ratio is not None:
                self.drift_hist.observe(ratio)

    def snapshot(self) -> dict:
        snap = self.registry.snapshot()
        snap["spec"] = ",".join(p for p in TELEMETRY_PARTS if p in self.parts)
        if self.profile is not None:
            snap["profile"] = self.profile
        if self.host_rounds:
            snap["host_rounds"] = [list(r) for r in self.host_rounds]
        return snap
