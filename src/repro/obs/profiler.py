"""Sampling wall-clock profiler attributing time to engine phases.

A frame-walking profiler (``sys.setprofile``, ``signal.setitimer`` +
traceback inspection) costs far more than the 5 % overhead budget in a
pure-Python inner loop, and its output — Python function names — is the
wrong vocabulary anyway.  Instead the engine maintains a *current-phase
marker* (``Telemetry.phase``, a plain string attribute it already
updates under its telemetry guards) and a daemon thread samples that
marker at a fixed interval.  One attribute read per sample, no frames,
no signals; the GIL makes the read atomic.

Phases the engine/coordinator report: ``execute`` (task slices),
``service`` (architectural message handling), ``rescue`` (no-runnable
recovery rounds), ``shadow_fixpoint`` (exact shadow recompute),
``dispatch``/``wait_workers`` (sharded coordinator), ``idle``.

The profile is statistical: with the default 5 ms interval a 2-second
run yields ~400 samples, enough to rank phases but not to time a single
short one.  Samples land in ``telemetry.profile`` on :meth:`stop` and
travel inside the telemetry snapshot.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

DEFAULT_INTERVAL_S = 0.005


class SamplingProfiler:
    """Samples ``telemetry.phase`` from a daemon thread.

    Usage::

        with SamplingProfiler(machine.telemetry):
            machine.run(root)
        print(machine.telemetry.profile["samples"])
    """

    def __init__(self, telemetry, interval_s: float = DEFAULT_INTERVAL_S):
        self.telemetry = telemetry
        self.interval_s = interval_s
        self.samples = Counter()
        self._stop = threading.Event()
        self._thread = None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-obs-profiler")
        self._thread.start()
        return self

    def _loop(self) -> None:
        telemetry = self.telemetry
        samples = self.samples
        wait = self._stop.wait
        interval = self.interval_s
        while not wait(interval):
            samples[telemetry.phase] += 1

    def stop(self) -> dict:
        if self._thread is None:
            raise RuntimeError("profiler not started")
        self._stop.set()
        self._thread.join()
        self._thread = None
        profile = {
            "interval_s": self.interval_s,
            "total_samples": sum(self.samples.values()),
            "samples": dict(self.samples),
        }
        self.telemetry.profile = profile
        return profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def profile_phases(telemetry, fn, *args,
                   interval_s: float = DEFAULT_INTERVAL_S, **kwargs):
    """Run ``fn(*args, **kwargs)`` under a sampling profiler; returns
    ``(result, profile_dict)``."""
    prof = SamplingProfiler(telemetry, interval_s)
    prof.start()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile = prof.stop()
    return result, profile
