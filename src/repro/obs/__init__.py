"""Observability subsystem: telemetry registry, Chrome traces, profiler.

Opt-in via ``ArchConfig.telemetry`` (CLI ``--telemetry[=spec]``); see
``docs/observability.md`` for the full story.  Everything here is
observation-only — enabling telemetry never changes simulation results
(golden numbers are pinned with it on in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .chrome_trace import build_chrome_trace, validate_chrome_trace
from .profiler import SamplingProfiler, profile_phases
from .registry import (TELEMETRY_PARTS, Histogram, MetricsRegistry, Telemetry,
                       merge_snapshots, parse_spec)

__all__ = [
    "TELEMETRY_PARTS", "Histogram", "MetricsRegistry", "Telemetry",
    "merge_snapshots", "parse_spec", "build_chrome_trace",
    "validate_chrome_trace", "SamplingProfiler", "profile_phases",
    "collect_snapshot", "collect_live_snapshot", "write_outputs",
    "load_metrics", "summarize_metrics",
]


def collect_snapshot(backend) -> Optional[dict]:
    """Uniform snapshot access: sharded backends expose a merged
    ``telemetry_snapshot()``; a serial machine carries ``.telemetry``."""
    getter = getattr(backend, "telemetry_snapshot", None)
    if getter is not None:
        return getter()
    telemetry = getattr(backend, "telemetry", None)
    return telemetry.snapshot() if telemetry is not None else None


def collect_live_snapshot(backend, retries: int = 5) -> Optional[dict]:
    """Snapshot a backend's telemetry while it may still be running.

    :func:`collect_snapshot` iterates the registry's plain dicts; when a
    simulation thread is concurrently incrementing counters that can
    raise ``RuntimeError: dictionary changed size during iteration``.
    The registry only ever *adds* keys, so retrying is sound: a retry
    sees a superset of the previous attempt.  Used by the service layer
    (``repro.service``) for per-job progress snapshots; returns the
    last error-free snapshot or ``None`` when every attempt raced or
    the backend has no telemetry.
    """
    for _ in range(max(1, retries)):
        try:
            return collect_snapshot(backend)
        except RuntimeError:
            continue
    return None


def write_outputs(out_dir: str, metrics: Optional[dict] = None,
                  timeline: Optional[dict] = None) -> dict:
    """Write ``metrics.json`` / ``timeline.json`` under ``out_dir``
    (created if missing); returns ``{name: path}`` for what was written."""
    os.makedirs(out_dir, exist_ok=True)
    written = {}
    if metrics is not None:
        path = os.path.join(out_dir, "metrics.json")
        with open(path, "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written["metrics"] = path
    if timeline is not None:
        validate_chrome_trace(timeline)
        path = os.path.join(out_dir, "timeline.json")
        with open(path, "w") as fh:
            json.dump(timeline, fh)
        written["timeline"] = path
    return written


def load_metrics(path: str) -> dict:
    """Load a metrics snapshot from a ``metrics.json`` file or a
    ``--telemetry-out`` directory containing one."""
    if os.path.isdir(path):
        path = os.path.join(path, "metrics.json")
    with open(path) as fh:
        return json.load(fh)


def summarize_metrics(snapshot: dict, top: int = 12) -> str:
    """Human-readable digest of a snapshot: top counters, per-core
    totals, histograms and the profile — the body of
    ``python -m repro obs summarize``."""
    from ..harness.report import format_telemetry

    return format_telemetry(snapshot, top=top)
