"""Bounded job queue and worker pool for the simulation service.

A :class:`JobQueue` owns a fixed pool of worker threads pulling from a
bounded FIFO.  Each job executes through the existing backends —
:func:`repro.arch.build_backend` picks serial or sharded from the
spec's ``ArchConfig`` — so the service adds no execution semantics of
its own.  The queue contributes exactly four behaviours:

* **cache consultation** — a submission whose content hash is already
  in the :class:`~repro.service.store.ResultStore` completes instantly
  with ``cache_hit=True`` and *zero* simulation work (the
  ``service.simulations_started`` counter is the proof);
* **de-duplication** — a submission whose hash matches a job that is
  currently queued or running returns *that* job instead of enqueueing
  a second simulation of the same spec;
* **per-job timeouts** — each job runs in its own thread which the pool
  worker joins with a deadline; on expiry the job fails with a
  ``timeout`` error and any late result from the abandoned run is
  discarded (never stored, never reported);
* **checkpointed execution** — a job submitted with the
  ``checkpoint_every`` option persists a run snapshot
  (``repro.checkpoint``) beside the result cache at every boundary it
  crosses; when a checkpointing job dies or times out, the snapshot is
  retained and the job is marked ``resumable``, so resubmitting the
  same spec *resumes* from the last checkpoint (verified replay)
  instead of restarting, completes to the bit-identical document, and
  deletes the snapshot on success;
* **graceful drain** — :meth:`JobQueue.shutdown` stops admissions and
  waits for queued and in-flight jobs to reach a terminal state before
  stopping the workers, so accepted work is not lost on shutdown.

Job lifecycle: ``queued -> running -> done | failed``; every transition
is timestamped and queryable via :meth:`JobQueue.get` /
:meth:`Job.summary`.
"""

from __future__ import annotations

import dataclasses
import os
import queue as _queue
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from ..obs.registry import MetricsRegistry
from .hashing import ResolvedSpec
from .store import ResultStore

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

#: In-memory job index soft cap; oldest *terminal* jobs are evicted
#: beyond it (results stay in the store — only bookkeeping is pruned).
MAX_JOBS_INDEXED = 4096


class QueueFullError(RuntimeError):
    """The bounded submission queue is at capacity (HTTP 503 material)."""


def _after_checkpoint(job: "Job", path: str) -> None:
    """Seam invoked after every checkpoint persist.

    A no-op in production; tests monkeypatch it to simulate a worker
    dying mid-run with a checkpoint already on disk."""


class Job:
    """One submitted simulation and its lifecycle bookkeeping.

    ``document`` holds the persisted result payload once the job is
    ``done`` (for cache hits, the stored payload verbatim); ``error``
    holds a structured ``{"type", "message"}`` dict once ``failed``.
    ``backend`` references the live execution backend while ``running``
    so status queries can snapshot its telemetry mid-flight.
    """

    def __init__(self, job_id: str, spec: ResolvedSpec,
                 timeout_s: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.timeout_s = timeout_s
        self.state = "queued"
        self.cache_hit = False
        self.deduped = False
        self.resumable = False  # a retained checkpoint can resume this spec
        self.document: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, str]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.backend: Any = None
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- transitions (queue-internal) ------------------------------------
    def _start(self, backend_holder: Any = None) -> None:
        with self._lock:
            self.state = "running"
            self.started_at = time.time()

    def _finish(self, document: Dict[str, Any]) -> bool:
        """Mark done; returns False when the job already reached a
        terminal state (e.g. a timeout won the race) and the result
        must be discarded."""
        with self._lock:
            if self.state != "running":
                return False
            self.state = "done"
            self.document = document
            self.finished_at = time.time()
        self._done.set()
        return True

    def _fail(self, err_type: str, message: str) -> bool:
        with self._lock:
            if self.state in ("done", "failed"):
                return False
            self.state = "failed"
            self.error = {"type": err_type, "message": message}
            self.finished_at = time.time()
        self._done.set()
        return True

    # -- queries ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; True on arrival."""
        return self._done.wait(timeout)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe lifecycle summary (no result payload)."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "spec_hash": self.spec.spec_hash,
                "state": self.state,
                "cache_hit": self.cache_hit,
                "deduped": self.deduped,
                "resumable": self.resumable,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
            }


class JobQueue:
    """Bounded worker pool executing resolved specs against the cache.

    Example::

        import tempfile
        from repro.service import JobQueue, ResultStore, resolve_spec

        store = ResultStore(tempfile.mkdtemp())
        jq = JobQueue(store, workers=1)
        job = jq.submit(resolve_spec({
            "arch": {"preset": "shared_mesh", "n_cores": 9},
            "workload": {"benchmark": "quicksort", "scale": "tiny"},
        }))
        assert job.wait(120) and job.state == "done"
        jq.shutdown()
    """

    def __init__(self, store: ResultStore, workers: int = 2,
                 depth: int = 64, default_timeout_s: float = 300.0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.default_timeout_s = default_timeout_s
        self._queue: _queue.Queue = _queue.Queue(maxsize=depth)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._live_by_hash: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._accepting = True
        self._seq = 0
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ------------------------------------------------------
    def submit(self, spec: ResolvedSpec) -> Job:
        """Admit one resolved spec; returns its (possibly shared) Job.

        Outcomes, checked in order under the queue lock:

        1. stored result for this hash -> a Job already in ``done`` state
           with ``cache_hit=True`` (no simulation, no queue slot);
        2. live job for this hash -> that existing Job, with
           ``deduped=True`` marking this submission;
        3. otherwise a fresh Job enters the FIFO (``queued``).

        Raises :class:`QueueFullError` when the FIFO is at capacity and
        ``RuntimeError`` after :meth:`shutdown`.
        """
        counters = self.registry.counters
        with self._lock:
            if not self._accepting:
                raise RuntimeError("job queue is shut down")
            counters["service.jobs_submitted"] += 1
            cached = self.store.get(spec.spec_hash)
            if cached is not None:
                job = Job(self._next_id(spec), spec,
                          timeout_s=self._timeout_for(spec))
                job.cache_hit = True
                job.state = "done"
                job.document = cached
                job.finished_at = job.submitted_at
                job._done.set()
                self._index(job)
                counters["service.cache_hits"] += 1
                return job
            live = self._live_by_hash.get(spec.spec_hash)
            if live is not None:
                live.deduped = True
                counters["service.deduped"] += 1
                return live
            job = Job(self._next_id(spec), spec,
                      timeout_s=self._timeout_for(spec))
            try:
                self._queue.put_nowait(job)
            except _queue.Full:
                counters["service.rejected_full"] += 1
                raise QueueFullError(
                    f"queue at capacity ({self._queue.maxsize} jobs)"
                ) from None
            self._live_by_hash[spec.spec_hash] = job
            self._index(job)
            counters["service.jobs_queued"] += 1
            return job

    def _timeout_for(self, spec: ResolvedSpec) -> float:
        timeout = spec.options.get("timeout_s")
        return float(timeout) if timeout else self.default_timeout_s

    def _next_id(self, spec: ResolvedSpec) -> str:
        self._seq += 1
        return f"{spec.short_id}-{self._seq}"

    def _index(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        while len(self._order) > MAX_JOBS_INDEXED:
            victim = self._jobs.get(self._order[0])
            if victim is not None and not victim.finished:
                break  # never evict live bookkeeping
            self._order.pop(0)
            if victim is not None:
                self._jobs.pop(victim.job_id, None)

    # -- queries ---------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The job by id, or None when unknown/evicted."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All indexed jobs, oldest first."""
        with self._lock:
            return [self._jobs[jid] for jid in self._order
                    if jid in self._jobs]

    def counts(self) -> Dict[str, int]:
        """Job counts by lifecycle state (for /health)."""
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    # -- execution -------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                return
            self._run_with_timeout(job)
            self._queue.task_done()

    def _run_with_timeout(self, job: Job) -> None:
        """Run one job in a joinable child thread, bounded by its timeout.

        The child thread cannot be killed (Python offers no safe thread
        cancellation), so on timeout the job is *failed and abandoned*:
        its eventual result is discarded by the ``_finish`` state guard,
        the pool slot is reclaimed immediately, and the daemon child
        exits with the process.  Sharded jobs additionally get the
        timeout as their per-coordination-step bound, which terminates
        their worker processes for real.
        """
        job._start()
        runner = threading.Thread(target=self._execute_guarded, args=(job,),
                                  name=f"repro-job-{job.job_id}", daemon=True)
        runner.start()
        runner.join(job.timeout_s)
        if runner.is_alive():
            # A checkpointing job is not *lost* on timeout: its latest
            # snapshot stays on disk and the job is marked resumable,
            # so resubmitting the same spec continues from the
            # checkpoint instead of restarting from zero.
            resumable = self._checkpoint_on_disk(job)
            message = f"job exceeded {job.timeout_s:g}s wall-clock limit"
            if resumable:
                message += ("; checkpoint retained, resubmit to resume "
                            "from it")
            if resumable:
                job.resumable = True  # before the fail event wakes waiters
            if job._fail("timeout", message):
                self.registry.counters["service.timeouts"] += 1
                if resumable:
                    self.registry.counters["service.timeouts_resumable"] += 1
            self._release(job)

    def _execute_guarded(self, job: Job) -> None:
        try:
            document = self._execute(job)
            # Persist *before* the job becomes visibly done, so a client
            # (or duplicate submission) woken by the done event always
            # finds the cache entry.  A job the timeout already failed
            # skips the store entirely — late results are discarded.
            with job._lock:
                still_running = job.state == "running"
            if still_running:
                self.store.put(job.spec.spec_hash, document)
                # The run is complete and cached; its checkpoint (if
                # any) has nothing left to resume.
                self._discard_checkpoint(job)
            if job._finish(document):
                self.registry.counters["service.completed"] += 1
        except Exception as exc:  # noqa: BLE001 - report, don't crash pool
            # Flag resumability *before* the fail event wakes waiters,
            # so a client observing the terminal state always sees it.
            if self._checkpoint_on_disk(job):
                job.resumable = True
            job.trace = traceback.format_exc()
            if job._fail(type(exc).__name__, str(exc) or repr(exc)):
                self.registry.counters["service.failures"] += 1
                self.registry.counters[
                    f"service.failures.{type(exc).__name__}"] += 1
        finally:
            job.backend = None
            self._release(job)

    def _release(self, job: Job) -> None:
        with self._lock:
            if self._live_by_hash.get(job.spec.spec_hash) is job:
                del self._live_by_hash[job.spec.spec_hash]

    # -- checkpoints -----------------------------------------------------
    def _checkpoint_path(self, job: Job) -> str:
        """Snapshot file for a spec, keyed by content hash beside the
        result cache (one live checkpoint per distinct simulation)."""
        return os.path.join(self.store.root, "checkpoints",
                            f"{job.spec.spec_hash}.ckpt")

    def _checkpoint_on_disk(self, job: Job) -> bool:
        return (bool(job.spec.options.get("checkpoint_every"))
                and os.path.exists(self._checkpoint_path(job)))

    def _discard_checkpoint(self, job: Job) -> None:
        if not job.spec.options.get("checkpoint_every"):
            return
        try:
            os.remove(self._checkpoint_path(job))
        except OSError:
            pass

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Simulate one job through the configured backend.

        Builds the workload and backend exactly like ``python -m repro
        run`` does, optionally attaches tracing for the canonical
        digest, verifies the simulated output with the workload's
        independent checker, and serializes everything with
        :func:`repro.harness.results.run_record`.
        """
        from ..arch import build_backend, build_machine
        from ..harness.results import run_record
        from ..harness.trace import trace_digest as digest_fn
        from ..obs import collect_live_snapshot
        from ..workloads import get_workload

        spec = job.spec
        options = spec.options
        if options.get("checkpoint_every"):
            return self._execute_checkpointed(job)
        want_digest = bool(options.get("digest", True))
        overrides: Dict[str, Any] = {}
        telemetry = options.get("telemetry")
        if telemetry:
            overrides["telemetry"] = telemetry
        self.registry.counters["service.simulations_started"] += 1
        wl = spec.workload
        workload = get_workload(wl["benchmark"], scale=wl["scale"],
                                seed=wl["seed"], memory=spec.cfg.memory)
        digest: Optional[str] = None
        if spec.cfg.backend == "sharded":
            from ..parallel import WorkloadSpec

            if want_digest:
                overrides["collect_trace"] = True
            cfg = dataclasses.replace(spec.cfg, **overrides)
            backend = build_backend(cfg)
            job.backend = backend
            (result,) = backend.run_workloads(
                [WorkloadSpec(wl["benchmark"], scale=wl["scale"],
                              seed=wl["seed"], memory=cfg.memory,
                              root_core=wl["root_core"])],
                timeout=job.timeout_s)
            stats, protocol = backend.stats, backend.protocol
            if want_digest and backend.trace is not None:
                digest = digest_fn(backend.trace)
        else:
            cfg = (dataclasses.replace(spec.cfg, **overrides)
                   if overrides else spec.cfg)
            machine = build_machine(cfg)
            job.backend = backend = machine
            tracer = None
            if want_digest:
                from ..harness.trace import Tracer

                tracer = Tracer(machine)
            result = machine.run(workload.root,
                                 root_core=wl["root_core"])
            stats, protocol = machine.stats, None
            if tracer is not None:
                digest = digest_fn(tracer.export())
        workload.verify(result["output"])
        snapshot = collect_live_snapshot(backend) if telemetry else None
        document = run_record(result, stats, protocol=protocol,
                              trace_digest=digest, telemetry=snapshot,
                              verified=True)
        document["spec"] = spec.canonical
        document["spec_hash"] = spec.spec_hash
        return document

    def _execute_checkpointed(self, job: Job) -> Dict[str, Any]:
        """Checkpointing twin of :meth:`_execute`.

        Runs the same simulation, but persists a snapshot at every
        ``checkpoint_every`` boundary (virtual-time cycles serial,
        coordination rounds sharded), and when a retained snapshot for
        this spec hash already exists, *resumes* from it by verified
        replay (``repro.checkpoint``) instead of restarting.  The final
        document is bit-identical either way.  A corrupt or
        version-mismatched snapshot file is discarded and the run
        starts fresh; a replay divergence
        (``CheckpointMismatchError``) fails the job loudly.
        """
        from ..arch import build_backend, build_machine
        from ..checkpoint import (CheckpointCorruptError,
                                  CheckpointVersionError, load_snapshot,
                                  make_snapshot, save_snapshot)
        from ..checkpoint.state import (capture_machine_state,
                                        verify_machine_state)
        from ..harness.results import run_record
        from ..harness.trace import trace_digest as digest_fn
        from ..obs import collect_live_snapshot
        from ..parallel import WorkloadSpec
        from ..workloads import get_workload

        spec = job.spec
        options = spec.options
        every = float(options["checkpoint_every"])
        want_digest = bool(options.get("digest", True))
        telemetry = options.get("telemetry")
        overrides: Dict[str, Any] = {}
        if telemetry:
            overrides["telemetry"] = telemetry
        path = self._checkpoint_path(job)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        snap = None
        if os.path.exists(path):
            try:
                snap = load_snapshot(path)
            except (CheckpointCorruptError, CheckpointVersionError):
                os.remove(path)  # unusable: start fresh
        if snap is not None:
            self.registry.counters["service.resumed_from_checkpoint"] += 1
        self.registry.counters["service.simulations_started"] += 1
        wl = spec.workload
        workload = get_workload(wl["benchmark"], scale=wl["scale"],
                                seed=wl["seed"], memory=spec.cfg.memory)
        # A resume rebuilds from the snapshot's own config: non-semantic
        # fields (engine kernel, inbox layout) shape the *captured*
        # state, so the replay machine must match the capturing one.
        base_cfg = snap.rebuild_config() if snap is not None else spec.cfg
        digest: Optional[str] = None
        if spec.cfg.backend == "sharded":
            if want_digest:
                overrides["collect_trace"] = True
            cfg = dataclasses.replace(base_cfg, **overrides)
            wspecs = [WorkloadSpec(wl["benchmark"], scale=wl["scale"],
                                   seed=wl["seed"], memory=cfg.memory,
                                   root_core=wl["root_core"])]

            def sink(round_no: int, states: List[Dict[str, Any]]) -> None:
                save_snapshot(make_snapshot(
                    "sharded", cfg, wspecs,
                    {"kind": "round", "value": round_no}, states,
                    note=spec.spec_hash), path)
                _after_checkpoint(job, path)

            backend = build_backend(cfg)
            job.backend = backend
            kwargs: Dict[str, Any] = dict(checkpoint_every=int(every),
                                          checkpoint_sink=sink)
            if snap is not None:
                kwargs.update(verify_round=int(snap.boundary["value"]),
                              verify_states=snap.states)
            (result,) = backend.run_workloads(wspecs, timeout=job.timeout_s,
                                              **kwargs)
            stats, protocol = backend.stats, backend.protocol
            if want_digest and backend.trace is not None:
                digest = digest_fn(backend.trace)
        else:
            cfg = (dataclasses.replace(base_cfg, **overrides)
                   if overrides else base_cfg)
            wspecs = [WorkloadSpec(wl["benchmark"], scale=wl["scale"],
                                   seed=wl["seed"], memory=cfg.memory,
                                   root_core=wl["root_core"])]
            machine = build_machine(cfg)
            job.backend = backend = machine
            tracer = None
            if want_digest:
                from ..harness.trace import Tracer

                tracer = Tracer(machine)
            roots = [(workload.root, (), wl["root_core"])]
            if snap is not None:
                k = float(snap.boundary["value"])
                machine.run_roots(roots, stop_at_vtime=k)
                verify_machine_state(snap.states[0],
                                     capture_machine_state(machine))
                while k <= machine.fabric.max_vtime:
                    k += every
                results = machine.resume_run(stop_at_vtime=k)
            else:
                k = every
                results = machine.run_roots(roots, stop_at_vtime=k)
            while machine.live_tasks > 0:
                save_snapshot(make_snapshot(
                    "serial", cfg, wspecs,
                    {"kind": "vtime", "value": k},
                    [capture_machine_state(machine)],
                    note=spec.spec_hash), path)
                _after_checkpoint(job, path)
                while k <= machine.fabric.max_vtime:
                    k += every
                results = machine.resume_run(stop_at_vtime=k)
            result = results[0]
            stats, protocol = machine.stats, None
            if tracer is not None:
                digest = digest_fn(tracer.export())
        workload.verify(result["output"])
        snapshot = collect_live_snapshot(backend) if telemetry else None
        document = run_record(result, stats, protocol=protocol,
                              trace_digest=digest, telemetry=snapshot,
                              verified=True)
        document["spec"] = spec.canonical
        document["spec_hash"] = spec.spec_hash
        return document

    # -- shutdown --------------------------------------------------------
    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> bool:
        """Stop the pool; returns True when every job reached a terminal
        state in time.

        ``drain=True`` (the default) first refuses new submissions, then
        waits up to ``timeout`` for queued and in-flight jobs to finish;
        ``drain=False`` fails whatever is still queued immediately
        (running jobs are abandoned to their timeouts).  Idempotent.
        """
        with self._lock:
            self._accepting = False
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        if drain:
            for job in self.jobs():
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                if not job.wait(remaining):
                    drained = False
        else:
            while True:
                try:
                    job = self._queue.get_nowait()
                except _queue.Empty:
                    break
                if job is not None:
                    job._fail("shutdown", "queue shut down before execution")
                    self._release(job)
                    self._queue.task_done()
        for _ in self._threads:
            try:
                self._queue.put_nowait(None)
            except _queue.Full:
                drained = False
        for t in self._threads:
            t.join(timeout=1.0)
        return drained
