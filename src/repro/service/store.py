"""On-disk result store keyed by spec content hash.

One JSON file per result, named ``<spec_hash>.json`` under the store
root.  Writes are atomic (temp file + ``os.replace`` in the same
directory), so a crashed or concurrent writer can never leave a
half-written entry where a reader finds it; duplicate writers race
benignly (both write the same deterministic content).

Reads serve the stored bytes verbatim: a cache hit returns the result
*bit-identically*, not a re-serialization — which is what lets tests
(and clients) assert exact payload equality across resubmissions.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from typing import Any, Dict, List, Optional

_HASH_RE = re.compile(r"^[0-9a-f]{16,64}$")


class ResultStore:
    """Content-addressed result persistence for the service layer.

    Example::

        import tempfile
        from repro.service import ResultStore
        store = ResultStore(tempfile.mkdtemp())
        store.put("ab" * 32, {"answer": 42})
        assert store.get("ab" * 32) == {"answer": 42}
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, spec_hash: str) -> str:
        """Filesystem path an entry lives at (hash is validated first so
        a malicious 'hash' cannot traverse out of the store root)."""
        if not _HASH_RE.match(spec_hash):
            raise ValueError(f"not a spec hash: {spec_hash!r}")
        return os.path.join(self.root, f"{spec_hash}.json")

    def __contains__(self, spec_hash: str) -> bool:
        return os.path.exists(self.path_for(spec_hash))

    def get_bytes(self, spec_hash: str) -> Optional[bytes]:
        """The stored entry verbatim, or ``None`` when absent."""
        try:
            with open(self.path_for(spec_hash), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The stored entry as a dict; ``None`` when absent *or* corrupt
        (a truncated entry behaves like a miss and gets re-simulated,
        never served broken)."""
        raw = self.get_bytes(spec_hash)
        if raw is None:
            return None
        try:
            return json.loads(raw)
        except ValueError:
            return None

    def put(self, spec_hash: str, payload: Dict[str, Any]) -> str:
        """Atomically persist an entry; returns its path.

        The serialization is deterministic (sorted keys), so two racing
        writers of the same spec produce byte-identical files and the
        last ``os.replace`` wins without corruption.
        """
        path = self.path_for(spec_hash)
        data = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def hashes(self) -> List[str]:
        """Spec hashes currently stored, sorted (for listings/GC)."""
        out = []
        for name in os.listdir(self.root):
            stem, ext = os.path.splitext(name)
            if ext == ".json" and _HASH_RE.match(stem):
                out.append(stem)
        return sorted(out)

    def __len__(self) -> int:
        return len(self.hashes())
