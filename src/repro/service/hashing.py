"""Run-spec resolution, canonicalization and content hashing.

A service request describes one simulation as JSON::

    {
      "arch":     {"preset": "shared_mesh", "n_cores": 16, "sync": "spatial"},
      "workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 0},
      "options":  {"wait": true, "timeout_s": 120, "digest": true}
    }

:func:`resolve_spec` validates that against the real configuration
machinery (presets + :class:`~repro.arch.ArchConfig` field validation —
a bad spec fails here with a structured error, never inside a worker)
and produces a :class:`ResolvedSpec` whose **content hash** keys the
result cache:

* the ``arch`` section resolves to a full ``ArchConfig`` and is reduced
  to its semantic fields by
  :func:`repro.arch.io.config_canonical_dict` (non-semantic knobs —
  kernel selection, telemetry, sanitizer, label — are excluded; see
  :data:`repro.arch.io.NON_SEMANTIC_FIELDS` for the proof obligations);
* the ``workload`` section is normalized to its four identity fields
  (``benchmark``, ``scale``, ``seed``, ``root_core``; ``memory`` is
  derived from the arch config, exactly as the CLI derives it);
* the ``options`` section never enters the hash — waiting, timeouts and
  digest collection do not change what is simulated.

The canonical form is serialized with sorted keys and compact
separators (:func:`canonical_json`), so the hash is independent of the
JSON field ordering the client happened to use.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional

from ..arch import (
    ArchConfig,
    clustered_dist,
    dist_mesh,
    numa_mesh,
    polymorphic_dist,
    polymorphic_shared,
    shared_mesh,
    single_core,
)
from ..arch.io import config_canonical_dict, config_field_names
from ..core.errors import SimConfigError
from ..workloads import BENCHMARKS, SCALE_PARAMS

#: Canonical-spec schema version; bumped on incompatible layout changes
#: (a bump invalidates every cache entry, which is the safe direction).
SPEC_SCHEMA = 1

#: Arch presets a spec may name; each maps to the factory in
#: ``repro.arch.presets`` and receives ``n_cores`` (plus ``n_clusters``
#: for the clustered preset) before the remaining overrides apply.
PRESETS = {
    "single_core": single_core,
    "shared_mesh": shared_mesh,
    "dist_mesh": dist_mesh,
    "numa_mesh": numa_mesh,
    "clustered_dist": clustered_dist,
    "polymorphic_shared": polymorphic_shared,
    "polymorphic_dist": polymorphic_dist,
}

#: Recognized ``options`` keys (everything else is rejected so typos
#: fail loudly instead of silently doing nothing).
OPTION_KEYS = frozenset({"wait", "timeout_s", "digest", "telemetry",
                         "checkpoint_every"})


class SpecError(ValueError):
    """An incoming run spec failed validation (HTTP 400 material)."""


@dataclasses.dataclass
class ResolvedSpec:
    """A fully-resolved, validated run spec with a stable identity.

    ``cfg`` is the concrete :class:`ArchConfig` the job will run;
    ``workload`` holds the normalized workload identity fields;
    ``options`` carries execution options (never hashed).  ``canonical``
    and ``spec_hash`` are derived once at construction; ``short_id``
    (first 12 hex digits) is the human-facing job/result label.
    """

    cfg: ArchConfig
    workload: Dict[str, Any]
    options: Dict[str, Any]
    canonical: Dict[str, Any] = dataclasses.field(default=None)  # type: ignore[assignment]
    spec_hash: str = ""

    def __post_init__(self) -> None:
        if self.canonical is None:
            self.canonical = canonical_spec(self.cfg, self.workload)
        if not self.spec_hash:
            self.spec_hash = hash_canonical(self.canonical)

    @property
    def short_id(self) -> str:
        return self.spec_hash[:12]


def canonical_spec(cfg: ArchConfig, workload: Dict[str, Any]) -> Dict[str, Any]:
    """The canonical (hashed) form of one run spec.

    Plain-JSON dict of the semantic arch fields plus the workload
    identity; structurally equal for semantically identical requests.
    """
    return {
        "schema": SPEC_SCHEMA,
        "arch": config_canonical_dict(cfg),
        "workload": {
            "benchmark": workload["benchmark"],
            "scale": workload["scale"],
            "seed": workload["seed"],
            "root_core": workload["root_core"],
        },
    }


def canonical_json(spec: Dict[str, Any]) -> str:
    """Serialize a canonical spec deterministically (sorted keys,
    compact separators) — the byte stream the content hash covers."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def hash_canonical(spec: Dict[str, Any]) -> str:
    """sha256 hex digest of a canonical spec dict."""
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


def spec_hash(cfg: ArchConfig, workload: Dict[str, Any]) -> str:
    """Content hash of one (arch config, workload) pair.

    Convenience composition of :func:`canonical_spec` and
    :func:`hash_canonical`; what the result cache is keyed by.
    """
    return hash_canonical(canonical_spec(cfg, workload))


# -- request resolution ------------------------------------------------------

#: Expected JSON type for each ArchConfig field with a scalar default,
#: derived from the dataclass itself so new fields are covered for free.
#: ``ArchConfig.__post_init__`` validates *values* (enums, ranges) but
#: not *types*, so without this a spec like ``{"drift_bound": "fast"}``
#: would be accepted at submission and only explode inside a worker.
_ARCH_FIELD_TYPES: Dict[str, type] = {
    f.name: type(f.default)
    for f in dataclasses.fields(ArchConfig)
    if f.default is not dataclasses.MISSING and f.default is not None
}


def _check_arch_field_types(payload: Dict[str, Any]) -> None:
    """Reject arch overrides whose JSON type cannot be the field's."""
    for key, value in payload.items():
        expected = _ARCH_FIELD_TYPES.get(key)
        if expected is None or value is None:
            continue
        if expected is bool:
            ok = isinstance(value, bool)
        elif expected is float:
            ok = (isinstance(value, (int, float))
                  and not isinstance(value, bool))
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected is str:
            ok = isinstance(value, str)
        else:
            ok = isinstance(value, expected)
        if not ok:
            raise SpecError(
                f"arch field {key!r} must be a {expected.__name__}, "
                f"got {value!r}")


def _resolve_arch(payload: Optional[Dict[str, Any]]) -> ArchConfig:
    """Build the ArchConfig an ``arch`` section describes.

    With a ``preset`` key the named factory runs first and the remaining
    keys apply as overrides (every override re-validates through
    ``ArchConfig.__post_init__``); without one the keys must be plain
    ``ArchConfig`` fields.  Unknown keys are rejected by name.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise SpecError("'arch' must be a JSON object")
    payload = dict(payload)  # never mutate the caller's request
    preset = payload.pop("preset", None)
    unknown = set(payload) - config_field_names()
    if unknown:
        raise SpecError(f"unknown arch field(s): {sorted(unknown)}")
    _check_arch_field_types(payload)
    try:
        if preset is None:
            return ArchConfig(**payload)
        if preset not in PRESETS:
            raise SpecError(
                f"unknown arch preset {preset!r}; "
                f"choose from {sorted(PRESETS)}")
        factory = PRESETS[preset]
        kwargs = {}
        if preset != "single_core":
            kwargs["n_cores"] = payload.pop("n_cores", 64)
        if preset == "clustered_dist":
            kwargs["n_clusters"] = payload.pop("n_clusters", 4)
        cfg = factory(**kwargs)
        return dataclasses.replace(cfg, **payload) if payload else cfg
    except SimConfigError as exc:
        raise SpecError(str(exc)) from exc
    except TypeError as exc:
        raise SpecError(f"invalid arch section: {exc}") from exc


def _resolve_workload(payload: Any, cfg: ArchConfig) -> Dict[str, Any]:
    """Normalize and validate the ``workload`` section.

    ``memory`` is not accepted: the workload build always follows the
    arch config's memory organization (as ``python -m repro run`` does),
    so a spec cannot describe an inconsistent pair.
    """
    if not isinstance(payload, dict):
        raise SpecError("'workload' must be a JSON object")
    payload = dict(payload)
    benchmark = payload.pop("benchmark", None)
    if benchmark not in BENCHMARKS:
        raise SpecError(
            f"unknown benchmark {benchmark!r}; choose from {list(BENCHMARKS)}")
    scale = payload.pop("scale", "small")
    if scale not in SCALE_PARAMS:
        raise SpecError(
            f"unknown scale {scale!r}; choose from {list(SCALE_PARAMS)}")
    seed = payload.pop("seed", 0)
    root_core = payload.pop("root_core", 0)
    if payload:
        raise SpecError(f"unknown workload field(s): {sorted(payload)} "
                        "(note: 'memory' is derived from the arch config)")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise SpecError(f"workload seed must be an integer, got {seed!r}")
    if not isinstance(root_core, int) or isinstance(root_core, bool):
        raise SpecError(f"root_core must be an integer, got {root_core!r}")
    if not 0 <= root_core < cfg.n_cores:
        raise SpecError(
            f"root_core {root_core} out of range for {cfg.n_cores} cores")
    return {"benchmark": benchmark, "scale": scale, "seed": seed,
            "root_core": root_core, "memory": cfg.memory}


def _resolve_options(payload: Any) -> Dict[str, Any]:
    """Normalize the ``options`` section (execution knobs, never hashed)."""
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise SpecError("'options' must be a JSON object")
    unknown = set(payload) - OPTION_KEYS
    if unknown:
        raise SpecError(f"unknown option(s): {sorted(unknown)}; "
                        f"valid options: {sorted(OPTION_KEYS)}")
    options = {
        "wait": bool(payload.get("wait", False)),
        "timeout_s": payload.get("timeout_s"),
        "digest": bool(payload.get("digest", True)),
        "telemetry": payload.get("telemetry", "counters"),
        "checkpoint_every": payload.get("checkpoint_every"),
    }
    timeout = options["timeout_s"]
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or isinstance(timeout, bool)
                                or timeout <= 0):
        raise SpecError(f"timeout_s must be a positive number, got {timeout!r}")
    every = options["checkpoint_every"]
    if every is not None and (not isinstance(every, (int, float))
                              or isinstance(every, bool) or every <= 0):
        raise SpecError("checkpoint_every must be a positive number "
                        f"(virtual-time cycles serial / rounds sharded), "
                        f"got {every!r}")
    return options


def resolve_spec(payload: Any) -> ResolvedSpec:
    """Validate a raw request body and resolve it into a ResolvedSpec.

    Raises :class:`SpecError` with a client-actionable message on any
    malformed, unknown or inconsistent field — the API layer maps that
    to a structured HTTP 400.

    Example::

        from repro.service import resolve_spec
        spec = resolve_spec({
            "arch": {"preset": "shared_mesh", "n_cores": 9},
            "workload": {"benchmark": "quicksort", "scale": "tiny"},
        })
        assert len(spec.spec_hash) == 64
    """
    if not isinstance(payload, dict):
        raise SpecError("run spec must be a JSON object")
    unknown = set(payload) - {"arch", "workload", "options"}
    if unknown:
        raise SpecError(f"unknown top-level key(s): {sorted(unknown)}; "
                        "expected 'arch', 'workload', 'options'")
    if "workload" not in payload:
        raise SpecError("run spec needs a 'workload' section")
    cfg = _resolve_arch(payload.get("arch"))
    workload = _resolve_workload(payload["workload"], cfg)
    options = _resolve_options(payload.get("options"))
    return ResolvedSpec(cfg=cfg, workload=workload, options=options)
