"""Stdlib HTTP/JSON API over the job queue and result store.

One :class:`SimulationService` owns a :class:`~repro.service.store.ResultStore`,
a :class:`~repro.service.queue.JobQueue` and a
:class:`http.server.ThreadingHTTPServer` (one handler thread per
connection; the *pool* bounds simulation concurrency, not the HTTP
layer).  No third-party web framework is involved — routing is a small
table in the request handler.

Endpoints (all JSON; see docs/service.md for the full reference):

==========================  ==================================================
``GET  /v1/health``         liveness + job counts + version
``POST /v1/jobs``           submit a run spec; optionally wait for the result
``GET  /v1/jobs``           list known jobs (lifecycle summaries)
``GET  /v1/jobs/<id>``      one job: state, timings, result / live telemetry
``GET  /v1/results/<hash>`` stored result document, served verbatim
``GET  /v1/metrics``        service counters (submissions, hits, dedupes, ...)
``POST /v1/sweeps``         submit a design-space sweep spec (``?wait=1``
                            blocks for the frame; see docs/dse.md)
``GET  /v1/sweeps``         list known sweeps (lifecycle summaries)
``GET  /v1/sweeps/<id>``    one sweep: state, execution counters, frame
==========================  ==================================================

Every error response is structured:
``{"error": {"type": ..., "message": ...}}`` with a matching HTTP
status (400 malformed spec, 404 unknown resource, 503 queue full).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..obs.registry import MetricsRegistry
from .hashing import SpecError, resolve_spec
from .queue import Job, JobQueue, QueueFullError
from .store import ResultStore

#: Hard cap on accepted request bodies (a run spec is a few KB).
MAX_BODY_BYTES = 1 << 20

#: Ceiling for ``options.wait`` blocking, so one handler thread cannot
#: be parked forever by a single request.
MAX_WAIT_S = 600.0


class SimulationService:
    """The service composition root: store + queue + HTTP server.

    ``port=0`` binds an ephemeral port (the bound port is on
    ``service.port`` after construction), which is what tests and the
    executable docs use.  Call :meth:`serve_forever` to block, or
    :func:`serve_in_background` for a daemon-thread server.

    Example::

        import tempfile
        from repro.service import SimulationService
        svc = SimulationService(store_dir=tempfile.mkdtemp(), port=0)
        assert svc.port > 0
        svc.close()
    """

    def __init__(self, store_dir: str, host: str = "127.0.0.1",
                 port: int = 8123, workers: int = 2, depth: int = 64,
                 job_timeout_s: float = 300.0, quiet: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.store = ResultStore(store_dir)
        self.queue = JobQueue(self.store, workers=workers, depth=depth,
                              default_timeout_s=job_timeout_s,
                              registry=self.registry)
        # Imported here, not at module top: repro.dse depends on the
        # service package's queue/hashing modules, so a top-level import
        # from this module would be circular.
        from ..dse.runner import SweepManager

        self.sweeps = SweepManager(self.queue, timeout_s=job_timeout_s)
        self.quiet = quiet
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (or ``httpd.shutdown``) is called."""
        self.httpd.serve_forever(poll_interval=0.2)

    def close(self, drain: bool = True,
              timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting requests, then drain the job queue.

        Returns True when every accepted job reached a terminal state
        within ``timeout`` (see :meth:`JobQueue.shutdown`).  Safe to
        call from a signal/main thread while ``serve_forever`` runs in
        another — and, because ``shutdown`` only flags the serve loop,
        also safe the other way around.
        """
        self.httpd.shutdown()
        self.httpd.server_close()
        return self.queue.shutdown(drain=drain, timeout=timeout)

    # -- request operations (handler-called) ------------------------------
    def submit(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Resolve + enqueue one spec; returns (HTTP status, body)."""
        spec = resolve_spec(payload)  # SpecError -> 400 at the handler
        job = self.queue.submit(spec)
        wait = spec.options.get("wait")
        if wait and not job.finished:
            timeout = min(job.timeout_s + 5.0, MAX_WAIT_S)
            job.wait(timeout)
        status = 200 if job.finished else 202
        return status, self.job_body(job, include_result=True)

    def job_body(self, job: Job,
                 include_result: bool = False) -> Dict[str, Any]:
        """A job's wire representation: summary + result/telemetry."""
        body = job.summary()
        if job.state == "running" and job.backend is not None:
            from ..obs import collect_live_snapshot

            snap = collect_live_snapshot(job.backend)
            if snap is not None:
                body["telemetry_live"] = snap
        if include_result and job.state == "done":
            body["result"] = job.document
        return body

    def submit_sweep(self, payload: Any,
                     wait: bool = False) -> Tuple[int, Dict[str, Any]]:
        """Expand + launch one sweep spec; returns (HTTP status, body).

        Expansion happens on the handler thread so a malformed spec
        fails as a 400 before anything simulates; execution runs the
        cells through the service's own worker pool.
        """
        from ..dse import expand_sweep

        plan = expand_sweep(payload)  # SweepSpecError -> 400 at the handler
        run = self.sweeps.submit(plan)
        if wait and not run.finished:
            run.wait(MAX_WAIT_S)
        status = 200 if run.finished else 202
        return status, self.sweep_body(run)

    def sweep_body(self, run: Any,
                   include_frame: bool = True) -> Dict[str, Any]:
        """A sweep run's wire representation: summary + result frame."""
        body = run.summary()
        if include_frame and run.state == "done" and run.outcome is not None:
            body["frame"] = run.outcome.frame
        return body

    def metrics_body(self) -> Dict[str, Any]:
        snap = self.registry.snapshot()
        snap["jobs"] = self.queue.counts()
        snap["cached_results"] = len(self.store)
        return snap


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the bound :class:`SimulationService`.

    A concrete subclass carrying the ``service`` attribute is created
    per service instance, so several services (tests run many) never
    share handler state.
    """

    service: SimulationService  # bound by SimulationService
    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        if not self.service.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body).encode()
        self._send_bytes(status, data)

    def _send_bytes(self, status: int, data: bytes,
                    content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, err_type: str,
                         message: str) -> None:
        self._send_json(status, {"error": {"type": err_type,
                                           "message": message}})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SpecError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body; expected a JSON run spec")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise SpecError(f"invalid JSON body: {exc}") from exc

    # -- routing ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "health"]:
                svc = self.service
                self._send_json(200, {
                    "status": "ok", "version": __version__,
                    "jobs": svc.queue.counts(),
                    "cached_results": len(svc.store),
                })
            elif parts == ["v1", "jobs"]:
                jobs = [j.summary() for j in self.service.queue.jobs()]
                self._send_json(200, {"jobs": jobs})
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = self.service.queue.get(parts[2])
                if job is None:
                    self._send_error_json(404, "unknown_job",
                                          f"no job {parts[2]!r}")
                else:
                    query = parse_qs(url.query)
                    include = "0" not in query.get("result", ["1"])
                    self._send_json(
                        200, self.service.job_body(job,
                                                   include_result=include))
            elif len(parts) == 3 and parts[:2] == ["v1", "results"]:
                try:
                    raw = self.service.store.get_bytes(parts[2])
                except ValueError:
                    raw = None
                if raw is None:
                    self._send_error_json(404, "unknown_result",
                                          f"no cached result {parts[2]!r}")
                else:
                    self._send_bytes(200, raw)
            elif parts == ["v1", "sweeps"]:
                runs = [r.summary() for r in self.service.sweeps.runs()]
                self._send_json(200, {"sweeps": runs})
            elif len(parts) == 3 and parts[:2] == ["v1", "sweeps"]:
                run = self.service.sweeps.get(parts[2])
                if run is None:
                    self._send_error_json(404, "unknown_sweep",
                                          f"no sweep {parts[2]!r}")
                else:
                    query = parse_qs(url.query)
                    include = "0" not in query.get("frame", ["1"])
                    self._send_json(
                        200, self.service.sweep_body(
                            run, include_frame=include))
            elif parts == ["v1", "metrics"]:
                self._send_json(200, self.service.metrics_body())
            else:
                self._send_error_json(404, "unknown_endpoint",
                                      f"no route for GET {url.path}")
        except BrokenPipeError:  # client went away mid-reply
            pass
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            self._send_error_json(500, type(exc).__name__, str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                status, body = self.service.submit(self._read_body())
                self._send_json(status, body)
            elif parts == ["v1", "sweeps"]:
                query = parse_qs(url.query)
                wait = "1" in query.get("wait", [])
                status, body = self.service.submit_sweep(
                    self._read_body(), wait=wait)
                self._send_json(status, body)
            else:
                self._send_error_json(404, "unknown_endpoint",
                                      f"no route for POST {url.path}")
        except SpecError as exc:
            self._send_error_json(400, "invalid_spec", str(exc))
        except QueueFullError as exc:
            self._send_error_json(503, "queue_full", str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            self._send_error_json(500, type(exc).__name__, str(exc))


def serve_in_background(
        store_dir: str,
        **kwargs: Any) -> Tuple[SimulationService, threading.Thread]:
    """Start a service on a daemon thread; returns (service, thread).

    Binds an ephemeral port by default — use ``service.base_url`` to
    talk to it and ``service.close()`` to stop it.  This is the
    entry point tests and the executable documentation blocks use;
    production deployments run ``python -m repro serve`` instead.

    Example::

        import tempfile, urllib.request
        from repro.service import serve_in_background
        svc, _ = serve_in_background(tempfile.mkdtemp())
        with urllib.request.urlopen(svc.base_url + "/v1/health") as resp:
            assert resp.status == 200
        svc.close()
    """
    kwargs.setdefault("port", 0)
    service = SimulationService(store_dir, **kwargs)
    thread = threading.Thread(target=service.serve_forever,
                              name="repro-service-http", daemon=True)
    thread.start()
    return service, thread
