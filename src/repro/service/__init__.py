"""Simulation-as-a-service: HTTP API, job queue, content-hash result cache.

The CLI answers one question per process; this package turns the
simulator into a long-running **service** that answers many concurrent
questions and never answers the same question twice:

* :mod:`repro.service.hashing` — resolves an incoming JSON run spec
  (arch config + workload + options) against the :class:`ArchConfig`
  machinery and derives its **content hash**: a stable sha256 over the
  fully-resolved semantic spec.  Identical questions get identical
  hashes.
* :mod:`repro.service.store` — an on-disk result store keyed by that
  hash, with atomic writes and verbatim byte serving, so a cached
  answer is returned bit-identically.
* :mod:`repro.service.queue` — a bounded worker pool that executes
  jobs through the existing serial/sharded backends
  (:func:`repro.arch.build_backend`), de-duplicates concurrent
  identical submissions, enforces per-job timeouts, and drains
  in-flight jobs on shutdown.
* :mod:`repro.service.api` — the stdlib-only
  (:class:`http.server.ThreadingHTTPServer`) JSON API over the above,
  started with ``python -m repro serve``.

Because the simulator is deterministic — pinned by the golden numbers,
canonical trace digests and the differential fuzzer (docs/testing.md) —
a cache hit is *exact*, not approximate: re-simulating an identical
spec would reproduce the stored result bit for bit.  That determinism
is what makes caching by content hash sound.  See docs/service.md for
the endpoint reference and the cache-identity semantics.
"""

from .api import SimulationService, serve_in_background
from .hashing import (
    SPEC_SCHEMA,
    ResolvedSpec,
    SpecError,
    canonical_json,
    canonical_spec,
    resolve_spec,
    spec_hash,
)
from .queue import Job, JobQueue, QueueFullError
from .store import ResultStore

__all__ = [
    "Job",
    "JobQueue",
    "QueueFullError",
    "ResolvedSpec",
    "ResultStore",
    "SPEC_SCHEMA",
    "SimulationService",
    "SpecError",
    "canonical_json",
    "canonical_spec",
    "resolve_spec",
    "serve_in_background",
    "spec_hash",
]
