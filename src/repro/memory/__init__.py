"""Memory hierarchy substrate: caches, coherence, shared and distributed models."""

from .base import MemoryModel
from .cache import CacheStats, LruCache, PessimisticL1
from .cells import Cell, Link
from .coherence import CoherenceModel, CoherenceStats
from .distmem import DEFAULT_L2_LATENCY, DistributedMemoryModel
from .numa import NumaMemoryModel, stable_home
from .sharedmem import (
    DEFAULT_BANK_LATENCY,
    DEFAULT_L1_LATENCY,
    SharedMemoryModel,
)

__all__ = [
    "CacheStats",
    "Cell",
    "CoherenceModel",
    "CoherenceStats",
    "DEFAULT_BANK_LATENCY",
    "DEFAULT_L1_LATENCY",
    "DEFAULT_L2_LATENCY",
    "DistributedMemoryModel",
    "Link",
    "LruCache",
    "MemoryModel",
    "NumaMemoryModel",
    "PessimisticL1",
    "stable_home",
    "SharedMemoryModel",
]
