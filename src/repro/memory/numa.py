"""NUMA memory organization: distributed banks *with* hardware coherence.

The paper's architecture variability spans "a single shared memory with
uniform latency to fully distributed banks with or without hardware
coherence" (Section III).  The shared and runtime-managed (cell) models
cover the two ends; this model covers the middle: every core owns a local
memory bank, objects have a fixed home bank, and hardware keeps caches
coherent — data does not migrate, accesses travel.

Timing: L1 hits per block annotation; misses go to the object's home bank
— the local bank latency when home, plus an uncontended NoC round trip
when remote — with directory coherence penalties on top.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

from .base import MemoryModel
from .cells import Cell, Link
from .coherence import CoherenceModel


def stable_home(obj, n_cores: int) -> int:
    """Deterministic home bank for an object key.

    Uses CRC32 of the key's repr, so placement is stable across runs for
    value-like keys (tuples of strings/ints), which the workloads use.
    """
    return zlib.crc32(repr(obj).encode()) % n_cores


class NumaMemoryModel(MemoryModel):
    """Distributed banks + hardware coherence (home-based placement)."""

    def __init__(
        self,
        bank_latency: float = 10.0,
        l1_latency: float = 1.0,
        coherence: Optional[CoherenceModel] = None,
        scale_l1_with_core: bool = True,
        atomic_op_cycles: float = 2.0,
    ) -> None:
        if bank_latency < 0 or l1_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.bank_latency = bank_latency
        self.l1_latency = l1_latency
        self.coherence = coherence or CoherenceModel()
        self.scale_l1_with_core = scale_l1_with_core
        self.atomic_op_cycles = atomic_op_cycles
        self._home_cache: Dict[object, int] = {}
        self.local_accesses = 0
        self.remote_accesses = 0

    def _home(self, obj, bank: Optional[int]) -> int:
        if bank is not None:
            return bank % self.machine.n_cores
        home = self._home_cache.get(obj)
        if home is None:
            home = stable_home(obj, self.machine.n_cores)
            self._home_cache[obj] = home
        return home

    def _remote_penalty(self, cid: int, home: int) -> float:
        """Uncontended NoC round trip to a remote bank."""
        if home == cid:
            return 0.0
        return 2.0 * self.machine.noc.min_latency(cid, home)

    def access(self, core, action) -> float:
        n = action.reads + action.writes
        if n == 0:
            return 0.0
        l1_hit = self.l1_latency
        if self.scale_l1_with_core:
            l1_hit = l1_hit * core.speed_factor
        hits = n * action.l1_hit_fraction
        misses = n - hits
        home = self._home(action.obj, action.bank)
        if home == core.cid:
            self.local_accesses += 1
            miss_cost = self.bank_latency
        else:
            self.remote_accesses += 1
            miss_cost = self.bank_latency + self._remote_penalty(core.cid, home)
        cost = hits * l1_hit + misses * miss_cost
        if self.coherence is not None and action.obj is not None:
            cost += self.coherence.penalty(
                core.cid, action.obj, action.reads, action.writes
            )
        return cost

    def cell_access(self, core, task, action) -> Optional[float]:
        """Cells are home-pinned objects: access travels, data stays."""
        cell = action.cell.deref() if isinstance(action.cell, Link) else action.cell
        home = cell.owner % self.machine.n_cores
        cost = self.bank_latency + self.atomic_op_cycles
        cost += self._remote_penalty(core.cid, home)
        if self.coherence is not None:
            reads = 1 if "r" in action.mode else 0
            writes = 1 if "w" in action.mode else 0
            cost += self.coherence.penalty(core.cid, cell, reads, writes)
        if home == core.cid:
            self.local_accesses += 1
        else:
            self.remote_accesses += 1
        return cost

    def new_cell(self, data=None, size: float = 64.0, home: int = 0) -> Cell:
        """Create a cell pinned to its home bank (ownership never moves)."""
        return Cell(data=data, size=size, owner=home)
