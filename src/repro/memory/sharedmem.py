"""Shared-memory architecture type (paper, Section V).

All cores, besides their private L1, access the shared memory banks with a
common low latency (10 cycles).  The model is optimistic — interconnect
delays and (by default) cache-coherence effects are ignored — because its
purpose is to study inherent program scalability.  For validation against
the cycle-level referee, a :class:`~repro.memory.coherence.CoherenceModel`
can be attached so coherence timings are charged.

The L1 is the paper's pessimistic model: 1-cycle hits whose fraction comes
from block-local annotations (data never survive function boundaries), with
the L1 speed proportional to the core speed on polymorphic architectures —
the detail responsible for the CL/VT offset in Figure 6.
"""

from __future__ import annotations

from typing import Optional

from .base import MemoryModel
from .cache import PessimisticL1
from .cells import Cell, Link
from .coherence import CoherenceModel

#: Paper parameters.
DEFAULT_BANK_LATENCY = 10.0
DEFAULT_L1_LATENCY = 1.0


class SharedMemoryModel(MemoryModel):
    """Uniform-latency shared banks + pessimistic private L1s."""

    def __init__(
        self,
        bank_latency: float = DEFAULT_BANK_LATENCY,
        l1_latency: float = DEFAULT_L1_LATENCY,
        coherence: Optional[CoherenceModel] = None,
        scale_l1_with_core: bool = True,
        atomic_op_cycles: float = 2.0,
    ) -> None:
        if bank_latency < 0 or l1_latency < 0 or atomic_op_cycles < 0:
            raise ValueError("latencies must be non-negative")
        self.bank_latency = bank_latency
        self.l1_latency = l1_latency
        self.coherence = coherence
        self.scale_l1_with_core = scale_l1_with_core
        self.atomic_op_cycles = atomic_op_cycles
        self.l1 = PessimisticL1(hit_latency=l1_latency)

    def access(self, core, action) -> float:
        n = action.reads + action.writes
        if n == 0:
            return 0.0
        l1_hit = self.l1_latency
        if self.scale_l1_with_core:
            l1_hit = l1_hit * core.speed_factor
        hits = n * action.l1_hit_fraction
        misses = n - hits
        cost = hits * l1_hit + misses * self.bank_latency
        self.l1.stats.hits += int(hits)
        self.l1.stats.misses += int(misses)
        if self.coherence is not None and action.obj is not None:
            cost += self.coherence.penalty(
                core.cid, action.obj, action.reads, action.writes
            )
        return cost

    def cell_access(self, core, task, action) -> Optional[float]:
        """Cells degenerate to ordinary shared objects on this architecture.

        This lets distributed-memory workload code run unchanged on the
        shared-memory architecture type: a cell access is an atomic
        bank access with coherence effects when enabled.
        """
        cell = action.cell.deref() if isinstance(action.cell, Link) else action.cell
        cost = self.bank_latency + self.atomic_op_cycles
        if self.coherence is not None:
            reads = 1 if "r" in action.mode else 0
            writes = 1 if "w" in action.mode else 0
            cost += self.coherence.penalty(core.cid, cell, reads, writes)
        return cost

    def new_cell(self, data=None, size: float = 64.0, home: int = 0) -> Cell:
        """Create a cell (placement is irrelevant on shared memory)."""
        return Cell(data=data, size=size, owner=home)
