"""Memory-model protocol shared by all architecture types."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.actions import CellAccess, MemAccess
    from ..core.coreunit import CoreUnit
    from ..core.engine import Machine
    from ..core.task import Task


class MemoryModel:
    """Interface the engine drives for MemAccess / CellAccess actions."""

    def attach(self, machine: "Machine") -> None:
        """Bind to a machine; register any message handlers needed."""
        self.machine = machine

    def access(self, core: "CoreUnit", action: "MemAccess") -> float:
        """Latency (cycles) of an aggregate shared-memory access."""
        raise NotImplementedError

    def cell_access(
        self, core: "CoreUnit", task: "Task", action: "CellAccess"
    ) -> Optional[float]:
        """Handle a cell access.

        Returns the access latency when it completes locally, or ``None``
        when the cell is remote: the model then suspends the task, issues a
        DATA_REQUEST, and wakes the task when the DATA_RESPONSE arrives.
        """
        raise NotImplementedError
