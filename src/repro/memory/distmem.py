"""Distributed-memory architecture type without hardware coherence.

Each core has a local L2 (10-cycle latency); shared data live in cells
managed by the run-time system (paper, Sections IV and V).  Remote cell
content is fetched with DATA_REQUEST / DATA_RESPONSE messages over the NoC;
data access is *exclusive* — the cell moves to the requesting core whether
the access is a read or a write — which is what makes data-contended
benchmarks collapse on this architecture type (Section VI).
"""

from __future__ import annotations

from typing import Optional

from .base import MemoryModel
from .cells import Cell, Link
from ..core.messages import MsgKind

#: Paper parameters.
DEFAULT_L2_LATENCY = 10.0
DEFAULT_L1_LATENCY = 1.0


class DistributedMemoryModel(MemoryModel):
    """Run-time managed cells over per-core local memories."""

    def __init__(
        self,
        l2_latency: float = DEFAULT_L2_LATENCY,
        l1_latency: float = DEFAULT_L1_LATENCY,
        scale_l1_with_core: bool = True,
    ) -> None:
        if l2_latency < 0 or l1_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.l2_latency = l2_latency
        self.l1_latency = l1_latency
        self.scale_l1_with_core = scale_l1_with_core
        self.cells_created = 0
        self.remote_fetches = 0
        self.forwards = 0

    def attach(self, machine) -> None:
        super().attach(machine)
        machine.register_handler(MsgKind.DATA_REQUEST, self._on_data_request)
        machine.register_handler(MsgKind.DATA_RESPONSE, self._on_data_response)

    # -- private-data accesses -----------------------------------------------
    def access(self, core, action) -> float:
        """Private/local data: L1 hits per annotation, misses to local L2."""
        n = action.reads + action.writes
        if n == 0:
            return 0.0
        l1_hit = self.l1_latency
        if self.scale_l1_with_core:
            l1_hit = l1_hit * core.speed_factor
        hits = n * action.l1_hit_fraction
        misses = n - hits
        return hits * l1_hit + misses * self.l2_latency

    # -- cells -------------------------------------------------------------
    def new_cell(self, data=None, size: float = 64.0, home: int = 0) -> Cell:
        """Create a cell homed (initially owned) by core ``home``."""
        if not 0 <= home < self.machine.n_cores:
            raise ValueError(f"home core {home} out of range")
        self.cells_created += 1
        return Cell(data=data, size=size, owner=home)

    def cell_access(self, core, task, action) -> Optional[float]:
        cell = action.cell.deref() if isinstance(action.cell, Link) else action.cell
        if cell.owner == core.cid:
            # Local access: run-time locks the cell for the (atomic) access.
            return self.l2_latency
        # Remote: the run-time system fetches the cell; the task blocks.
        self.remote_fetches += 1
        suspended = self.machine.suspend_current(core, "cell")
        self.machine.send_with_overhead(
            MsgKind.DATA_REQUEST,
            core,
            cell.owner,
            payload=(suspended, cell),
        )
        return None

    # -- message handlers -----------------------------------------------------
    def _on_data_request(self, core, msg) -> None:
        task, cell = msg.payload
        if cell.owner != core.cid:
            # The cell moved since the request was sent; chase the owner.
            self.forwards += 1
            self.machine.send_service_message(
                MsgKind.DATA_REQUEST, core, cell.owner, payload=msg.payload
            )
            return
        if cell.locked_by is not None:
            cell.pending.append((task, msg.src))
            return
        self._transfer(core, cell, task, msg.src,
                       at_time=self.machine.service_now(core))

    def _transfer(self, core, cell: Cell, task, requester: int,
                  at_time: float) -> None:
        """Hand the cell over to ``requester`` and ship its content.

        The response is dated with the request's service time plus the
        local L2 read latency (paper: replies carry the request time
        augmented with a local processing time).
        """
        cell.owner = requester
        cell.moves += 1
        self.machine.send_message_at(
            MsgKind.DATA_RESPONSE,
            core,
            requester,
            at_time + self.l2_latency,
            payload=(task, cell),
            size=max(cell.size, 16.0),
        )

    def _on_data_response(self, core, msg) -> None:
        task, cell = msg.payload
        # Store the received data in the local L2, then resume the task.
        at_time = self.machine.service_now(core) + self.l2_latency
        self.machine.wake_task(task, cell, at_time, ctx_switch=True)

    def release_cell(self, core, cell: Cell) -> None:
        """Explicitly unlock a cell and service pending requests."""
        cell.locked_by = None
        at_time = self.machine.now(core)
        while cell.pending and cell.owner == core.cid:
            task, requester = cell.pending.popleft()
            self._transfer(core, cell, task, requester, at_time)
