"""Cache-coherence timing effects.

The optimistic shared-memory architecture type ignores coherence delays
entirely ("the delays induced by cache coherence effects are not taken into
account" — paper, Section V).  For validation against the cycle-level
simulator, coherence timings are enabled in SiMany instead of disabled in
the referee, so both simulators charge the same *kind* of penalties:

* reading an object whose last writer is another core costs a dirty-miss
  transfer;
* writing an object shared by other cores costs an invalidation round,
  growing with the number of sharers.

The directory is object-granularity (the same granularity the workloads
are annotated at).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Set


@dataclass
class _DirEntry:
    writer: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)


@dataclass
class CoherenceStats:
    dirty_misses: int = 0
    invalidation_rounds: int = 0
    invalidated_copies: int = 0
    penalty_cycles: float = 0.0


class CoherenceModel:
    """Directory-based coherence penalty model.

    ``dirty_miss_cycles`` is charged when a read hits another core's dirty
    data; an invalidation round costs ``invalidate_base_cycles`` plus
    ``invalidate_per_sharer_cycles`` for each remote copy.  An optional
    ``invalidate_hook`` lets a detailed cache model drop remote copies.
    """

    def __init__(
        self,
        dirty_miss_cycles: float = 20.0,
        invalidate_base_cycles: float = 10.0,
        invalidate_per_sharer_cycles: float = 2.0,
        invalidate_hook: Optional[Callable[[int, Hashable], None]] = None,
    ) -> None:
        if min(dirty_miss_cycles, invalidate_base_cycles,
               invalidate_per_sharer_cycles) < 0:
            raise ValueError("coherence penalties must be non-negative")
        self.dirty_miss_cycles = dirty_miss_cycles
        self.invalidate_base_cycles = invalidate_base_cycles
        self.invalidate_per_sharer_cycles = invalidate_per_sharer_cycles
        self.invalidate_hook = invalidate_hook
        self._dir: Dict[Hashable, _DirEntry] = {}
        self.stats = CoherenceStats()

    def _entry(self, obj: Hashable) -> _DirEntry:
        entry = self._dir.get(obj)
        if entry is None:
            entry = _DirEntry()
            self._dir[obj] = entry
        return entry

    def on_read(self, cid: int, obj: Hashable) -> float:
        """Coherence penalty of core ``cid`` reading ``obj``."""
        entry = self._entry(obj)
        penalty = 0.0
        if entry.writer is not None and entry.writer != cid:
            penalty += self.dirty_miss_cycles
            self.stats.dirty_misses += 1
            entry.writer = None  # downgraded to shared
        entry.sharers.add(cid)
        self.stats.penalty_cycles += penalty
        return penalty

    def on_write(self, cid: int, obj: Hashable) -> float:
        """Coherence penalty of core ``cid`` writing ``obj``."""
        entry = self._entry(obj)
        penalty = 0.0
        others = entry.sharers - {cid}
        if others or (entry.writer is not None and entry.writer != cid):
            penalty += self.invalidate_base_cycles
            penalty += self.invalidate_per_sharer_cycles * len(others)
            self.stats.invalidation_rounds += 1
            self.stats.invalidated_copies += len(others)
            if self.invalidate_hook is not None:
                for other in others:
                    self.invalidate_hook(other, obj)
        entry.writer = cid
        entry.sharers = {cid}
        self.stats.penalty_cycles += penalty
        return penalty

    def penalty(self, cid: int, obj: Hashable, reads: int, writes: int) -> float:
        """Penalty of one aggregate access action (charged once per action)."""
        total = 0.0
        if reads:
            total += self.on_read(cid, obj)
        if writes:
            total += self.on_write(cid, obj)
        return total

    @property
    def tracked_objects(self) -> int:
        """Number of objects with directory entries."""
        return len(self._dir)
