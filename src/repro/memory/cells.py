"""Cells and links: the distributed-memory data model (paper, Section IV).

When using distributed memory, shared data are stored in objects called
*cells*, bearing similarity to C structures.  Programs access them by
dereferencing *links* — generalized pointers valid whether the cell is
stored locally or remotely.  The run-time system transfers remote cell
content with DATA_REQUEST / DATA_RESPONSE messages and locks the cell for
the access duration; transferred data land in the initiating core's L2.

Access is exclusive: reads and writes both move the cell to the requester
(this is what makes Dijkstra and Connected Components collapse on the
distributed-memory architecture — paper, Section VI).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Optional, Tuple

_cell_counter = itertools.count()


class Cell:
    """A unit of distributed shared data with a current owner core."""

    __slots__ = ("cid", "data", "size", "owner", "locked_by", "pending", "moves")

    def __init__(self, data: Any = None, size: float = 64.0, owner: int = 0) -> None:
        if size <= 0:
            raise ValueError("cell size must be positive")
        self.cid = next(_cell_counter)
        self.data = data
        self.size = size
        self.owner = owner
        #: Task currently holding the cell (exclusive access window).
        self.locked_by: Optional[object] = None
        #: Remote requests waiting for the cell to be released/transferred.
        self.pending: Deque[Tuple[object, int]] = deque()
        #: Number of ownership transfers (contention indicator).
        self.moves = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell#{self.cid}(owner={self.owner}, size={self.size})"


class Link:
    """Generalized pointer to a cell (local or remote)."""

    __slots__ = ("cell",)

    def __init__(self, cell: Cell) -> None:
        self.cell = cell

    def deref(self) -> Cell:
        """Resolve the link to its cell (valid locally or remotely)."""
        return self.cell

    def __repr__(self) -> str:  # pragma: no cover
        return f"Link->{self.cell!r}"
