"""Simple cache timing models.

SiMany's cache model is deliberately simple and pessimistic: data do not
stay in the L1 across function boundaries of the executed program (paper,
Section V), so virtual-time runs derive L1 hits purely from block-local
annotations.  The cycle-level referee instead tracks object residency in a
small LRU structure, giving it genuinely different (more detailed) timing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class LruCache:
    """Object-granularity LRU cache used by the cycle-level referee.

    Capacity is counted in objects (the simulation's addressable units);
    this is coarser than a line-granularity cache but exposes the same
    locality and invalidation behaviour at the abstraction level the
    workloads are annotated at.
    """

    def __init__(self, capacity: int, hit_latency: float, miss_latency: float) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if hit_latency < 0 or miss_latency < hit_latency:
            raise ValueError("latencies must satisfy 0 <= hit <= miss")
        self.capacity = capacity
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()
        self.stats = CacheStats()

    def access(self, obj: Hashable) -> float:
        """Touch ``obj``; return the access latency."""
        entries = self._entries
        if obj in entries:
            entries.move_to_end(obj)
            self.stats.hits += 1
            return self.hit_latency
        self.stats.misses += 1
        entries[obj] = None
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        return self.miss_latency

    def contains(self, obj: Hashable) -> bool:
        """Whether the object is currently resident."""
        return obj in self._entries

    def invalidate(self, obj: Hashable) -> bool:
        """Drop ``obj`` if resident (coherence); return whether it was."""
        if obj in self._entries:
            del self._entries[obj]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (task boundary in the pessimistic model)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PessimisticL1:
    """The paper's L1 model: 1-cycle hits, no retention across blocks.

    Hit/miss split comes from the workload's own annotation
    (``l1_hit_fraction``), not from residency tracking.
    """

    def __init__(self, hit_latency: float = 1.0) -> None:
        if hit_latency < 0:
            raise ValueError("hit latency must be non-negative")
        self.hit_latency = hit_latency
        self.stats = CacheStats()

    def access_cost(
        self, n_accesses: float, hit_fraction: float, miss_latency: float
    ) -> float:
        """Aggregate cost of ``n_accesses`` with annotated locality."""
        if n_accesses < 0:
            raise ValueError("access count must be non-negative")
        if not 0.0 <= hit_fraction <= 1.0:
            raise ValueError("hit fraction must be within [0, 1]")
        hits = n_accesses * hit_fraction
        misses = n_accesses - hits
        self.stats.hits += int(hits)
        self.stats.misses += int(misses)
        return hits * self.hit_latency + misses * miss_latency
