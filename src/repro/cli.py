"""Command-line interface.

    python -m repro list
    python -m repro run dijkstra --cores 64 --memory shared --scale small
    python -m repro run quicksort --telemetry --telemetry-out /tmp/obs
    python -m repro obs summarize /tmp/obs
    python -m repro sweep fig8 --sizes 1,8,64 --scale tiny
    python -m repro sweep examples/sweeps/mesh_family.json --jobs 4
    python -m repro policies quicksort --cores 64
    python -m repro fuzz --cases 25 --seed 0
    python -m repro serve --port 8123 --workers 2 --store /tmp/repro-cache
    python -m repro info

``run`` simulates one benchmark on one architecture and prints the
headline numbers; ``sweep`` regenerates a figure/table of the paper's
evaluation — or, given a JSON sweep-spec file, runs a design-space
exploration through the service job queue and prints the Pareto
frontier (see docs/dse.md); ``policies`` compares all sync policies on
one benchmark;
``fuzz`` differentially tests the serial and sharded backends against
each other (see docs/testing.md); ``obs summarize`` renders the metrics
a ``--telemetry-out`` run wrote (see docs/observability.md); ``serve``
runs the simulation service — an HTTP/JSON API with a job queue and a
content-hash result cache (see docs/service.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional, Sequence

from . import __version__
from .arch import (
    build_machine,
    clustered_dist,
    dist_mesh,
    numa_mesh,
    polymorphic_dist,
    polymorphic_shared,
    shared_mesh,
)
from .workloads import BENCHMARKS, SCALE_PARAMS, get_workload

#: Figure/table sweeps available to the ``sweep`` subcommand.
SWEEPS = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
          "fig12", "fig13")


def _sizes(text: str) -> tuple:
    return tuple(int(x) for x in text.split(",") if x.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SiMany: a very fast simulator for exploring the "
                    "many-core future (IPDPS 2011 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks and scales")
    sub.add_parser("info", help="show the architecture presets and knobs")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=BENCHMARKS, nargs="?",
                     help="benchmark name (optional with --resume: the "
                          "snapshot already carries the workload)")
    run.add_argument("--cores", type=int, default=64)
    run.add_argument("--memory",
                     choices=("shared", "distributed", "numa"),
                     default="shared")
    run.add_argument("--arch", choices=("mesh", "clustered", "polymorphic"),
                     default="mesh")
    run.add_argument("--clusters", type=int, default=4)
    run.add_argument("--scale", choices=tuple(SCALE_PARAMS), default="small")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--drift", type=float, default=100.0,
                     help="maximum local drift T (cycles)")
    run.add_argument("--sync", default="spatial",
                     choices=("spatial", "conservative", "quantum",
                              "bounded_slack", "laxp2p", "unbounded"))
    run.add_argument("--dispatch", default="occupancy",
                     choices=("occupancy", "speed_aware", "latency_aware",
                              "random"))
    run.add_argument("--baseline", action="store_true",
                     help="also run 1 core and report the speedup")
    run.add_argument("--backend", choices=("serial", "sharded"),
                     default="serial",
                     help="execution backend: serial (default) or one "
                          "worker process per shard")
    run.add_argument("--shards", type=int, default=0,
                     help="partition the mesh into N contiguous shards "
                          "(fences dispatch/steal to stay in-shard; "
                          "required for --backend sharded)")
    run.add_argument("--window-max", type=float, default=None,
                     metavar="FACTOR",
                     help="sharded backend: cap on the adaptive drift-"
                          "window multiplier (1 disables widening; "
                          "default 64)")
    run.add_argument("--round-batch", type=int, default=None, metavar="N",
                     help="sharded backend: max engine sub-rounds a worker "
                          "runs per coordination round (default 16)")
    run.add_argument("--kernel", default=None,
                     choices=("auto", "python", "vectorized", "compiled"),
                     help="engine hot-loop implementation (default auto: "
                          "REPRO_ENGINE_KERNEL or vectorized); all kernels "
                          "are bit-identical")
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime invariant sanitizer (drift "
                          "bound, causal delivery, publish monotonicity; "
                          "~2x slower)")
    run.add_argument("--telemetry", nargs="?", const="all", default=None,
                     metavar="PARTS",
                     help="enable observability (repro.obs): 'all' or a "
                          "comma list of counters,timeline,profile")
    run.add_argument("--telemetry-out", default=None, metavar="DIR",
                     help="write metrics.json / timeline.json under DIR "
                          "(implies --telemetry all)")
    run.add_argument("--checkpoint-every", type=float, default=None,
                     metavar="N",
                     help="snapshot the run every N virtual-time cycles "
                          "(serial) or N coordination rounds (sharded); "
                          "requires --checkpoint")
    run.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="snapshot file, atomically overwritten at each "
                          "boundary (see docs/checkpoint.md)")
    run.add_argument("--resume", default=None, metavar="PATH",
                     help="restore a snapshot by verified replay and run "
                          "to completion; architecture/workload flags are "
                          "taken from the snapshot, not the command line")

    obs = sub.add_parser("obs", help="inspect telemetry a run wrote")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser(
        "summarize", help="render top counters, histograms and the "
                          "profile from a metrics.json")
    summ.add_argument("path",
                      help="metrics.json or a --telemetry-out directory")
    summ.add_argument("--top", type=int, default=12,
                      help="how many counters to show (default 12)")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential serial-vs-sharded conformance fuzzing")
    fuzz.add_argument("--cases", type=int, default=25,
                      help="number of generated cases (default 25)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed; case i uses seed*1000003 + i")
    fuzz.add_argument("--case", default=None, metavar="JSON",
                      help="re-run one exact case from its JSON reproducer "
                           "(as printed on failure)")
    fuzz.add_argument("--no-sanitize", action="store_true",
                      help="digest/stat diffing only, runtime checks off")
    fuzz.add_argument("--snapshot", action="store_true",
                      help="snapshot mode: per case, pin run(0..end) == "
                           "run(0..k); restore; run(k..end) at a random "
                           "boundary k instead of serial-vs-sharded")

    sweep = sub.add_parser(
        "sweep", help="regenerate a paper figure/table, or run a "
                      "design-space exploration from a sweep-spec file")
    sweep.add_argument("figure", metavar="figure|specfile",
                       help=f"one of {', '.join(SWEEPS)}, or the path of "
                            "a JSON sweep spec (see docs/dse.md)")
    sweep.add_argument("--sizes", type=_sizes, default=(1, 8, 64))
    sweep.add_argument("--scale", choices=tuple(SCALE_PARAMS),
                       default="small")
    sweep.add_argument("--seeds", type=_sizes, default=(0,))
    # Design-space exploration options (sweep-spec mode only).
    sweep.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="concurrent simulation workers (default 2)")
    sweep.add_argument("--backend", choices=("serial", "sharded"),
                       default=None,
                       help="override the base arch backend for every "
                            "cell (sharded requires --shards)")
    sweep.add_argument("--shards", type=int, default=0,
                       help="shard count applied with --backend sharded")
    sweep.add_argument("--store", default=".repro-service", metavar="DIR",
                       help="content-hash result cache shared with the "
                            "service (default .repro-service)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume from cached cell results (this is "
                            "the default: cells are content-addressed, "
                            "so an interrupted sweep re-simulates only "
                            "missing cells)")
    sweep.add_argument("--fresh", action="store_true",
                       help="evict this sweep's cached cell results "
                            "first and re-simulate everything")
    sweep.add_argument("--timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-cell wall-clock limit (default 300)")
    sweep.add_argument("--out", default=None, metavar="PATH",
                       help="write the deterministic result frame as "
                            "JSON")
    sweep.add_argument("--csv", default=None, metavar="PATH",
                       help="write the flat per-cell CSV export")

    serve = sub.add_parser(
        "serve", help="run the simulation service (HTTP JSON API with a "
                      "job queue and content-hash result cache)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8123,
                       help="bind port (default 8123; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="simulation worker threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max queued jobs before submissions get a "
                            "503 (default 64)")
    serve.add_argument("--store", default=".repro-service", metavar="DIR",
                       help="result-cache directory (default "
                            ".repro-service)")
    serve.add_argument("--job-timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-job wall-clock limit (default 300)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    pol = sub.add_parser("policies",
                         help="compare sync policies on one benchmark")
    pol.add_argument("benchmark", choices=BENCHMARKS)
    pol.add_argument("--cores", type=int, default=64)
    pol.add_argument("--scale", choices=tuple(SCALE_PARAMS), default="small")
    pol.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench", help="run the hot-path perf suite (BENCH_engine.json)")
    bench.add_argument("--output", default="BENCH_engine.json",
                       help="where to write the JSON record ('' disables)")
    bench.add_argument("--baseline", default=None,
                       help="previous BENCH_engine.json to compute speedups "
                            "against")
    bench.add_argument("--repeat", type=int, default=3,
                       help="best-of-N repetitions per benchmark")
    bench.add_argument("--quick", action="store_true",
                       help="shrunk problem sizes (CI smoke mode)")
    bench.add_argument("--only", default=None,
                       help="comma-separated subset of benchmark names")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top-20 "
                            "cumulative hot functions instead of timing")
    bench.add_argument("--kernel", default=None,
                       choices=("python", "vectorized", "compiled"),
                       help="pin the engine kernel for the whole suite "
                            "(exported as REPRO_ENGINE_KERNEL so sharded "
                            "workers inherit it); recorded in the output")
    return parser


def _cmd_list(out) -> int:
    print("benchmarks:", file=out)
    for name in BENCHMARKS:
        params = SCALE_PARAMS["small"][name]
        print(f"  {name:22s} small-scale params: {params}", file=out)
    print("scales:", ", ".join(SCALE_PARAMS), file=out)
    return 0


def _cmd_info(out) -> int:
    from .arch import ArchConfig

    cfg = ArchConfig()
    print("architecture presets: shared_mesh, dist_mesh, clustered_dist,",
          file=out)
    print("  polymorphic_shared, polymorphic_dist, shared_mesh_validation",
          file=out)
    print("paper reference parameters:", file=out)
    print(f"  drift bound T        : {cfg.drift_bound}", file=out)
    print(f"  shared bank latency  : {cfg.bank_latency} cycles", file=out)
    print(f"  L2 latency           : {cfg.l2_latency} cycles", file=out)
    print(f"  link latency/bw      : {cfg.link_latency} cy / "
          f"{cfg.link_bandwidth} B/cy", file=out)
    print(f"  task start / switch  : {cfg.task_start_cycles} / "
          f"{cfg.context_switch_cycles} cycles", file=out)
    print(f"  branch predictor     : {cfg.branch_accuracy:.0%}, "
          f"{cfg.branch_penalty}-cycle mispredict", file=out)
    return 0


def _make_config(args):
    if args.arch == "clustered":
        cfg = clustered_dist(args.cores, args.clusters)
        if args.memory == "shared":
            raise SystemExit("clustered preset uses distributed memory")
    elif args.arch == "polymorphic":
        if args.memory == "numa":
            raise SystemExit("polymorphic preset supports shared/distributed")
        cfg = (polymorphic_shared(args.cores) if args.memory == "shared"
               else polymorphic_dist(args.cores))
    else:
        if args.memory == "shared":
            cfg = shared_mesh(args.cores)
        elif args.memory == "numa":
            cfg = numa_mesh(args.cores)
        else:
            cfg = dist_mesh(args.cores)
    if args.backend == "sharded" and args.shards < 1:
        raise SystemExit("--backend sharded requires --shards N "
                         "(e.g. --shards 4)")
    overrides = {}
    if getattr(args, "window_max", None) is not None:
        overrides["window_max_factor"] = args.window_max
        if args.window_max <= 1.0:
            overrides["adaptive_window"] = False
    if getattr(args, "round_batch", None) is not None:
        overrides["round_batch"] = args.round_batch
    if getattr(args, "sanitize", False):
        overrides["sanitize"] = True
    if getattr(args, "kernel", None) is not None:
        overrides["engine_kernel"] = args.kernel
    telemetry = getattr(args, "telemetry", None)
    if telemetry is None and getattr(args, "telemetry_out", None):
        telemetry = "all"
    if telemetry:
        from .obs import parse_spec

        try:
            parts = parse_spec(telemetry)
        except ValueError as exc:
            raise SystemExit(str(exc))
        overrides["telemetry"] = telemetry
        if "timeline" in parts and args.backend == "sharded":
            # Workers only record spans when the machine collects traces.
            overrides["collect_trace"] = True
    return dataclasses.replace(
        cfg, drift_bound=args.drift, sync=args.sync, dispatch=args.dispatch,
        seed=args.seed, backend=args.backend, shards=args.shards,
        **overrides,
    )


def _cmd_run_checkpoint(args, out) -> int:
    """``run`` in checkpoint/resume mode (repro.checkpoint drivers)."""
    from .checkpoint import (load_snapshot, resume_run, run_checkpointed,
                             save_snapshot)
    from .parallel import WorkloadSpec

    path = args.checkpoint
    if args.checkpoint_every is not None and not path:
        raise SystemExit("--checkpoint-every requires --checkpoint PATH")
    written = [0]

    def sink(snap):
        save_snapshot(snap, path)
        written[0] += 1

    if args.resume:
        snap = load_snapshot(args.resume)
        boundary = snap.boundary
        print(f"resuming {snap.kind} run from {args.resume} at "
              f"{boundary['kind']} {boundary['value']:g} "
              f"(verified replay)", file=out)
        outcome = resume_run(
            args.resume,
            checkpoint_every=args.checkpoint_every,
            sink=sink if args.checkpoint_every is not None else None)
        specs = snap.rebuild_workloads()
    else:
        if args.benchmark is None:
            raise SystemExit("run: benchmark is required unless --resume")
        cfg = _make_config(args)
        specs = [WorkloadSpec(args.benchmark, scale=args.scale,
                              seed=args.seed, memory=cfg.memory,
                              root_core=0)]
        outcome = run_checkpointed(cfg, specs, args.checkpoint_every, sink)

    verified = False
    spec = specs[0]
    result = outcome["results"][0]
    if not spec.factory:
        workload = get_workload(spec.benchmark, scale=spec.scale,
                                seed=spec.seed, memory=spec.memory)
        workload.verify(result["output"])
        verified = True
        print(f"benchmark        : {spec.benchmark} {workload.meta}",
              file=out)
    print(f"virtual time     : {outcome['completion']:.1f} cycles",
          file=out)
    print(f"tasks started    : {outcome['stats_vt']['tasks_started']}",
          file=out)
    print(f"messages         : {sum(outcome['messages'].values())}",
          file=out)
    print(f"host wall        : {outcome['host']['wall_seconds']:.3f} s",
          file=out)
    if written[0]:
        print(f"checkpoints      : {written[0]} written -> {path}",
              file=out)
    if verified:
        print("output verified  : yes", file=out)
    return 0


def _cmd_run(args, out) -> int:
    if args.resume or args.checkpoint_every is not None:
        return _cmd_run_checkpoint(args, out)
    if args.benchmark is None:
        raise SystemExit("run: benchmark is required unless --resume")
    cfg = _make_config(args)
    workload = get_workload(args.benchmark, scale=args.scale, seed=args.seed,
                            memory=cfg.memory)
    timeline = None
    if cfg.backend == "sharded":
        from .arch import build_backend
        from .parallel import WorkloadSpec

        backend = build_backend(cfg)
        print(backend.describe(), file=out)
        (result,) = backend.run_workloads([
            WorkloadSpec(args.benchmark, scale=args.scale, seed=args.seed,
                         memory=cfg.memory, root_core=0)])
        stats = backend.stats
        if backend.telemetry is not None and cfg.collect_trace:
            from .obs import build_chrome_trace

            timeline = build_chrome_trace(
                trace=backend.trace, host_rounds=backend.worker_rounds,
                coord_events=backend.events)
    else:
        machine = build_machine(cfg)
        backend = machine
        tracer = None
        profiler = None
        tel = machine.telemetry
        if tel is not None and "timeline" in tel.parts:
            from .harness.trace import Tracer

            tracer = Tracer(machine)
        if tel is not None and "profile" in tel.parts:
            from .obs import SamplingProfiler

            profiler = SamplingProfiler(tel).start()
        try:
            result = machine.run(workload.root)
        finally:
            if profiler is not None:
                profiler.stop()
        stats = machine.stats
        if tracer is not None:
            timeline = tracer.to_chrome()
    workload.verify(result["output"])
    print(f"benchmark        : {args.benchmark} {workload.meta}", file=out)
    print(f"architecture     : {cfg.name} sync={cfg.sync} T={cfg.drift_bound}",
          file=out)
    print(f"virtual time     : {result['work_vtime']:.1f} cycles", file=out)
    print(f"tasks started    : {stats.tasks_started}", file=out)
    print(f"messages         : {stats.total_messages}", file=out)
    print(f"drift stalls     : {stats.drift_stalls}", file=out)
    print(f"host wall        : {stats.wall_seconds:.3f} s", file=out)
    if cfg.backend == "sharded":
        proto = backend.protocol
        print(f"sync rounds      : {proto['rounds']} "
              f"({proto['waivers']} waivers, window peak "
              f"x{proto['window_peak']:g})", file=out)
        print(f"boundary bytes   : {proto['bytes_shipped']}", file=out)
        print(f"parallel eff.    : {proto['parallel_efficiency']:.1%}",
              file=out)
    if cfg.telemetry:
        from .obs import collect_snapshot, write_outputs

        snapshot = collect_snapshot(backend)
        if snapshot is not None:
            counters = snapshot.get("counters", {})
            actions = sum(v for k, v in counters.items()
                          if k.startswith("engine.actions."))
            print(f"telemetry        : {len(counters)} counters "
                  f"({actions} actions), "
                  f"{len(snapshot.get('histograms', {}))} histograms",
                  file=out)
            if args.telemetry_out:
                written = write_outputs(args.telemetry_out, snapshot,
                                        timeline)
                for name, path in sorted(written.items()):
                    print(f"  wrote {name:8s} : {path}", file=out)
                print(f"  (summarize with: python -m repro obs summarize "
                      f"{args.telemetry_out})", file=out)
    if args.baseline:
        base_cfg = dataclasses.replace(cfg, n_cores=1, polymorphic=False,
                                       topology="mesh", name="single-core",
                                       backend="serial", shards=0)
        base_workload = get_workload(args.benchmark, scale=args.scale,
                                     seed=args.seed, memory=cfg.memory)
        base = build_machine(base_cfg).run(base_workload.root)
        speedup = base["work_vtime"] / result["work_vtime"]
        print(f"speedup vs 1 core: {speedup:.2f}x", file=out)
    print("output verified  : yes", file=out)
    return 0


def _cmd_fuzz(args, out) -> int:
    from .verify.fuzzer import fuzz_main

    return fuzz_main(cases=args.cases, seed=args.seed,
                     sanitize=not args.no_sanitize,
                     case_json=args.case, snapshot=args.snapshot, out=out)


def _cmd_dse_sweep(args, out) -> int:
    """``sweep`` in design-space exploration mode (repro.dse)."""
    from .dse import (SweepSpecError, expand_sweep, frame_csv, frame_json,
                      frontier_table, load_sweep_spec, pareto_chart,
                      run_sweep)

    if args.fresh and args.resume:
        print("error: --fresh and --resume are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        payload = load_sweep_spec(args.figure)
        if args.backend is not None:
            if args.backend == "sharded" and args.shards < 1:
                raise SweepSpecError("--backend sharded requires --shards N "
                                     "(e.g. --shards 4)")
            if not isinstance(payload, dict):
                raise SweepSpecError("sweep spec must be a JSON object")
            base = payload.setdefault("base", {})
            if not isinstance(base, dict):
                raise SweepSpecError("'base' must be a JSON object")
            arch = base.setdefault("arch", {})
            if not isinstance(arch, dict):
                raise SweepSpecError("'arch' must be a JSON object")
            arch["backend"] = args.backend
            arch["shards"] = args.shards if args.backend == "sharded" else 0
        plan = expand_sweep(payload)
    except SweepSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_pruned = plan.n_cells - len(plan.feasible_cells())
    print(f"sweep            : {plan.name} ({plan.short_id})", file=out)
    print(f"cells            : {plan.n_cells} over "
          f"{len(plan.axes)} axes ({n_pruned} pruned by budget)", file=out)
    print(f"result cache     : {args.store}", file=out)
    outcome = run_sweep(plan, store_dir=args.store, jobs=args.jobs,
                        fresh=args.fresh, timeout_s=args.timeout)
    ex = outcome.execution
    print(f"simulated        : {ex['simulations_started']} new, "
          f"{ex['cache_hits']} cache hits", file=out)
    print(f"cells ok/failed  : {ex['cells_ok']} / {ex['cells_failed']}",
          file=out)
    print(f"host wall        : {ex['wall_seconds']:.3f} s "
          f"({args.jobs} workers)", file=out)
    for cell in outcome.frame["cells"]:
        if cell["status"] == "failed":
            err = cell["error"]
            print(f"  cell {cell['index']} failed [{err['type']}]: "
                  f"{err['message']}", file=out)
    print("", file=out)
    print(frontier_table(outcome.frame), file=out)
    print("", file=out)
    print(pareto_chart(outcome.frame), file=out)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(frame_json(outcome.frame))
        print(f"wrote frame      : {args.out}", file=out)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(frame_csv(outcome.frame))
        print(f"wrote csv        : {args.csv}", file=out)
    return 1 if ex["cells_failed"] else 0


def _cmd_sweep(args, out) -> int:
    if args.figure not in SWEEPS:
        if os.path.exists(args.figure):
            return _cmd_dse_sweep(args, out)
        print(f"error: {args.figure!r} is neither a known figure "
              f"({', '.join(SWEEPS)}) nor a sweep-spec file",
              file=sys.stderr)
        return 2
    from .harness import (
        clustered_experiment,
        distmem_experiment,
        drift_sweep_experiment,
        polymorphic_experiment,
        sharedmem_experiment,
        simtime_experiment,
        validation_experiment,
    )
    from .harness.report import (
        format_curves,
        format_drift_tables,
        format_power_law,
        format_validation,
    )

    kwargs = dict(scale=args.scale, seeds=args.seeds)
    if args.figure in ("fig5", "fig6"):
        result = validation_experiment(
            sizes=args.sizes, polymorphic=(args.figure == "fig6"), **kwargs)
        print(format_validation(result), file=out)
    elif args.figure == "fig7":
        result = simtime_experiment(sizes=args.sizes, **kwargs)
        print(format_curves(result["normalized"], result["sizes"],
                            title="Normalized simulation time",
                            value_label="sim wall / native wall"), file=out)
        if result["power_law"]:
            print(format_power_law(result["power_law"]), file=out)
    elif args.figure == "fig8":
        result = sharedmem_experiment(sizes=args.sizes, **kwargs)
        print(format_curves(result["curves"], result["sizes"],
                            title="Shared-memory speedups"), file=out)
    elif args.figure == "fig9":
        result = distmem_experiment(sizes=args.sizes, **kwargs)
        print(format_curves(result["curves"], result["sizes"],
                            title="Distributed-memory speedups"), file=out)
    elif args.figure in ("fig10", "fig11"):
        large = tuple(n for n in args.sizes if n > 1) or (64,)
        result = drift_sweep_experiment(sizes=large, **kwargs)
        print(format_drift_tables(result), file=out)
    elif args.figure == "fig12":
        result = clustered_experiment(sizes=args.sizes, **kwargs)
        print(format_curves(result["clustered"], result["sizes"],
                            title="Clustered speedups (4 clusters)"),
              file=out)
    elif args.figure == "fig13":
        result = polymorphic_experiment(sizes=args.sizes, **kwargs)
        print(format_curves(result["polymorphic"], result["sizes"],
                            title="Polymorphic speedups"), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from .harness import perfbench

    if args.kernel:
        # Environment rather than config plumbing: every build in the
        # suite (and any sharded worker child) resolves "auto" through
        # REPRO_ENGINE_KERNEL, so one export pins them all.
        os.environ["REPRO_ENGINE_KERNEL"] = args.kernel
    if args.profile:
        perfbench.profile_suite(quick=args.quick, top=20, out=out)
        return 0
    only = None
    if args.only is not None:
        only = tuple(x.strip() for x in args.only.split(",") if x.strip())
        if not only:
            print(f"error: --only {args.only!r} names no benchmarks; "
                  f"choose from {sorted(perfbench.SUITE)}", file=sys.stderr)
            return 2
    if args.baseline and perfbench.load_record(args.baseline) is None:
        print(f"warning: baseline {args.baseline} missing or unreadable; "
              "no speedups will be reported", file=sys.stderr)
    try:
        perfbench.run_and_write(
            output=args.output,
            repeat=args.repeat,
            quick=args.quick,
            only=only,
            baseline_path=args.baseline,
            out=out,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def _cmd_obs(args, out) -> int:
    from .obs import load_metrics, summarize_metrics

    try:
        snapshot = load_metrics(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load metrics from {args.path!r}: {exc}",
              file=sys.stderr)
        return 2
    print(summarize_metrics(snapshot, top=args.top), file=out)
    return 0


def _cmd_serve(args, out) -> int:
    import signal

    from .service import SimulationService

    service = SimulationService(
        store_dir=args.store, host=args.host, port=args.port,
        workers=args.workers, depth=args.queue_depth,
        job_timeout_s=args.job_timeout, quiet=not args.verbose)
    print(f"repro service listening on {service.base_url}", file=out)
    print(f"  result cache : {service.store.root} "
          f"({len(service.store)} cached)", file=out)
    print(f"  worker pool  : {args.workers} threads, "
          f"queue depth {args.queue_depth}, "
          f"job timeout {args.job_timeout:g}s", file=out)
    print("  try          : curl -s "
          f"{service.base_url}/v1/health", file=out)

    # SIGTERM (systemd/docker stop) funnels into the same KeyboardInterrupt
    # path as Ctrl-C, so both shut down gracefully: stop accepting, then
    # drain in-flight jobs so accepted work still lands in the cache.
    def _term(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _term)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: draining in-flight jobs ...", file=out)
    finally:
        signal.signal(signal.SIGTERM, previous)
        drained = service.close(drain=True, timeout=args.job_timeout)
        print("shutdown complete"
              + ("" if drained else " (some jobs were still unfinished)"),
              file=out)
    return 0


def _cmd_policies(args, out) -> int:
    from .harness import sync_policy_ablation
    from .harness.report import format_table

    result = sync_policy_ablation(
        n_cores=args.cores, scale=args.scale, seeds=(args.seed,),
        benchmarks=(args.benchmark,),
    )
    rows = []
    for policy, vtime in result["vtimes"][args.benchmark].items():
        rows.append([
            policy, vtime,
            result["deviation_pct"][args.benchmark][policy],
            result["walls"][args.benchmark][policy],
        ])
    print(format_table(
        ["policy", "virtual time", "vs conservative %", "host s"], rows,
        title=f"{args.benchmark} on {args.cores} cores",
    ), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "info":
            return _cmd_info(out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "fuzz":
            return _cmd_fuzz(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "policies":
            return _cmd_policies(args, out)
        if args.command == "obs":
            return _cmd_obs(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
    except BrokenPipeError:  # downstream pager/head closed; not an error
        return 0
    raise SystemExit(2)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
