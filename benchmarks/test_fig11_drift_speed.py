"""Figure 11 (table): average simulation-time variation with T.

Regenerates the speed half of the T trade-off: percent change of host
simulation time at T in {50, 500, 1000} against the T=100 baseline.

Paper shape: lowering T to 50 increases simulation time for most
benchmarks (+26.7 % on average); raising it to 1000 speeds simulation up by
an average factor of 2.38 (3.67 at 1024 cores) — i.e. simulation-time
variation is monotonically decreasing in T.
"""

from repro.harness import drift_sweep_experiment
from repro.harness.report import format_drift_tables

from conftest import bench_scale, bench_seeds, bench_sizes, emit

T_VALUES = (50.0, 500.0, 1000.0)


def _large_sizes():
    sizes = [n for n in bench_sizes() if n >= 64]
    return tuple(sizes) or (64,)


def test_fig11_simtime_variation_with_t(benchmark):
    result = benchmark.pedantic(
        drift_sweep_experiment,
        kwargs=dict(
            t_values=T_VALUES,
            baseline_t=100.0,
            sizes=_large_sizes(),
            scale=bench_scale(),
            seeds=bench_seeds(),
        ),
        rounds=1,
        iterations=1,
    )
    from repro.harness.report import format_table

    text = format_drift_tables(result)
    stall_rows = [
        [name] + [result["drift_stalls"][name][t]
                  for t in (50.0, 100.0, 500.0, 1000.0)]
        for name in sorted(result["drift_stalls"])
    ]
    text += "\n\n" + format_table(
        ["benchmark", "T=50", "T=100", "T=500", "T=1000"],
        stall_rows,
        title="Drift stalls per run (synchronization work; deterministic)",
    )
    emit("fig11_drift_speed", text)

    # Synchronization work (drift stalls) falls monotonically with T — the
    # deterministic form of the paper's speedup claim.  Host wall-clock
    # follows on average but is noisy at millisecond run times.
    for name, series in result["drift_stalls"].items():
        assert series[1000.0] <= series[50.0], \
            f"{name}: more stalls at T=1000 than at T=50"
    walls = result["walls"]
    faster = sum(
        1 for series in walls.values() if series[1000.0] <= series[50.0] * 1.25
    )
    assert faster >= len(walls) / 2, "raising T should not slow simulation"
