"""Figure 6 + Section VI error table: cycle-level validation, polymorphic.

Same protocol as Fig. 5 but on polymorphic meshes (one core out of two 2x
slower, the other 1.5x faster; identical cumulated computing power).  The
paper reports higher errors here (22.2 / 30.3 / 33.4 % at 16/32/64 cores)
because the referee keeps the L1 speed uniform across cores while SiMany
scales it with core speed — an implementation difference we reproduce.
"""

from repro.harness import validation_experiment
from repro.harness.ascii_chart import render_loglog
from repro.harness.report import format_validation

from conftest import bench_scale, bench_seeds, emit, validation_sizes


def test_fig06_polymorphic_validation(benchmark):
    result = benchmark.pedantic(
        validation_experiment,
        kwargs=dict(
            sizes=validation_sizes(),
            scale=bench_scale(),
            seeds=bench_seeds(),
            polymorphic=True,
        ),
        rounds=1,
        iterations=1,
    )
    chart_curves = {}
    for name in result["vt"]:
        chart_curves[name + " VT"] = result["vt"][name]
        chart_curves[name + " CL"] = result["cl"][name]
    emit("fig06_validation_poly", format_validation(result) + "\n\n" + render_loglog(chart_curves, title="Figure 6 (log-log)"))
    assert result["polymorphic"]
    for name, vt_curve in result["vt"].items():
        assert vt_curve[1] == 1.0
    for err in result["errors"].values():
        assert err < 2.0
