"""Figure 5 + Section VI error table: cycle-level validation, uniform mesh.

Regenerates the paper's comparison of SiMany (VT) against the cycle-level
referee (CL) for Barnes-Hut, Connected Components, Quicksort and SpMxV on
uniform shared-memory 2D meshes, including the geometric-mean speedup
errors (paper: 8.8 % at 16 cores, 18.8 % at 32, 22.9 % at 64).
"""

from repro.harness import validation_experiment
from repro.harness.ascii_chart import render_loglog
from repro.harness.report import format_validation

from conftest import bench_scale, bench_seeds, emit, validation_sizes


def test_fig05_uniform_mesh_validation(benchmark):
    result = benchmark.pedantic(
        validation_experiment,
        kwargs=dict(
            sizes=validation_sizes(),
            scale=bench_scale(),
            seeds=bench_seeds(),
            polymorphic=False,
        ),
        rounds=1,
        iterations=1,
    )
    chart_curves = {}
    for name in result["vt"]:
        chart_curves[name + " VT"] = result["vt"][name]
        chart_curves[name + " CL"] = result["cl"][name]
    emit("fig05_validation_mesh", format_validation(result) + "\n\n" + render_loglog(chart_curves, title="Figure 5 (log-log)"))
    # Shape assertions: every benchmark's VT curve tracks CL's direction.
    for name, vt_curve in result["vt"].items():
        cl_curve = result["cl"][name]
        sizes = sorted(vt_curve)
        assert vt_curve[1] == 1.0 and cl_curve[1] == 1.0
        # Both simulators agree on whether the benchmark scales at all.
        top = sizes[-1]
        assert (vt_curve[top] > 1.0) == (cl_curve[top] > 1.0), name
    for n, err in result["errors"].items():
        assert err < 2.0, f"error at {n} cores implausibly large"
