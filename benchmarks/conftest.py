"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) and prints the same rows/series the
paper reports.  Reports are also written to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — dataset scale: tiny | small | medium | paper
  (default small; the paper's dataset sizes are much slower in Python);
* ``REPRO_BENCH_SIZES``  — comma-separated core counts for the scalability
  sweeps (default ``1,8,64,256,1024`` — the paper's mesh sizes);
* ``REPRO_BENCH_VALIDATION_SIZES`` — core counts for the cycle-level
  validation figures (default ``1,2,4,8,16,32,64`` — the paper's range);
* ``REPRO_BENCH_SEEDS``  — comma-separated dataset seeds (default ``0``;
  the paper averages 50 datasets per benchmark).
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def _int_list(var: str, default: str) -> tuple:
    raw = os.environ.get(var, default)
    return tuple(int(x) for x in raw.split(",") if x.strip())


def bench_sizes() -> tuple:
    return _int_list("REPRO_BENCH_SIZES", "1,8,64,256,1024")


def validation_sizes() -> tuple:
    return _int_list("REPRO_BENCH_VALIDATION_SIZES", "1,2,4,8,16,32,64")


def bench_seeds() -> tuple:
    return _int_list("REPRO_BENCH_SEEDS", "0")


def emit(name: str, text: str) -> None:
    """Print a report and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
