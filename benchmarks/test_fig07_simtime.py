"""Figure 7: average normalized simulation time + square-law regression.

Regenerates the paper's simulation-cost series: wall-clock time of the
simulation normalized to native execution of the same computation, per
benchmark and simulated core count (both memory organizations, like the
paper's "all architecture configurations"), plus the power-law regression
the paper summarizes as "simulation time increases as a square law with a
small coefficient".

Absolute normalized values differ from the paper's (their simulator runs
annotated native C; ours interprets Python generators), but the growth law
with simulated core count is the machine-independent claim.
"""

from repro.harness import simtime_experiment
from repro.harness.report import format_curves, format_power_law

from conftest import bench_scale, bench_seeds, bench_sizes, emit


def test_fig07_normalized_simulation_time(benchmark):
    result = benchmark.pedantic(
        simtime_experiment,
        kwargs=dict(
            sizes=bench_sizes(),
            scale=bench_scale(),
            seeds=bench_seeds(),
        ),
        rounds=1,
        iterations=1,
    )
    text = format_curves(
        result["normalized"], result["sizes"],
        title="Normalized simulation time (sim wall / native wall)",
        value_label="normalized simulation time",
    )
    text += "\n\n" + format_power_law(result["power_law"])
    emit("fig07_simtime", text)

    for name, series in result["normalized"].items():
        for value in series.values():
            assert value > 1.0, f"{name}: simulation cannot beat native"
    # The paper's square law: growth exponents stay at or below ~2 (with a
    # generous band for host noise at small scales).
    for name, (a, b) in result["power_law"].items():
        assert -0.5 < b < 3.0, f"{name}: implausible growth exponent {b}"
