"""Ablation A2: shadow virtual time (paper, Section II-A, Figure 2).

Idle cores maintaining a shadow virtual time (min of neighbours + T) keep
non-connected sets of active cores synchronized.  This ablation runs with
shadows off, with the fast monotone approximation, and with the exact
fixpoint, reporting virtual time, drift stalls and host cost for each.
"""

from repro.harness import shadow_time_ablation
from repro.harness.report import format_table

from conftest import bench_scale, bench_seeds, emit


def test_ablation_shadow_time(benchmark):
    result = benchmark.pedantic(
        shadow_time_ablation,
        kwargs=dict(
            n_cores=64,
            scale=bench_scale(),
            seeds=bench_seeds(),
            benchmark="octree",
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [mode, data["vtime"], data["drift_stalls"], data["wall"]]
        for mode, data in sorted(result.items())
    ]
    emit("ablation_shadow_time", format_table(
        ["shadow mode", "virtual time", "drift stalls", "host s"],
        rows,
        title="Shadow-virtual-time ablation (octree, 64 cores)",
    ))

    # Without shadows, idle cores never constrain drift: stalls can only
    # decrease (or stay), and all modes compute the same program.
    assert result["no_shadow"]["drift_stalls"] <= (
        result["shadow_exact"]["drift_stalls"] + 1
    )
    for data in result.values():
        assert data["vtime"] > 0
