"""Figure 10 (table): average virtual-time speedup variation with T.

Regenerates the accuracy half of the T trade-off study: percent change of
each benchmark's speedup at T in {50, 500, 1000} against the T=100
baseline, averaged over the large mesh sizes (the paper considers 64-1024
cores, "the part of interest of the scalability profiles").

Paper shape: regular benchmarks (Quicksort, SpMxV) practically do not vary;
only the timing-dependent searches (Dijkstra, Connected Components) move
more than a few percent, degrading as T grows.
"""

from repro.harness import drift_sweep_experiment
from repro.harness.report import format_drift_tables

from conftest import bench_scale, bench_seeds, bench_sizes, emit

T_VALUES = (50.0, 500.0, 1000.0)


def _large_sizes():
    sizes = [n for n in bench_sizes() if n >= 64]
    return tuple(sizes) or (64,)


def test_fig10_speedup_variation_with_t(benchmark):
    result = benchmark.pedantic(
        drift_sweep_experiment,
        kwargs=dict(
            t_values=T_VALUES,
            baseline_t=100.0,
            sizes=_large_sizes(),
            scale=bench_scale(),
            seeds=bench_seeds(),
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig10_drift_accuracy", format_drift_tables(result))

    variation = result["speedup_variation_pct"]
    # Regular benchmarks are practically insensitive to T.
    for name in ("spmxv", "quicksort", "octree", "barnes_hut"):
        for t, pct in variation[name].items():
            assert abs(pct) < 40.0, f"{name} at T={t}: {pct:+.1f}%"
    # The timing-dependent searches exist in the table too.
    assert "dijkstra" in variation
    assert "connected_components" in variation
