"""Figure 9: speedups on regular 2D meshes, distributed memory.

Paper shape: Quicksort's and SpMxV's results do not significantly change
versus shared memory (little data movement, no cell contention); the
data-contended benchmarks, Dijkstra and Connected Components, collapse —
CC actually degrades above 8 cores despite the run-time's load balancing.
"""

from repro.harness import distmem_experiment, sharedmem_experiment
from repro.harness.ascii_chart import render_loglog
from repro.harness.report import format_curves

from conftest import bench_scale, bench_seeds, bench_sizes, emit


def test_fig09_distmem_speedups(benchmark):
    sizes = bench_sizes()
    result = benchmark.pedantic(
        distmem_experiment,
        kwargs=dict(sizes=sizes, scale=bench_scale(), seeds=bench_seeds()),
        rounds=1,
        iterations=1,
    )
    text = format_curves(
        result["curves"], result["sizes"],
        title="Regular 2D mesh speedups (distributed memory)",
    )
    text += "\n\n" + render_loglog(
        result["curves"], title="Figure 9 (log-log)",
    )
    emit("fig09_distmem", text)

    # Compare against the shared-memory curves for the collapse claims.
    shared = sharedmem_experiment(
        sizes=sizes, scale=bench_scale(), seeds=bench_seeds(),
        benchmarks=("dijkstra", "connected_components", "quicksort", "spmxv"),
    )["curves"]
    dist = result["curves"]
    top = max(sizes)

    # Contended benchmarks collapse relative to shared memory.
    for name in ("dijkstra", "connected_components"):
        assert dist[name][top] < shared[name][top], name

    # Data-light benchmarks barely change.
    for name in ("quicksort", "spmxv"):
        ratio = dist[name][top] / shared[name][top]
        assert ratio > 0.5, f"{name} should not collapse on distributed memory"
