"""Ablation A1: spatial synchronization vs the alternative schemes.

Runs the same benchmarks under every sync policy inside the one engine:
spatial (the paper), conservative (zero-drift referee), WWT-style global
quantum, SlackSim-style bounded slack, Graphite-style LaxP2P, and
unbounded.  Reports virtual-time deviation from the conservative referee
(accuracy) and host wall time plus drift stalls (cost).

Expected shape (paper, Section VII): spatial sync needs far fewer
synchronization events than the global schemes at comparable accuracy,
while LaxP2P provides no fixed drift guarantee.
"""

from repro.harness import sync_policy_ablation
from repro.harness.report import format_table

from conftest import bench_scale, bench_seeds, emit

POLICIES = ("conservative", "spatial", "quantum", "bounded_slack",
            "laxp2p", "unbounded")


def test_ablation_sync_policies(benchmark):
    result = benchmark.pedantic(
        sync_policy_ablation,
        kwargs=dict(
            policies=POLICIES,
            n_cores=64,
            scale=bench_scale(),
            seeds=bench_seeds(),
            benchmarks=("quicksort", "connected_components", "octree"),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in sorted(result["vtimes"]):
        for policy in POLICIES:
            rows.append([
                name,
                policy,
                result["vtimes"][name][policy],
                result["deviation_pct"][name][policy],
                result["walls"][name][policy],
            ])
    emit("ablation_sync_policies", format_table(
        ["benchmark", "policy", "virtual time", "vs conservative %",
         "host s"],
        rows,
        title="Sync-policy ablation on 64 cores",
    ))

    for name, deviations in result["deviation_pct"].items():
        assert deviations["conservative"] == 0.0
        # Bounded-window schemes stay closer to the referee than
        # free-running cores on at least one benchmark overall.
        assert abs(deviations["spatial"]) <= abs(deviations["unbounded"]) + 60.0
