"""Figure 8: speedups on regular 2D meshes, optimistic shared memory.

Regenerates the scalability series for all six dwarfs on the shared-memory
architecture type.  Paper shape: Dijkstra super-linear (their datasets
reach 4282x); SpMxV scales well then suddenly tops (dataset size); the
theoretical maximum for Quicksort is log2(n)/2; most benchmarks gain
little (or lose) between 256 and 1024 cores.
"""

import math

from repro.harness import sharedmem_experiment
from repro.harness.ascii_chart import render_loglog
from repro.harness.report import format_curves
from repro.workloads import get_workload

from conftest import bench_scale, bench_seeds, bench_sizes, emit


def test_fig08_sharedmem_speedups(benchmark):
    sizes = bench_sizes()
    result = benchmark.pedantic(
        sharedmem_experiment,
        kwargs=dict(sizes=sizes, scale=bench_scale(), seeds=bench_seeds()),
        rounds=1,
        iterations=1,
    )
    text = format_curves(
        result["curves"], result["sizes"],
        title="Regular 2D mesh speedups (shared memory)",
    )
    text += "\n\n" + render_loglog(
        result["curves"], title="Figure 8 (log-log)",
    )
    emit("fig08_sharedmem", text)

    curves = result["curves"]
    top = max(sizes)
    mid = sizes[len(sizes) // 2]

    # Dijkstra is super-linear on optimistic shared memory.
    assert curves["dijkstra"][top] > top / 4 or curves["dijkstra"][mid] > mid

    # Quicksort bounded by its critical path.
    n = get_workload("quicksort", scale=bench_scale()).meta["n"]
    assert curves["quicksort"][top] <= math.log2(n) / 2 + 1.0

    # Nothing (except possibly Dijkstra's pruning artefacts) collapses on
    # this architecture: speedups at the top stay above 1.
    for name, curve in curves.items():
        assert curve[top] > 1.0 or name == "connected_components", name
