"""Ablation A3: heterogeneity-aware task dispatch (paper future work).

The paper's conclusion predicts that scheduling policies aware of "the
latency and computing power disparity among cores" would substantially
improve the polymorphic and clustered results.  This ablation measures
the implemented policies against the paper's occupancy-only dispatch.
"""

from repro.harness import dispatch_ablation
from repro.harness.report import format_table

from conftest import bench_scale, bench_seeds, emit


def test_ablation_dispatch_policies(benchmark):
    result = benchmark.pedantic(
        dispatch_ablation,
        kwargs=dict(n_cores=64, scale=bench_scale(), seeds=bench_seeds()),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in sorted(result["polymorphic"]):
        for dispatch, vtime in result["polymorphic"][name].items():
            rows.append([name, "polymorphic", dispatch, vtime])
        for dispatch, vtime in result["clustered"][name].items():
            rows.append([name, "clustered x4", dispatch, vtime])
    text = format_table(
        ["benchmark", "architecture", "dispatch", "virtual time"],
        rows,
        title="Dispatch-policy ablation on 64 cores",
    )
    chg_rows = [
        [name, pct] for name, pct in
        sorted(result["poly_speedaware_change_pct"].items())
    ]
    text += "\n\n" + format_table(
        ["benchmark", "speed-aware vs occupancy % (negative = faster)"],
        chg_rows,
        title="Polymorphic meshes: effect of speed-aware dispatch",
    )
    emit("ablation_dispatch", text)

    # The future-work hypothesis: speed-aware dispatch does not hurt, and
    # helps at least one benchmark substantially on polymorphic meshes.
    changes = result["poly_speedaware_change_pct"].values()
    assert min(changes) < 0.0, "speed-aware dispatch helped nothing"
    assert max(changes) < 25.0, "speed-aware dispatch badly hurt something"


def test_parallel_host_feasibility(benchmark):
    """Section VIII: from 64-core networks on, enough cores are runnable
    concurrently under spatial sync to keep a multi-core host busy."""
    from repro.harness import parallelism_study

    result = benchmark.pedantic(
        parallelism_study,
        kwargs=dict(sizes=(16, 64, 256), scale=bench_scale(),
                    seeds=bench_seeds(), benchmark="octree"),
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, data["mean"], data["p95"], data["max"], data["samples"]]
        for n, data in sorted(result["by_cores"].items())
    ]
    emit("ablation_parallel_host", format_table(
        ["simulated cores", "mean runnable", "p95", "max", "samples"],
        rows,
        title="Concurrently runnable cores under spatial sync (octree)",
    ))

    by_cores = result["by_cores"]
    # More simulated cores => at least as much available parallelism, and
    # a 64-core network already offers a typical host's worth (>= 4).
    assert by_cores[64]["mean"] >= 4.0
    assert by_cores[256]["max"] >= by_cores[16]["max"]
