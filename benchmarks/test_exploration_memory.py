"""Exploration E1: the paper's memory-organization spectrum (Section III).

"Different memory organizations are possible, from a single shared memory
with uniform latency to fully distributed banks with or without hardware
coherence."  This benchmark sweeps all three points of that spectrum —
optimistic shared memory, NUMA (home-pinned banks + hardware coherence),
and run-time-managed migrating cells — over the contended and data-light
dwarfs, showing the design-space exploration use case end to end.
"""

import dataclasses

from repro.arch import dist_mesh, numa_mesh, shared_mesh
from repro.harness import run_benchmark
from repro.harness.report import format_table

from conftest import bench_scale, bench_seeds, emit

ORGANIZATIONS = (
    ("shared (uniform)", shared_mesh),
    ("numa (+coherence)", numa_mesh),
    ("distributed (cells)", dist_mesh),
)


def _run():
    rows = []
    results = {}
    for name in ("connected_components", "dijkstra", "quicksort", "spmxv"):
        per_org = {}
        for label, factory in ORGANIZATIONS:
            vts = []
            for seed in bench_seeds():
                record = run_benchmark(name, factory(64), scale=bench_scale(),
                                       seed=seed)
                vts.append(record.vtime)
            per_org[label] = sum(vts) / len(vts)
        results[name] = per_org
        base = per_org["shared (uniform)"]
        rows.append([name] + [per_org[label] / base
                              for label, _ in ORGANIZATIONS])
    return rows, results


def test_exploration_memory_organizations(benchmark):
    rows, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("exploration_memory", format_table(
        ["benchmark"] + [label for label, _ in ORGANIZATIONS],
        rows,
        title="Virtual time by memory organization on 64 cores "
              "(normalized to shared)",
    ))

    # Contended benchmarks pay progressively more as sharing gets harder;
    # data-light benchmarks barely care.
    for name in ("connected_components", "dijkstra"):
        per = results[name]
        assert per["numa (+coherence)"] >= per["shared (uniform)"], name
    for name in ("quicksort", "spmxv"):
        per = results[name]
        ratio = per["distributed (cells)"] / per["shared (uniform)"]
        assert ratio < 2.5, f"{name} should be insensitive to memory org"
