"""Figure 12: clustered 2D mesh speedups (4 clusters, distributed memory).

Regenerates the clustered-architecture exploration: clusters with fast
internal links (0.5 cycles) joined by slow inter-cluster links (4 cycles).

Paper shape: data-contended benchmarks vary the most — for low core counts
the inter-cluster latency dominates and regular meshes win; the situation
reverses as the core count grows (average turning point ~78 cores, with
large disparities).  At 1024 cores, virtual execution time drops 28.7 %
for Connected Components and 25.6 % for Dijkstra, while Quicksort (-2.2 %)
and SpMxV (-0.1 %) barely move.
"""

import math

from repro.harness import clustered_experiment
from repro.harness.report import format_curves, format_table

from conftest import bench_scale, bench_seeds, bench_sizes, emit


def test_fig12_clustered_speedups(benchmark):
    sizes = bench_sizes()
    result = benchmark.pedantic(
        clustered_experiment,
        kwargs=dict(
            sizes=sizes,
            n_clusters=4,
            scale=bench_scale(),
            seeds=bench_seeds(),
        ),
        rounds=1,
        iterations=1,
    )
    text = format_curves(
        result["clustered"], result["sizes"],
        title="Clustered 2D mesh speedups, 4 clusters (distributed memory)",
    )
    text += "\n\n" + format_curves(
        result["regular"], result["sizes"],
        title="Regular 2D mesh speedups (reference)",
    )
    rows = [
        [name,
         result["exec_time_change_pct"][name],
         result["crossover_cores"][name]]
        for name in sorted(result["exec_time_change_pct"])
    ]
    text += "\n\n" + format_table(
        ["benchmark", "exec-time change % (top size)", "crossover cores"],
        rows,
        title="Clustered vs regular (negative change = clustering wins)",
    )
    emit("fig12_clustered", text)

    # Data-light benchmarks are insensitive to the network reorganization.
    for name in ("quicksort", "spmxv"):
        assert abs(result["exec_time_change_pct"][name]) < 50.0, name
    # Every benchmark produced a crossover diagnosis (possibly inf/0).
    assert set(result["crossover_cores"]) == set(result["regular"])
