"""Ablation A4: push-only conditional spawning vs work stealing.

The paper's run-time only pushes work (probe + spawn to neighbours); Cilk's
distributed flavour steals when local task sources are depleted (paper,
Section IV, discussing [32]).  This ablation measures the optional
steal extension on the dwarfs and on a synthetic saturated-neighbourhood
workload where pull-based balancing is known to help.
"""

import dataclasses

from repro.arch import build_machine, shared_mesh
from repro.core.task import TaskGroup
from repro.harness import run_benchmark
from repro.harness.report import format_table

from conftest import bench_scale, bench_seeds, emit


def _hotspot_root(n_tasks=32, actions=400, cycles=20.0):
    def worker(ctx):
        for _ in range(actions):
            yield ctx.compute(cycles=cycles)

    def root(ctx):
        group = TaskGroup()
        for _ in range(n_tasks):
            yield from ctx.spawn_or_inline(worker, group=group)
        yield ctx.join(group)
        done = yield ctx.now()
        return {"output": None, "work_vtime": done}

    return root


def _run_ablation():
    rows = []
    for name in ("octree", "quicksort", "connected_components"):
        vt = {}
        steals = {}
        for stealing in (False, True):
            vts = []
            for seed in bench_seeds():
                cfg = dataclasses.replace(shared_mesh(64),
                                          work_stealing=stealing)
                record = run_benchmark(name, cfg, scale=bench_scale(),
                                       seed=seed)
                vts.append(record.vtime)
            vt[stealing] = sum(vts) / len(vts)
        rows.append([name, vt[False], vt[True],
                     100.0 * (vt[True] - vt[False]) / vt[False]])

    # The synthetic hotspot: long tasks saturating one neighbourhood.
    vt = {}
    success = 0
    for stealing in (False, True):
        cfg = dataclasses.replace(shared_mesh(64), work_stealing=stealing)
        machine = build_machine(cfg)
        result = machine.run(_hotspot_root())
        vt[stealing] = result["work_vtime"]
        if stealing:
            success = machine.runtime.steals_successful
    rows.append(["hotspot (synthetic)", vt[False], vt[True],
                 100.0 * (vt[True] - vt[False]) / vt[False]])
    return rows, vt, success


def test_ablation_work_stealing(benchmark):
    rows, hotspot_vt, steals = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1,
    )
    emit("ablation_work_stealing", format_table(
        ["benchmark", "push-only vtime", "with stealing",
         "change % (negative = stealing wins)"],
        rows,
        title="Work-stealing ablation on 64 cores",
    ))
    # Stealing must help the hotspot workload and actually steal.
    assert hotspot_vt[True] < hotspot_vt[False]
    assert steals > 0
    # And it must not catastrophically hurt the dwarfs.
    for row in rows[:-1]:
        assert row[3] < 50.0, f"{row[0]}: stealing badly hurt performance"
