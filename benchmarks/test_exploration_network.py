"""Exploration E2: link latency/bandwidth sensitivity (Section III).

"The latency and bandwidth of individual links are also independently
tunable."  This benchmark sweeps the base link latency on distributed-
memory meshes: data-contended benchmarks (cell traffic on every hop) must
degrade with latency while data-light benchmarks barely move — the same
sensitivity split the clustered experiment (Fig. 12) exploits.
"""

from repro.arch import dist_mesh
from repro.harness.sweep import sweep, sweep_table

from conftest import bench_scale, bench_seeds, emit

LATENCIES = (1.0, 4.0, 16.0)


def _run():
    out = {}
    for name in ("connected_components", "spmxv"):
        out[name] = sweep(
            name, dist_mesh(64), {"link_latency": list(LATENCIES)},
            scale=bench_scale(), seeds=bench_seeds(),
        )
    return out


def test_exploration_link_latency(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    text_parts = []
    for name, records in results.items():
        for record in records:
            record["benchmark"] = name
    merged = [r for records in results.values() for r in records]
    text = sweep_table(merged, rows="benchmark", cols="link_latency",
                       metric="vtime",
                       title="Virtual time vs base link latency "
                             "(distributed memory, 64 cores)")
    emit("exploration_network", text)

    def vt(name, latency):
        return next(r["vtime"] for r in results[name]
                    if r["link_latency"] == latency)

    # Cell-contended CC degrades markedly with link latency...
    assert vt("connected_components", 16.0) > \
        1.5 * vt("connected_components", 1.0)
    # ...while SpMxV (no cell traffic) barely moves.
    assert vt("spmxv", 16.0) < 1.5 * vt("spmxv", 1.0)
