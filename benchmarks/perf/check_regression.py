"""Fail when engine throughput regressed against ``BENCH_engine.json``.

Re-runs the perf suite and compares events/sec per benchmark against the
committed record at the repo root.  A benchmark fails when it is more
than ``REGRESSION_TOLERANCE`` (25 %) below the recorded value — generous
because events/sec on shared CI hosts swings easily by double-digit
percentages; the check is meant to catch order-of-magnitude mistakes
(an accidentally disabled cache, quadratic scan reintroduced), not 5 %
drifts.

Benchmarks present in the fresh results but absent from the baseline
(new suite entries whose record has not been regenerated yet) are
skipped with a notice — they cannot gate until a baseline exists.  On
failure, the per-benchmark deltas are repeated on stderr so CI logs
show *which* entries moved and by how much without scrolling back.

Exit codes: 0 ok, 1 regression, 2 missing/invalid record or bad args.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"))

from repro.harness.perfbench import (  # noqa: E402
    BENCH_FILE,
    REGRESSION_TOLERANCE,
    SUITE,
    effective_kernel,
    load_record,
    run_suite,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", default=os.path.join(REPO_ROOT, BENCH_FILE),
        help="committed benchmark record to compare against")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of-N fresh measurement (default 2)")
    parser.add_argument(
        "--tolerance", type=float, default=REGRESSION_TOLERANCE,
        help="allowed fractional regression (default %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken problem sizes (smoke mode; rates "
                             "are not comparable to a full-size record — "
                             "combine with a quick-mode record or a wide "
                             "--tolerance)")
    parser.add_argument("--only", default=None,
                        help="comma-separated subset of benchmark names "
                             "to run and gate on (e.g. the micro "
                             "benchmarks for a CI smoke job)")
    args = parser.parse_args(argv)

    only = None
    if args.only is not None:
        only = tuple(x.strip() for x in args.only.split(",") if x.strip())
        unknown = [n for n in only if n not in SUITE]
        if not only or unknown:
            print(f"error: --only {args.only!r} "
                  + (f"names unknown benchmarks {unknown}; " if unknown
                     else "names no benchmarks; ")
                  + f"choose from {sorted(SUITE)}", file=sys.stderr)
            return 2

    record = load_record(args.record)
    if not record or "results" not in record:
        print(f"error: no benchmark record at {args.record}", file=sys.stderr)
        return 2
    baseline = record["results"]

    # Throughput is only comparable within one engine kernel: gating a
    # python-kernel run against a vectorized baseline (or vice versa)
    # would flag the kernel gap, not a regression.  Old records without
    # the field (schema 1) are treated as matching.
    kernel = effective_kernel()
    base_kernel = record.get("engine_kernel")
    if base_kernel is not None and base_kernel != kernel:
        print(f"notice: baseline {os.path.basename(args.record)} was "
              f"recorded with engine_kernel={base_kernel!r} but this run "
              f"uses {kernel!r}; skipping the regression gate "
              "(regenerate the record under this kernel to gate it)")
        return 0

    fresh = run_suite(repeat=args.repeat, quick=args.quick, only=only,
                      out=sys.stdout)

    failed = []  # (name, base_rate, rate, ratio)
    for name, now in sorted(fresh.items()):
        base = baseline.get(name)
        base_rate = base.get("events_per_sec") if base else None
        if not base_rate:
            print(f"  {name:34s} skipped: no baseline in "
                  f"{os.path.basename(args.record)} (new benchmark? "
                  f"regenerate the record to gate it)")
            continue
        rate = now["events_per_sec"]
        ratio = rate / base_rate
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failed.append((name, base_rate, rate, ratio))
        print(f"  {name:34s} {base_rate:>12.0f} -> {rate:>12.0f} ev/s "
              f"({ratio:5.2f}x)  {status}")

    if failed:
        print(f"\nregression beyond {args.tolerance:.0%} tolerance vs "
              f"{os.path.basename(args.record)}:", file=sys.stderr)
        for name, base_rate, rate, ratio in failed:
            print(f"  {name}: {(1.0 - ratio):.1%} below baseline "
                  f"({base_rate:.0f} -> {rate:.0f} ev/s)", file=sys.stderr)
        return 1
    print("\nno regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
