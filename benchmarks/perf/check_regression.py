"""Fail when engine throughput regressed against ``BENCH_engine.json``.

Re-runs the perf suite and compares events/sec per benchmark against the
committed record at the repo root.  A benchmark fails when it is more
than ``REGRESSION_TOLERANCE`` (25 %) below the recorded value — generous
because events/sec on shared CI hosts swings easily by double-digit
percentages; the check is meant to catch order-of-magnitude mistakes
(an accidentally disabled cache, quadratic scan reintroduced), not 5 %
drifts.

Exit codes: 0 ok, 1 regression, 2 missing/invalid record.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"))

from repro.harness.perfbench import (  # noqa: E402
    BENCH_FILE,
    REGRESSION_TOLERANCE,
    load_record,
    run_suite,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", default=os.path.join(REPO_ROOT, BENCH_FILE),
        help="committed benchmark record to compare against")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of-N fresh measurement (default 2)")
    parser.add_argument(
        "--tolerance", type=float, default=REGRESSION_TOLERANCE,
        help="allowed fractional regression (default %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken problem sizes (smoke mode; rates "
                             "are not comparable to a full-size record)")
    args = parser.parse_args(argv)

    record = load_record(args.record)
    if not record or "results" not in record:
        print(f"error: no benchmark record at {args.record}", file=sys.stderr)
        return 2

    fresh = run_suite(repeat=args.repeat, quick=args.quick, out=sys.stdout)

    failed = []
    for name, base in sorted(record["results"].items()):
        base_rate = base.get("events_per_sec")
        now = fresh.get(name)
        if not base_rate or now is None:
            continue
        rate = now["events_per_sec"]
        ratio = rate / base_rate
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failed.append(name)
        print(f"  {name:34s} {base_rate:>12.0f} -> {rate:>12.0f} ev/s "
              f"({ratio:5.2f}x)  {status}")

    if failed:
        print(f"\nregression in: {', '.join(failed)} "
              f"(>{args.tolerance:.0%} below {os.path.basename(args.record)})",
              file=sys.stderr)
        return 1
    print("\nno regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
