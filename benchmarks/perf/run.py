"""Run the perf suite and rewrite ``BENCH_engine.json`` (repo root).

Equivalent to ``python -m repro bench``; kept as a file runner so the
suite works without installing the package (CI checks out the repo and
sets ``PYTHONPATH=src``).
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"))

from repro.harness.perfbench import BENCH_FILE, run_and_write  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=BENCH_FILE)
    parser.add_argument("--baseline", default=None,
                        help="prior record to compute speedups against")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--only", nargs="*", default=None)
    args = parser.parse_args(argv)
    run_and_write(
        output=args.output,
        repeat=args.repeat,
        quick=args.quick,
        only=args.only,
        baseline_path=args.baseline,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
