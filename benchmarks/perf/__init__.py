"""Persistent engine performance suite.

Thin wrappers around :mod:`repro.harness.perfbench`:

* ``python benchmarks/perf/run.py`` — run the suite and rewrite the
  committed ``BENCH_engine.json`` record (same as ``python -m repro bench``).
* ``python benchmarks/perf/check_regression.py`` — re-measure and fail
  when any benchmark regressed more than 25 % against the committed
  record (used by CI).
"""
