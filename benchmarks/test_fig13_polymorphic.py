"""Figure 13: polymorphic 2D mesh speedups (distributed memory).

Regenerates the heterogeneous-architecture exploration: one core out of
two is twice slower than base cores, the other 1.5x faster — exactly the
same cumulated computing power as the uniform mesh.

Paper shape: Dijkstra's and SpMxV's performances decrease only slightly;
the decline is larger for the other benchmarks (-18.8 % on average at
256/1024 cores) because the run-time system balances load worse when slow
cores cannot spawn tasks at the same rate as fast ones.
"""

from repro.harness import polymorphic_experiment
from repro.harness.report import format_curves, format_table

from conftest import bench_scale, bench_seeds, bench_sizes, emit


def test_fig13_polymorphic_speedups(benchmark):
    sizes = bench_sizes()
    result = benchmark.pedantic(
        polymorphic_experiment,
        kwargs=dict(sizes=sizes, scale=bench_scale(), seeds=bench_seeds()),
        rounds=1,
        iterations=1,
    )
    text = format_curves(
        result["polymorphic"], result["sizes"],
        title="Polymorphic 2D mesh speedups (distributed memory)",
    )
    text += "\n\n" + format_curves(
        result["uniform"], result["sizes"],
        title="Uniform 2D mesh speedups (reference)",
    )
    rows = [
        [name, result["speedup_change_pct"][name]]
        for name in sorted(result["speedup_change_pct"])
    ]
    text += "\n\n" + format_table(
        ["benchmark", "speedup change % (large sizes)"], rows,
        title="Polymorphic vs uniform (equal cumulated computing power)",
    )
    emit("fig13_polymorphic", text)

    changes = result["speedup_change_pct"]
    # Load balancing on polymorphic meshes is at best as good as uniform:
    # the majority of benchmarks lose speedup (paper: -18.8 % average for
    # the non-regular ones).
    losers = sum(1 for pct in changes.values() if pct < 10.0)
    assert losers >= len(changes) // 2
