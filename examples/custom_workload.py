#!/usr/bin/env python
"""Writing your own simulated program against the SiMany API.

Simulated programs are Python generators that yield actions: annotated
compute blocks, memory accesses, conditional spawns, joins, locks, cell
accesses and messages.  This example builds a parallel histogram
(map-reduce shape) from scratch:

* mapper tasks scan data shards (annotated per-element compute + memory);
* partial histograms merge under a lock (the paper's Section II-B lock
  handling, including the drift waiver for lock holders);
* the same program runs unchanged on shared and distributed memory.

Run:  python examples/custom_workload.py

``REPRO_EXAMPLE_SCALE=tiny`` shrinks the dataset (used by
tests/test_docs.py to smoke-test every example quickly).
"""

import os

import numpy as np

from repro import SimLock, TaskGroup, build_machine
from repro.arch import dist_mesh, shared_mesh
from repro.timing.annotator import Block
from repro.timing.isa import InstrClass

#: Timing annotation for one scanned element: load, bucket index
#: arithmetic, store into the local histogram.
SCAN_ELEM = Block(
    "histogram-scan",
    instr_counts={InstrClass.LOAD: 1, InstrClass.INT_ALU: 3,
                  InstrClass.STORE: 1},
    cond_branches=1,
)
#: Merging one bucket into the global histogram.
MERGE_BUCKET = Block(
    "histogram-merge",
    instr_counts={InstrClass.LOAD: 2, InstrClass.INT_ALU: 1,
                  InstrClass.STORE: 1},
)

N_BUCKETS = 16
SHARD = 250
N_VALUES = (800 if os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
            else 4_000)


def mapper(ctx, data, lo, hi, merged, lock):
    """Scan data[lo:hi), then merge the local histogram under the lock."""
    local = [0] * N_BUCKETS
    n = hi - lo
    yield ctx.compute(block=SCAN_ELEM, repeat=n)
    yield ctx.mem(reads=n, obj=("shard", lo // SHARD), l1_hit_fraction=0.3)
    for value in data[lo:hi]:
        local[value % N_BUCKETS] += 1

    yield ctx.acquire(lock)
    yield ctx.compute(block=MERGE_BUCKET, repeat=N_BUCKETS)
    yield ctx.mem(reads=N_BUCKETS, writes=N_BUCKETS, obj="global-histogram")
    for bucket, count in enumerate(local):
        merged[bucket] += count
    yield ctx.release(lock)


def histogram_root(data):
    def root(ctx):
        merged = [0] * N_BUCKETS
        lock = SimLock("histogram")
        group = TaskGroup("mappers")
        for lo in range(0, len(data), SHARD):
            hi = min(lo + SHARD, len(data))
            yield from ctx.spawn_or_inline(
                mapper, data, lo, hi, merged, lock, group=group
            )
        yield ctx.join(group)
        done = yield ctx.now()
        return {"output": merged, "work_vtime": done}

    return root


def main() -> None:
    rng = np.random.default_rng(7)
    data = [int(x) for x in rng.integers(0, 1_000, size=N_VALUES)]
    expected = [0] * N_BUCKETS
    for value in data:
        expected[value % N_BUCKETS] += 1

    for label, cfg in [
        ("1-core shared", shared_mesh(1)),
        ("16-core shared", shared_mesh(16)),
        ("16-core distributed", dist_mesh(16)),
    ]:
        machine = build_machine(cfg)
        result = machine.run(histogram_root(data))
        assert result["output"] == expected, "histogram mismatch!"
        stats = machine.stats
        print(
            f"{label:22s} vtime={result['work_vtime']:>10.0f}  "
            f"tasks={stats.tasks_started:>3d}  "
            f"lock-waiver runs={stats.lock_waiver_runs:>3d}  "
            f"wall={stats.wall_seconds:.3f}s"
        )
    print("\nhistogram verified on all three machines")


if __name__ == "__main__":
    main()
