#!/usr/bin/env python
"""Comparing synchronization schemes inside one engine (paper, Section VII).

Runs the same benchmark under every implemented virtual-time policy:

* ``spatial``       — the paper's contribution (local neighbour drift T);
* ``conservative``  — strict virtual-time order (the accuracy referee);
* ``quantum``       — WWT-style global quantum barriers;
* ``bounded_slack`` — SlackSim's global-window slack;
* ``laxp2p``        — Graphite's random-referee checks;
* ``unbounded``     — free-running cores (no synchronization).

For each policy it reports the simulated program's virtual completion
time (accuracy: deviation vs the conservative referee), host wall time
(speed), and drift stalls (synchronization work).

Run:  python examples/sync_policy_comparison.py [benchmark] [n_cores]

``REPRO_EXAMPLE_CORES`` / ``REPRO_EXAMPLE_SCALE`` set the defaults
(used by tests/test_docs.py to smoke-test every example quickly).
"""

import dataclasses
import os
import sys

SCALE = os.environ.get("REPRO_EXAMPLE_SCALE", "small")

from repro import build_machine, get_workload
from repro.arch import shared_mesh
from repro.harness.report import format_table

POLICIES = ["conservative", "spatial", "quantum", "bounded_slack",
            "laxp2p", "unbounded"]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "quicksort"
    n_cores = (int(sys.argv[2]) if len(sys.argv) > 2
               else int(os.environ.get("REPRO_EXAMPLE_CORES", "64")))

    rows = []
    reference_vtime = None
    for policy in POLICIES:
        cfg = dataclasses.replace(shared_mesh(n_cores), sync=policy)
        workload = get_workload(benchmark, scale=SCALE, seed=0)
        machine = build_machine(cfg)
        result = machine.run(workload.root)
        workload.verify(result["output"])
        vtime = result["work_vtime"]
        if policy == "conservative":
            reference_vtime = vtime
        deviation = 100.0 * (vtime - reference_vtime) / reference_vtime
        rows.append([
            policy,
            vtime,
            f"{deviation:+.1f}%",
            machine.stats.drift_stalls,
            machine.stats.out_of_order_msgs,
            round(machine.stats.wall_seconds, 3),
        ])

    print(format_table(
        ["policy", "virtual time", "vs conservative", "stalls",
         "ooo msgs", "host s"],
        rows,
        title=f"{benchmark} on {n_cores} cores, one engine, six policies",
    ))
    print(
        "\nEvery policy computes the identical program output; they differ\n"
        "only in how much virtual-time skew they admit (accuracy) and how\n"
        "much host work synchronization costs (speed)."
    )


if __name__ == "__main__":
    main()
