#!/usr/bin/env python
"""Quickstart: simulate a dwarf benchmark on a 64-core mesh.

Builds a SiMany machine (spatial synchronization, T=100), runs the
Dijkstra benchmark on the optimistic shared-memory architecture, verifies
the program output against networkx, and prints the headline numbers.

Run:  python examples/quickstart.py

``REPRO_EXAMPLE_CORES`` / ``REPRO_EXAMPLE_SCALE`` shrink the run (used
by tests/test_docs.py to smoke-test every example quickly).
"""

import os

from repro import build_machine, get_workload, shared_mesh

N_CORES = int(os.environ.get("REPRO_EXAMPLE_CORES", "64"))
SCALE = os.environ.get("REPRO_EXAMPLE_SCALE", "small")


def main() -> None:
    # 1. Pick a benchmark instance (dataset generated deterministically).
    workload = get_workload("dijkstra", scale=SCALE, seed=0, memory="shared")

    # 2. Describe the architecture: a 64-core uniform 2D mesh with shared
    #    memory banks at 10-cycle latency (the paper's optimistic type).
    config = shared_mesh(N_CORES)
    machine = build_machine(config)

    # 3. Simulate.  The workload's root task runs on core 0 and spawns
    #    work across the mesh through the conditional-spawning run-time.
    result = machine.run(workload.root)

    # 4. The simulated program's output is real output - verify it.
    workload.verify(result["output"])

    # 5. Compare against a single-core run for the virtual-time speedup.
    baseline = get_workload("dijkstra", scale=SCALE, seed=0, memory="shared")
    single = build_machine(shared_mesh(1))
    base_result = single.run(baseline.root)

    stats = machine.stats
    print(f"benchmark           : dijkstra ({workload.meta['nodes']} nodes)")
    print(f"architecture        : {config.name} (T={config.drift_bound:.0f})")
    print(f"virtual time ({N_CORES}c) : {result['work_vtime']:>12.0f} cycles")
    print(f"virtual time (1c)   : {base_result['work_vtime']:>12.0f} cycles")
    print(f"speedup             : "
          f"{base_result['work_vtime'] / result['work_vtime']:>12.2f} x")
    print(f"tasks started       : {stats.tasks_started:>12d}")
    print(f"messages            : {stats.total_messages:>12d}")
    print(f"drift stalls        : {stats.drift_stalls:>12d}")
    print(f"out-of-order msgs   : {stats.out_of_order_msgs:>12d}")
    print(f"host wall time      : {stats.wall_seconds:>12.3f} s")


if __name__ == "__main__":
    main()
