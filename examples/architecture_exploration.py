#!/usr/bin/env python
"""Architecture exploration: the use case the paper's introduction motivates.

Compares how one workload behaves across the architecture classes of
Section V — uniform 2D meshes with shared or distributed memory, clustered
meshes (fast intra-cluster links, slow inter-cluster links), and
polymorphic meshes (half the cores 2x slower, half 1.5x faster, equal
cumulated computing power) — all from a single declarative config each.

Run:  python examples/architecture_exploration.py [benchmark] [n_cores]

``REPRO_EXAMPLE_CORES`` / ``REPRO_EXAMPLE_SCALE`` set the defaults
(used by tests/test_docs.py to smoke-test every example quickly).
"""

import os
import sys

SCALE = os.environ.get("REPRO_EXAMPLE_SCALE", "small")

from repro import build_machine, get_workload
from repro.arch import (
    clustered_dist,
    dist_mesh,
    polymorphic_dist,
    polymorphic_shared,
    shared_mesh,
)
from repro.harness.report import format_table


def run_on(name: str, cfg, seed: int = 0):
    workload = get_workload(name, scale=SCALE, seed=seed, memory=cfg.memory)
    machine = build_machine(cfg)
    result = machine.run(workload.root)
    workload.verify(result["output"])
    return result["work_vtime"], machine.stats


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "connected_components"
    n_cores = (int(sys.argv[2]) if len(sys.argv) > 2
               else int(os.environ.get("REPRO_EXAMPLE_CORES", "64")))

    architectures = [
        ("shared mesh", shared_mesh(n_cores)),
        ("distributed mesh", dist_mesh(n_cores)),
        ("clustered x4 (dist)", clustered_dist(n_cores, 4)),
        ("polymorphic (shared)", polymorphic_shared(n_cores)),
        ("polymorphic (dist)", polymorphic_dist(n_cores)),
    ]

    # Single-core baselines per memory type (speedups are measured against
    # the same memory organization).
    base = {}
    for memory, factory in (("shared", shared_mesh), ("distributed", dist_mesh)):
        vtime, _ = run_on(benchmark, factory(1))
        base[memory] = vtime

    rows = []
    for label, cfg in architectures:
        vtime, stats = run_on(benchmark, cfg)
        rows.append([
            label,
            vtime,
            base[cfg.memory] / vtime,
            stats.total_messages,
            stats.drift_stalls,
            round(stats.wall_seconds, 3),
        ])

    print(format_table(
        ["architecture", "virtual time", "speedup", "messages",
         "stalls", "host s"],
        rows,
        title=f"{benchmark} on {n_cores} cores",
    ))
    print(
        "\nReading the table: contended benchmarks (connected_components,\n"
        "dijkstra) collapse on distributed memory and recover somewhat on\n"
        "clustered topologies at high core counts; data-light benchmarks\n"
        "(quicksort, spmxv, octree) barely notice the memory organization."
    )


if __name__ == "__main__":
    main()
