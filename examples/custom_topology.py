#!/usr/bin/env python
"""Custom interconnects: adjacency files, XY routing, hierarchies.

The paper specifies topology "in a configuration file as an adjacency
matrix"; this example builds three non-preset interconnects —

* a topology loaded from an adjacency-matrix file (round-tripped here),
* a 2D mesh with deterministic XY routing instead of shortest-path,
* a two-level hierarchical network (clusters of clusters),

— and runs one benchmark on each, assembling the machines by hand from
engine parts instead of presets.

Run:  python examples/custom_topology.py

``REPRO_EXAMPLE_SCALE`` shrinks the workload (used by
tests/test_docs.py to smoke-test every example quickly).
"""

import os
import tempfile
import pathlib

SCALE = os.environ.get("REPRO_EXAMPLE_SCALE", "small")

from repro.arch.io import load_topology, save_topology
from repro.core.engine import Machine
from repro.core.sync import SpatialSync
from repro.memory.sharedmem import SharedMemoryModel
from repro.network.noc import Noc
from repro.network.routing import XYRouting
from repro.network.topology import hierarchical_mesh, mesh2d
from repro.runtime.runtime import Runtime
from repro.workloads import get_workload


def assemble(topo, routing=None):
    """Build a shared-memory machine on an arbitrary interconnect."""
    machine = Machine(topo, SpatialSync())
    if routing is not None:
        machine.noc = Noc(topo, routing=routing)
    machine.attach_memory(SharedMemoryModel())
    machine.attach_runtime(Runtime())
    return machine


def run_on(machine, label):
    workload = get_workload("connected_components", scale=SCALE, seed=0)
    result = machine.run(workload.root)
    workload.verify(result["output"])
    stats = machine.stats
    print(f"{label:34s} vtime={result['work_vtime']:>9.0f}  "
          f"msgs={stats.total_messages:>5d}  "
          f"noc_hops={int(stats.noc.get('total_hops', 0)):>6d}")


def main() -> None:
    # 1. Adjacency-matrix file round trip (the paper's config format).
    mesh = mesh2d(4, 4)
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "mesh16.adj"
        save_topology(mesh, path)
        print(f"saved {path.name}: "
              f"{len(path.read_text().splitlines())} lines")
        loaded = load_topology(path)
    run_on(assemble(loaded), "4x4 mesh from adjacency file")

    # 2. The same mesh under deterministic XY routing.
    mesh_xy = mesh2d(4, 4)
    run_on(assemble(mesh_xy, routing=XYRouting(mesh_xy, width=4)),
           "4x4 mesh, XY routing")

    # 3. A hierarchical network: 4-core clusters, slower upper levels.
    hier = hierarchical_mesh(16, levels=2, branching=4,
                             base_latency=0.5, level_latency_factor=4.0)
    run_on(assemble(hier), "hierarchical 16 (4x4-core clusters)")

    print("\nSame program, same verifier, three interconnects — the "
          "design-space exploration workflow the paper motivates.")


if __name__ == "__main__":
    main()
