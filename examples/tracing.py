#!/usr/bin/env python
"""Tracing a simulation: Gantt charts, utilization, message logs.

Attaches a Tracer to a machine before running, then renders a per-core
Gantt chart of task execution in virtual time, per-core utilization, and
a breakdown of the run-time protocol traffic — the view an architect uses
to understand *why* a workload stops scaling.

Run:  python examples/tracing.py [benchmark] [n_cores]

``REPRO_EXAMPLE_CORES`` / ``REPRO_EXAMPLE_SCALE`` set the defaults
(used by tests/test_docs.py to smoke-test every example quickly).
"""

import os
import sys
from collections import Counter

from repro import build_machine, get_workload
from repro.arch import shared_mesh
from repro.harness.trace import Tracer


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "quicksort"
    n_cores = (int(sys.argv[2]) if len(sys.argv) > 2
               else int(os.environ.get("REPRO_EXAMPLE_CORES", "16")))

    workload = get_workload(
        benchmark, scale=os.environ.get("REPRO_EXAMPLE_SCALE", "small"),
        seed=0)
    machine = build_machine(shared_mesh(n_cores))
    tracer = Tracer(machine)

    result = machine.run(workload.root)
    workload.verify(result["output"])

    print(f"=== {benchmark} on {n_cores} cores "
          f"(vtime {result['work_vtime']:.0f}) ===\n")

    # Gantt: the busiest 8 lanes tell the story.
    util = tracer.core_utilization()
    busiest = sorted(util, key=util.get, reverse=True)[:8]
    print(tracer.render_gantt(width=64, cores=sorted(busiest)))

    print("\nper-core utilization (top 8):")
    for cid in busiest:
        bar = "#" * int(util[cid] * 40)
        print(f"  core {cid:>3}: {util[cid]:6.1%} {bar}")

    print("\nrun-time protocol traffic:")
    kinds = Counter(m.kind for m in tracer.messages)
    for kind, count in kinds.most_common():
        print(f"  {kind:16s} {count:>6d}")

    print(f"\ntask spans recorded : {len(tracer.spans)}")
    print(f"drift stalls        : {len(tracer.stalls)}")
    if tracer.stalls:
        worst = max(s["vtime"] - s["floor"] for s in tracer.stalls)
        print(f"worst drift at stall: {worst:.1f} cycles "
              f"(bound T={machine.fabric.T:.0f})")


if __name__ == "__main__":
    main()
