"""Unit tests for caches, coherence and the two memory models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import build_machine, dist_mesh, shared_mesh
from repro.core.actions import CellAccess, MemAccess
from repro.memory.cache import LruCache, PessimisticL1
from repro.memory.cells import Cell, Link
from repro.memory.coherence import CoherenceModel
from repro.memory.sharedmem import SharedMemoryModel


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache(4, hit_latency=1.0, miss_latency=10.0)
        assert cache.access("a") == 10.0
        assert cache.access("a") == 1.0

    def test_eviction_order(self):
        cache = LruCache(2, 1.0, 10.0)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a
        cache.access("c")  # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c")

    def test_invalidate(self):
        cache = LruCache(4, 1.0, 10.0)
        cache.access("a")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.access("a") == 10.0

    def test_flush(self):
        cache = LruCache(4, 1.0, 10.0)
        cache.access("a")
        cache.flush()
        assert len(cache) == 0

    def test_stats(self):
        cache = LruCache(4, 1.0, 10.0)
        cache.access("a")
        cache.access("a")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LruCache(0, 1.0, 10.0)
        with pytest.raises(ValueError):
            LruCache(4, 10.0, 1.0)  # miss < hit

    @given(keys=st.lists(st.integers(0, 10), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_capacity_never_exceeded(self, keys):
        cache = LruCache(4, 1.0, 10.0)
        for key in keys:
            cache.access(key)
            assert len(cache) <= 4


class TestPessimisticL1:
    def test_paper_latency(self):
        l1 = PessimisticL1()
        assert l1.hit_latency == 1.0

    def test_all_hits(self):
        l1 = PessimisticL1()
        assert l1.access_cost(10, 1.0, miss_latency=10.0) == 10.0

    def test_all_misses(self):
        l1 = PessimisticL1()
        assert l1.access_cost(10, 0.0, miss_latency=10.0) == 100.0

    def test_mixed(self):
        l1 = PessimisticL1()
        cost = l1.access_cost(10, 0.5, miss_latency=10.0)
        assert cost == pytest.approx(5 * 1.0 + 5 * 10.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PessimisticL1().access_cost(1, 1.5, 10.0)


class TestCoherence:
    def test_private_data_free(self):
        model = CoherenceModel()
        assert model.on_read(0, "x") == 0.0
        assert model.on_write(0, "x") == 0.0
        assert model.on_read(0, "x") == 0.0

    def test_dirty_miss_charged(self):
        model = CoherenceModel(dirty_miss_cycles=20.0)
        model.on_write(0, "x")
        assert model.on_read(1, "x") == 20.0
        # Second read by the same core: the line is now shared.
        assert model.on_read(1, "x") == 0.0

    def test_invalidation_scales_with_sharers(self):
        model = CoherenceModel(invalidate_base_cycles=10.0,
                               invalidate_per_sharer_cycles=2.0)
        for reader in range(4):
            model.on_read(reader, "x")
        penalty = model.on_write(0, "x")
        assert penalty == pytest.approx(10.0 + 2.0 * 3)

    def test_write_after_write_same_core_free(self):
        model = CoherenceModel()
        model.on_write(0, "x")
        assert model.on_write(0, "x") == 0.0

    def test_invalidate_hook_called(self):
        dropped = []
        model = CoherenceModel(invalidate_hook=lambda c, o: dropped.append((c, o)))
        model.on_read(1, "x")
        model.on_read(2, "x")
        model.on_write(0, "x")
        assert set(dropped) == {(1, "x"), (2, "x")}

    def test_penalty_aggregates(self):
        model = CoherenceModel()
        model.on_write(1, "x")
        p = model.penalty(0, "x", reads=5, writes=5)
        assert p > 0

    def test_stats(self):
        model = CoherenceModel()
        model.on_write(0, "x")
        model.on_read(1, "x")
        model.on_write(1, "x")
        assert model.stats.dirty_misses == 1
        assert model.stats.invalidation_rounds >= 1
        assert model.tracked_objects == 1

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            CoherenceModel(dirty_miss_cycles=-1)


class TestSharedMemoryModel:
    class _Core:
        def __init__(self, cid=0, speed=1.0):
            self.cid = cid
            self.speed_factor = speed

    def test_paper_latencies(self):
        model = SharedMemoryModel()
        assert model.bank_latency == 10.0
        assert model.l1_latency == 1.0

    def test_access_cost(self):
        model = SharedMemoryModel()
        action = MemAccess(reads=4, writes=0, l1_hit_fraction=0.5)
        assert model.access(self._Core(), action) == pytest.approx(2 * 1 + 2 * 10)

    def test_empty_access_free(self):
        model = SharedMemoryModel()
        assert model.access(self._Core(), MemAccess()) == 0.0

    def test_l1_scales_with_core_speed(self):
        model = SharedMemoryModel(scale_l1_with_core=True)
        action = MemAccess(reads=10, l1_hit_fraction=1.0)
        slow = model.access(self._Core(speed=2.0), action)
        fast = model.access(self._Core(speed=1.0), action)
        assert slow == 2 * fast

    def test_l1_fixed_in_referee_mode(self):
        model = SharedMemoryModel(scale_l1_with_core=False)
        action = MemAccess(reads=10, l1_hit_fraction=1.0)
        assert model.access(self._Core(speed=2.0), action) == model.access(
            self._Core(speed=1.0), action
        )

    def test_coherence_penalty_included(self):
        coherent = SharedMemoryModel(coherence=CoherenceModel())
        core0, core1 = self._Core(0), self._Core(1)
        coherent.access(core0, MemAccess(writes=1, obj="x"))
        with_penalty = coherent.access(core1, MemAccess(reads=1, obj="x"))
        plain = coherent.access(core1, MemAccess(reads=1, obj="y"))
        assert with_penalty > plain

    def test_cells_degenerate_to_bank_access(self):
        model = SharedMemoryModel()
        cell = model.new_cell(data=1)
        cost = model.cell_access(self._Core(), None, CellAccess(cell=cell, mode="r"))
        assert cost == pytest.approx(10.0 + 2.0)


class TestDistributedMemoryModel:
    def test_local_cell_access_is_l2(self, dist8):
        memory = dist8.memory

        def root(ctx):
            cell = memory.new_cell(data="v", home=0)
            t0 = yield ctx.now()
            got = yield ctx.cell(cell, "r")
            t1 = yield ctx.now()
            return got.data, t1 - t0

        data, latency = dist8.run(root)
        assert data == "v"
        assert latency == pytest.approx(10.0)

    def test_remote_cell_moves_ownership(self, dist8):
        memory = dist8.memory

        def root(ctx):
            cell = memory.new_cell(data=0, home=7)
            assert cell.owner == 7
            yield ctx.cell(cell, "rw")
            return cell.owner, cell.moves

        owner, moves = dist8.run(root)
        assert owner == 0  # moved to the requester (root runs on core 0)
        assert moves == 1
        assert dist8.memory.remote_fetches == 1

    def test_remote_read_also_exclusive(self, dist8):
        """Paper: data transfer happens whether the access is read or write."""
        memory = dist8.memory

        def root(ctx):
            cell = memory.new_cell(data=0, home=3)
            yield ctx.cell(cell, "r")
            return cell.owner

        assert dist8.run(root) == 0

    def test_remote_access_slower_than_local(self, dist8):
        memory = dist8.memory

        def root(ctx):
            local = memory.new_cell(data=0, home=0)
            remote = memory.new_cell(data=0, home=7)
            t0 = yield ctx.now()
            yield ctx.cell(local, "r")
            t1 = yield ctx.now()
            yield ctx.cell(remote, "r")
            t2 = yield ctx.now()
            return (t1 - t0), (t2 - t1)

        local_cost, remote_cost = dist8.run(root)
        assert remote_cost > local_cost

    def test_invalid_home_rejected(self, dist8):
        with pytest.raises(ValueError):
            dist8.memory.new_cell(home=99)

    def test_link_dereference(self, dist8):
        memory = dist8.memory

        def root(ctx):
            cell = memory.new_cell(data="x", home=0)
            link = Link(cell)
            got = yield ctx.cell(link, "r")
            return got.data

        assert dist8.run(root) == "x"


class TestCell:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cell(size=0)

    def test_link_deref(self):
        cell = Cell(data=5)
        assert Link(cell).deref() is cell
