"""Property tests of the dual inbox (FIFO deque + arrival-ordered heap).

Two contracts, checked across every sync policy:

* **Per-source FIFO**: messages from one source to one destination are
  received in send order (the NoC's FIFO adjustment guarantees per-pair
  ordering; the inbox must preserve it through either pop path).
* **Heap/deque equivalence**: running the same program on a machine with
  ``inbox_heap=False`` (legacy linear earliest-arrival scans) must produce
  bit-identical completion virtual time, message counts and drift stalls.
  The heap is a data-structure change, not a semantics change.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import build_machine, shared_mesh
from repro.core.task import TaskGroup

POLICIES = [
    "spatial",
    "conservative",
    "quantum",
    "bounded_slack",
    "laxp2p",
    "unbounded",
]


def _chatter_program(n_senders, n_msgs, jitter, received):
    """Root spawns senders; each streams numbered messages back to root.

    ``received`` collects ``(src, index)`` in root's reception order.
    ``jitter`` staggers sender compute so send times interleave across
    sources (stressing arrival ordering at the destination).
    """

    def sender(ctx, root_core, sender_id, k, cycles):
        yield ctx.send(root_core, payload=("hello", sender_id), tag="hello")
        for i in range(k):
            if cycles:
                yield ctx.compute(cycles=cycles)
            yield ctx.send(root_core, payload=(sender_id, i), tag="data")
        return None

    def root(ctx):
        group = TaskGroup()
        spawned = 0
        for s in range(n_senders):
            # The sender id (not the core id) keys the FIFO check: two
            # sender tasks may land on one core, and each task's stream
            # must still arrive in its own send order.
            ok = yield ctx.try_spawn(
                sender, ctx.core_id, s, n_msgs, jitter[s % len(jitter)],
                group=group,
            )
            if ok:
                spawned += 1
        for _ in range(spawned):
            yield ctx.recv(tag="hello")
        for _ in range(spawned * n_msgs):
            msg = yield ctx.recv(tag="data")
            received.append(msg.payload)
        yield ctx.join(group)
        t = yield ctx.now()
        return t

    return root


def _run(policy, n_senders, n_msgs, jitter, inbox_heap):
    received = []
    machine = build_machine(shared_mesh(16, sync=policy, inbox_heap=inbox_heap))
    final_t = machine.run(
        _chatter_program(n_senders, n_msgs, jitter, received))
    stats = machine.stats
    return {
        "received": received,
        "final_t": final_t,
        "max_vtime": machine.fabric.max_vtime,
        "messages_by_kind": dict(stats.messages_by_kind),
        "drift_stalls": stats.drift_stalls,
        "actions": stats.actions,
    }


@pytest.mark.parametrize("policy", POLICIES)
@given(
    n_senders=st.integers(min_value=1, max_value=4),
    n_msgs=st.integers(min_value=1, max_value=6),
    jitter=st.lists(
        st.sampled_from([0, 3, 17, 111, 1009]), min_size=1, max_size=3),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_inbox_heap_matches_deque_and_fifo(policy, n_senders, n_msgs, jitter):
    with_heap = _run(policy, n_senders, n_msgs, jitter, inbox_heap=True)
    without = _run(policy, n_senders, n_msgs, jitter, inbox_heap=False)

    # Per-source FIFO delivery: indexes from one sender arrive in order.
    for result in (with_heap, without):
        last_seen = {}
        for sender_id, idx in result["received"]:
            assert last_seen.get(sender_id, -1) < idx, (
                f"out-of-order delivery from sender {sender_id}: "
                f"{idx} after {last_seen[sender_id]}"
            )
            last_seen[sender_id] = idx

    # Bit-identical observables between the heap and the legacy scans.
    assert with_heap["final_t"] == without["final_t"]
    assert math.isclose(
        with_heap["max_vtime"], without["max_vtime"], rel_tol=0, abs_tol=0)
    assert with_heap["messages_by_kind"] == without["messages_by_kind"]
    assert with_heap["drift_stalls"] == without["drift_stalls"]
    assert with_heap["actions"] == without["actions"]
    assert with_heap["received"] == without["received"]
