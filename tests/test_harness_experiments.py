"""Tests for the experiment harness (tiny scale; shapes, not numbers)."""

import math

import pytest

from repro.arch import shared_mesh
from repro.harness import (
    clustered_experiment,
    distmem_experiment,
    drift_sweep_experiment,
    polymorphic_experiment,
    run_benchmark,
    run_cycle_level,
    shadow_time_ablation,
    sharedmem_experiment,
    simtime_experiment,
    sync_policy_ablation,
    validation_experiment,
    vt_speedup_curve,
)
from repro.harness.report import (
    dump_csv,
    format_curves,
    format_drift_tables,
    format_power_law,
    format_validation,
)

SIZES = (1, 4)
SEEDS = (0,)


class TestRunRecord:
    def test_run_benchmark(self):
        record = run_benchmark("quicksort", shared_mesh(4), scale="tiny")
        assert record.vtime > 0
        assert record.n_cores == 4
        assert record.benchmark == "quicksort"
        assert record.stats.tasks_started >= 1

    def test_run_with_native(self):
        record = run_benchmark("spmxv", shared_mesh(4), scale="tiny",
                               measure_native=True)
        assert record.native_wall > 0

    def test_run_cycle_level(self):
        record = run_cycle_level("quicksort", 4, scale="tiny")
        assert record.vtime > 0

    def test_vt_speedup_curve(self):
        curve = vt_speedup_curve("octree", shared_mesh, SIZES, scale="tiny",
                                 seeds=SEEDS)
        assert curve[1] == pytest.approx(1.0)
        assert curve[4] > 0


class TestValidationExperiment:
    def test_structure(self):
        result = validation_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                       benchmarks=("quicksort", "spmxv"))
        assert set(result["vt"]) == {"quicksort", "spmxv"}
        assert set(result["cl"]) == {"quicksort", "spmxv"}
        assert 4 in result["errors"]
        assert result["errors"][4] >= 0
        # Report renders.
        assert "quicksort VT" in format_validation(result)

    def test_polymorphic_variant(self):
        result = validation_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                       polymorphic=True,
                                       benchmarks=("quicksort",))
        assert result["polymorphic"]


class TestSimtimeExperiment:
    def test_structure(self):
        result = simtime_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                    benchmarks=("octree",),
                                    memories=("shared",))
        assert result["normalized"]["octree"][4] > 0
        # Power-law fit needs >= 2 sizes above 1 core; absent here.
        result2 = simtime_experiment(sizes=(1, 4, 9), scale="tiny",
                                     seeds=SEEDS, benchmarks=("octree",),
                                     memories=("shared",))
        a, b = result2["power_law"]["octree"]
        assert a > 0
        assert "octree" in format_power_law(result2["power_law"])


class TestArchitectureExperiments:
    def test_sharedmem(self):
        result = sharedmem_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                      benchmarks=("quicksort",))
        assert result["curves"]["quicksort"][1] == pytest.approx(1.0)
        rendered = format_curves(result["curves"], result["sizes"])
        assert "quicksort" in rendered

    def test_distmem(self):
        result = distmem_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                    benchmarks=("spmxv",))
        assert result["curves"]["spmxv"][4] > 0

    def test_clustered(self):
        result = clustered_experiment(sizes=(1, 16), n_clusters=4,
                                      scale="tiny", seeds=SEEDS,
                                      benchmarks=("octree",))
        assert "octree" in result["regular"]
        assert "octree" in result["clustered"]
        assert "octree" in result["exec_time_change_pct"]
        assert "octree" in result["crossover_cores"]

    def test_polymorphic(self):
        result = polymorphic_experiment(sizes=SIZES, scale="tiny", seeds=SEEDS,
                                        benchmarks=("octree",))
        assert "octree" in result["speedup_change_pct"]


class TestDriftSweep:
    def test_structure(self):
        result = drift_sweep_experiment(
            t_values=(50.0, 500.0), baseline_t=100.0, sizes=(4,),
            scale="tiny", seeds=SEEDS, benchmarks=("octree",),
        )
        assert set(result["t_values"]) == {50.0, 500.0}
        assert 50.0 in result["speedup_variation_pct"]["octree"]
        assert 500.0 in result["simtime_variation_pct"]["octree"]
        assert "T=50" in format_drift_tables(result)

    def test_baseline_added_if_missing(self):
        result = drift_sweep_experiment(
            t_values=(50.0,), baseline_t=100.0, sizes=(4,),
            scale="tiny", seeds=SEEDS, benchmarks=("octree",),
        )
        assert 100.0 in result["vtimes"]["octree"]


class TestAblations:
    def test_sync_policy_ablation(self):
        result = sync_policy_ablation(
            policies=("spatial", "conservative"), n_cores=4, scale="tiny",
            seeds=SEEDS, benchmarks=("octree",),
        )
        assert result["vtimes"]["octree"]["spatial"] > 0
        assert "spatial" in result["deviation_pct"]["octree"]
        assert result["deviation_pct"]["octree"]["conservative"] == 0.0

    def test_shadow_ablation(self):
        result = shadow_time_ablation(n_cores=4, scale="tiny", seeds=SEEDS,
                                      benchmark="octree")
        assert set(result) == {"shadow_fast", "shadow_exact", "no_shadow"}
        for mode in result.values():
            assert mode["vtime"] > 0


class TestCsvExport:
    def test_roundtrip_sizes(self):
        curves = {"a": {1: 1.0, 4: 2.0}}
        out = dump_csv(curves, [1, 4])
        assert "a,1,2" in out
