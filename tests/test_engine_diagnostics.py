"""Tests for engine diagnostics: task exceptions, describe(), deadlocks."""

import pytest

from repro.arch import build_machine, shared_mesh
from repro.core.errors import SimDeadlock, SimError, TaskError
from repro.core.task import TaskGroup


class TestTaskError:
    def test_wraps_exception_with_context(self):
        def bad(ctx):
            yield ctx.compute(cycles=10)
            raise ValueError("boom")

        machine = build_machine(shared_mesh(4))
        with pytest.raises(TaskError) as err:
            machine.run(bad)
        assert isinstance(err.value.__cause__, ValueError)
        assert err.value.core == 0
        assert err.value.vtime >= 10.0
        assert "boom" in str(err.value)
        assert "bad" in str(err.value)

    def test_spawned_task_exception_also_wrapped(self):
        def child(ctx):
            yield ctx.compute(cycles=5)
            raise RuntimeError("child failed")

        def root(ctx):
            group = TaskGroup()
            yield from ctx.spawn_or_inline(child, group=group)
            yield ctx.join(group)

        machine = build_machine(shared_mesh(4))
        with pytest.raises(TaskError) as err:
            machine.run(root)
        assert "child" in str(err.value)

    def test_sim_errors_not_double_wrapped(self):
        def bad(ctx):
            yield "garbage action"

        machine = build_machine(shared_mesh(4))
        with pytest.raises(SimError) as err:
            machine.run(bad)
        assert not isinstance(err.value, TaskError)


class TestDescribe:
    def test_before_run(self):
        machine = build_machine(shared_mesh(8))
        text = machine.describe()
        assert "8 cores" in text
        assert "spatial" in text
        assert "SharedMemoryModel" in text
        assert "completion" not in text

    def test_after_run(self):
        machine = build_machine(shared_mesh(8))

        def root(ctx):
            yield ctx.compute(cycles=100)

        machine.run(root)
        text = machine.describe()
        assert "completion" in text
        assert "tasks" in text

    def test_polymorphic_factors_shown(self):
        from repro.arch import polymorphic_shared

        machine = build_machine(polymorphic_shared(4))
        text = machine.describe()
        assert "0.66" in text or "2.0" in text


class TestDeadlockDiagnostics:
    def test_diagnostics_structure(self):
        def root(ctx):
            yield ctx.recv(tag="never")

        machine = build_machine(shared_mesh(4))
        with pytest.raises(SimDeadlock) as err:
            machine.run(root)
        diag = err.value.diagnostics
        assert diag["live_tasks"] == 1
        assert isinstance(diag["stalled_cores"], list)
        assert isinstance(diag["cores"], dict)
