"""Tests for the Amdahl fit and the generic parameter-sweep utility."""

import pytest

from repro.arch import shared_mesh
from repro.harness import metrics
from repro.harness.sweep import sweep, sweep_csv, sweep_table


class TestAmdahlFit:
    def test_recovers_serial_fraction(self):
        s_true = 0.2
        curve = {n: 1.0 / (s_true + (1 - s_true) / n)
                 for n in (1, 2, 4, 8, 16, 64)}
        s, rmse = metrics.amdahl_fit(curve)
        assert s == pytest.approx(s_true, abs=1e-4)
        assert rmse < 1e-6

    def test_fully_parallel(self):
        curve = {n: float(n) for n in (1, 2, 4, 8)}
        s, rmse = metrics.amdahl_fit(curve)
        assert s == pytest.approx(0.0, abs=1e-4)

    def test_fully_serial(self):
        curve = {n: 1.0 for n in (1, 2, 4, 8)}
        s, _ = metrics.amdahl_fit(curve)
        assert s == pytest.approx(1.0, abs=1e-3)

    def test_superlinear_flagged_by_residual(self):
        curve = {1: 1.0, 4: 30.0, 16: 200.0}
        s, rmse = metrics.amdahl_fit(curve)
        assert rmse > 1.0  # Amdahl cannot explain super-linearity

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            metrics.amdahl_fit({1: 1.0})

    def test_quicksort_serial_fraction_plausible(self):
        """The measured quicksort curve should fit a serial fraction in
        the ballpark its critical path predicts (2/log2(n) ~ 0.2)."""
        import math

        from repro.harness import vt_speedup_curve

        curve = vt_speedup_curve("quicksort", shared_mesh, (1, 4, 16),
                                 scale="small", seeds=(0,))
        s, _ = metrics.amdahl_fit(curve)
        n = 1000
        predicted = 2 / math.log2(n)
        assert 0.3 * predicted < s < 4 * predicted


class TestSweep:
    def test_grid_product(self):
        records = sweep(
            "octree", shared_mesh(4),
            {"drift_bound": [50.0, 500.0], "queue_capacity": [2, 4]},
            scale="tiny",
        )
        assert len(records) == 4
        combos = {(r["drift_bound"], r["queue_capacity"]) for r in records}
        assert combos == {(50.0, 2), (50.0, 4), (500.0, 2), (500.0, 4)}
        for record in records:
            assert record["vtime"] > 0

    def test_stats_metric(self):
        records = sweep("octree", shared_mesh(4), {"drift_bound": [100.0]},
                        scale="tiny", metric="drift_stalls")
        assert "drift_stalls" in records[0]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            sweep("octree", shared_mesh(4), {"warp": [1]}, scale="tiny")

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep("octree", shared_mesh(4), {}, scale="tiny")

    def test_table_pivot(self):
        records = [
            {"a": 1, "b": 10, "vtime": 100.0},
            {"a": 1, "b": 20, "vtime": 200.0},
            {"a": 2, "b": 10, "vtime": 300.0},
            {"a": 2, "b": 20, "vtime": 400.0},
        ]
        out = sweep_table(records, rows="a", cols="b")
        assert "b=10" in out and "b=20" in out
        assert "400" in out

    def test_table_missing_cell_nan(self):
        records = [{"a": 1, "b": 10, "vtime": 1.0},
                   {"a": 2, "b": 20, "vtime": 2.0}]
        out = sweep_table(records, rows="a", cols="b")
        assert "nan" in out

    def test_csv(self):
        records = [{"a": 1, "vtime": 10.5}]
        out = sweep_csv(records)
        assert out.splitlines()[0] == "a,vtime"
        assert "10.5" in out

    def test_csv_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_csv([])
