"""Documentation tests: every fenced ``python`` block in docs/*.md must
execute, every example script must run, and internal links must resolve.

This is what keeps the documentation site from silently drifting away
from the API: a renamed function or changed signature fails CI here,
not in a reader's terminal.  Blocks within one page share a namespace
(pages build up examples incrementally); blocks that are not meant to
execute use a non-``python`` fence language (``text``, ``bash``).
"""

import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
EXAMPLES = REPO / "examples"

FENCE_RE = re.compile(r"^```python\n(.*?)^```", re.M | re.S)
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)#\s]+)[^)]*\)")

DOC_PAGES = sorted(DOCS.glob("*.md"))
EXAMPLE_SCRIPTS = sorted(EXAMPLES.glob("*.py"))

#: Keeps every doc block and example run cheap enough for tier-1 CI.
SMALL_ENV = {"REPRO_EXAMPLE_CORES": "16", "REPRO_EXAMPLE_SCALE": "tiny"}


def test_docs_exist():
    assert (DOCS / "index.md") in DOC_PAGES
    assert len(EXAMPLE_SCRIPTS) >= 6


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_fenced_python_blocks_execute(page):
    blocks = FENCE_RE.findall(page.read_text())
    namespace = {"__name__": f"docs_{page.stem}"}
    for i, block in enumerate(blocks):
        code = compile(block, f"{page.name}[block {i}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ, **SMALL_ENV)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_internal_links_resolve():
    for page in DOC_PAGES:
        for target in LINK_RE.findall(page.read_text()):
            if "://" in target:
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.name}: broken link {target}"


def test_index_links_every_docs_page():
    index = (DOCS / "index.md").read_text()
    for page in DOC_PAGES:
        if page.name == "index.md":
            continue
        assert page.name in index, f"docs/index.md does not link {page.name}"
