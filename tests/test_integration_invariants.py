"""Integration tests of the simulator's virtual-time invariants.

These check the guarantees the paper's Section II argues for:

* the local drift rule implies a global bound of diameter x T (exact
  shadow mode; fast mode adds one T of slack per stale shadow);
* per-source FIFO message delivery;
* per-core virtual clocks are monotone;
* the conservative referee processes no message out of order;
* program output is identical across sync policies (program execution
  correctness despite out-of-order processing).
"""

import dataclasses

import pytest

from repro.arch import build_machine, dist_mesh, shared_mesh
from repro.core.messages import MsgKind
from repro.workloads import BENCHMARKS, get_workload

from conftest import DriftRecorder, fanout_root, recursive_root


class TestGlobalDriftBound:
    @pytest.mark.parametrize("T", [50.0, 100.0, 500.0])
    def test_bound_holds_exact_shadow(self, T):
        cfg = dataclasses.replace(
            shared_mesh(16), drift_bound=T, shadow_mode="exact"
        )
        machine = build_machine(cfg)
        recorder = DriftRecorder(machine)
        machine.run(recursive_root(6, cycles=80.0))
        diameter = machine.topo.diameter()
        # The rule bounds drift checks, not absolute clocks: receiving
        # messages while drift-stalled (reception is simulator
        # infrastructure) and run-time constants (message handling, task
        # start, network latencies) add a bounded absolute overshoot on
        # top of diameter x T — the paper accepts the same softness for
        # lock waivers (Section II-B).
        constants_allowance = 2 * T + 250.0
        assert recorder.max_spread <= diameter * T + constants_allowance

    def test_smaller_t_means_more_synchronization(self):
        """The robust direction of the T knob: a tighter bound forces more
        drift stalls.  (The instantaneous active-core spread is itself
        schedule-dependent — with a loose bound, cores often run one at a
        time in host order — so stall counts are the reliable signal.)"""
        stalls = {}
        for T in (50.0, 1000.0):
            cfg = dataclasses.replace(
                shared_mesh(16), drift_bound=T, shadow_mode="exact"
            )
            machine = build_machine(cfg)
            machine.run(recursive_root(6, cycles=80.0))
            stalls[T] = machine.stats.drift_stalls
        assert stalls[50.0] > stalls[1000.0]

    def test_workload_drift_bounded(self):
        cfg = dataclasses.replace(shared_mesh(16), shadow_mode="exact")
        machine = build_machine(cfg)
        recorder = DriftRecorder(machine)
        workload = get_workload("octree", scale="tiny", seed=0)
        result = machine.run(workload.root)
        workload.verify(result["output"])
        T = machine.fabric.T
        # Same constants allowance as above, plus one maximal compute block
        # (the drift check runs before an action, so a single block can
        # carry a core past the floor by its own size).
        bound = machine.topo.diameter() * T + 2 * T + 250.0 + 200.0
        assert recorder.max_spread <= bound


class TestClockMonotonicity:
    def test_clocks_never_regress_while_active(self):
        """A core's clock is monotone for the duration of each active
        period.  (Idle cores lose their virtual time — paper, Section II —
        so the clock may legitimately restart lower after an idle gap.)"""
        machine = build_machine(shared_mesh(16))
        fabric = machine.fabric
        seen = [0.0] * 16
        original_advance = fabric.advance
        original_set_active = fabric.set_active

        def advance(cid, new_time):
            original_advance(cid, new_time)
            assert fabric.vtime[cid] >= seen[cid] - 1e-9
            seen[cid] = fabric.vtime[cid]

        def set_active(cid, start_time):
            original_set_active(cid, start_time)
            seen[cid] = start_time  # new active period, new clock

        fabric.advance = advance
        fabric.set_active = set_active
        machine.run(recursive_root(6))


class TestPerSourceFifo:
    def test_processing_order_per_source(self):
        """A core processes each source's messages in send order."""
        machine = build_machine(shared_mesh(8))
        processed = []
        original = machine._process_message

        def process(core, msg):
            processed.append((msg.src, core.cid, msg.seq, msg.arrival))
            original(core, msg)

        machine._process_message = process
        machine.run(recursive_root(6))
        last = {}
        for src, dst, seq, arrival in processed:
            key = (src, dst)
            if key in last:
                prev_seq, prev_arrival = last[key]
                assert seq > prev_seq
                assert arrival >= prev_arrival - 1e-9
            last[key] = (seq, arrival)


class TestConservativeOrdering:
    def test_nearly_no_out_of_order_processing(self):
        """The conservative referee orders execution by virtual time and
        drains inboxes earliest-arrival-first.  Without distance lookahead
        (a message from a nearby core can still undercut an already
        processed one from a distant core) a handful of inversions remain;
        they must be a tiny fraction of total traffic and far below what
        spatial sync produces on the same workload."""
        cfg = dataclasses.replace(shared_mesh(16), sync="conservative")
        machine = build_machine(cfg)
        machine.run(recursive_root(6))
        conservative_ooo = machine.stats.out_of_order_msgs
        total = machine.stats.total_messages
        assert conservative_ooo <= max(2, total * 0.05)

        spatial = build_machine(shared_mesh(16))
        spatial.run(recursive_root(6))
        assert conservative_ooo <= spatial.stats.out_of_order_msgs

    def test_spatial_does_reorder(self):
        """With drift allowed, some cross-source reordering happens."""
        machine = build_machine(shared_mesh(16))
        machine.run(recursive_root(7, cycles=200.0))
        assert machine.stats.out_of_order_msgs > 0


class TestPolicyIndependentOutput:
    """Program execution correctness: output must not depend on how the
    simulator synchronizes (paper, Section II-B)."""

    POLICIES = ["spatial", "conservative", "quantum", "bounded_slack",
                "laxp2p", "unbounded"]

    @pytest.mark.parametrize("name", ["quicksort", "spmxv", "octree",
                                      "dijkstra", "connected_components"])
    def test_same_output_all_policies(self, name):
        outputs = []
        for policy in self.POLICIES:
            cfg = dataclasses.replace(shared_mesh(8), sync=policy)
            workload = get_workload(name, scale="tiny", seed=4)
            machine = build_machine(cfg)
            result = machine.run(workload.root)
            workload.verify(result["output"])
            outputs.append(result["output"])
        first = outputs[0]
        for other in outputs[1:]:
            assert other == first

    def test_distributed_output_policy_independent(self):
        for policy in ("spatial", "conservative"):
            cfg = dataclasses.replace(dist_mesh(8), sync=policy)
            workload = get_workload("dijkstra", scale="tiny", seed=4,
                                    memory="distributed")
            result = build_machine(cfg).run(workload.root)
            workload.verify(result["output"])


class TestBirthLedgerLiveness:
    def test_heavy_spawning_completes_on_all_policies(self):
        for policy in ("spatial", "quantum", "bounded_slack", "laxp2p"):
            cfg = dataclasses.replace(shared_mesh(16), sync=policy)
            machine = build_machine(cfg)
            result = machine.run(recursive_root(7, cycles=30.0))
            assert result["depth"] == 7

    def test_no_leftover_births(self):
        machine = build_machine(shared_mesh(16))
        machine.run(recursive_root(6))
        for cid in range(16):
            assert not machine.fabric._births[cid]


class TestMessageConservation:
    def test_every_probe_answered(self):
        machine = build_machine(shared_mesh(16))
        machine.run(fanout_root(40))
        counts = machine.stats.messages_by_kind
        assert counts[MsgKind.PROBE] == (
            counts[MsgKind.PROBE_ACK] + counts[MsgKind.PROBE_NACK]
        )
        assert counts[MsgKind.TASK_SPAWN] == counts[MsgKind.PROBE_ACK]

    def test_all_inboxes_drained(self):
        machine = build_machine(shared_mesh(16))
        machine.run(fanout_root(40))
        for core in machine.cores:
            assert not core.inbox
            assert not core.queue
            assert core.current is None

    def test_task_accounting(self):
        machine = build_machine(shared_mesh(16))
        machine.run(fanout_root(40))
        assert machine.live_tasks == 0
        assert machine.stats.tasks_started == (
            1 + machine.stats.tasks_spawned_remote
        )
