"""Unit tests for the task run-time: probes, groups/join, locks."""

import pytest

from repro.arch import build_machine, dist_mesh, shared_mesh
from repro.core.errors import ProtocolError
from repro.core.messages import MsgKind
from repro.core.task import TaskGroup
from repro.runtime.locks import SimLock

from conftest import fanout_root


class TestConditionalSpawning:
    def test_single_core_always_inline(self, single):
        single.run(fanout_root(10))
        assert single.stats.tasks_run_inline == 10
        assert single.stats.tasks_spawned_remote == 0

    def test_spawns_go_to_neighbors(self, mesh16):
        placements = []

        def child(ctx):
            placements.append(ctx.core_id)
            yield ctx.compute(cycles=10_000)

        def root(ctx):
            group = TaskGroup()
            for _ in range(4):
                yield from ctx.spawn_or_inline(child, group=group)
            yield ctx.join(group)

        mesh16.run(root)
        # Tasks dispatched from core 0 land only on its topological
        # neighbours (dispatch is to neighbours only) or run inline.
        neighbor_set = set(mesh16.topo.neighbors(0)) | {0}
        assert placements
        assert set(placements) <= neighbor_set

    def test_queue_capacity_limits_acceptance(self):
        machine = build_machine(shared_mesh(2))
        capacity = machine.params.queue_capacity

        def child(ctx):
            yield ctx.compute(cycles=100_000)

        def root(ctx):
            group = TaskGroup()
            for _ in range(20):
                yield from ctx.spawn_or_inline(child, group=group)
            yield ctx.join(group)

        machine.run(root)
        nacks = machine.stats.messages_by_kind[MsgKind.PROBE_NACK]
        inline = machine.stats.tasks_run_inline
        assert inline > 0  # overload forced sequential execution

    def test_probe_messages_balance(self, mesh8):
        mesh8.run(fanout_root(12))
        counts = mesh8.stats.messages_by_kind
        assert counts[MsgKind.PROBE] == (
            counts[MsgKind.PROBE_ACK] + counts[MsgKind.PROBE_NACK]
        )

    def test_spawn_costs_time(self, mesh8):
        """A remote spawn costs at least the probe round trip."""

        def child(ctx):
            yield ctx.compute(cycles=1)

        def root(ctx):
            group = TaskGroup()
            t0 = yield ctx.now()
            spawned = yield ctx.try_spawn(child, group=group)
            t1 = yield ctx.now()
            yield ctx.join(group)
            return spawned, t1 - t0

        spawned, elapsed = mesh8.run(root)
        assert spawned
        assert elapsed > 2.0  # probe check + round trip


class TestGroupsAndJoin:
    def test_join_empty_group_immediate(self, mesh8):
        def root(ctx):
            group = TaskGroup()
            t0 = yield ctx.now()
            yield ctx.join(group)
            t1 = yield ctx.now()
            return t1 - t0

        assert mesh8.run(root) == 0.0

    def test_join_waits_for_children(self, mesh8):
        def child(ctx):
            yield ctx.compute(cycles=5000)

        def root(ctx):
            group = TaskGroup()
            yield from ctx.spawn_or_inline(child, group=group)
            yield ctx.join(group)
            t = yield ctx.now()
            return t

        assert mesh8.run(root) >= 5000

    def test_join_after_completion_charges_notification_latency(self, mesh8):
        """Fast-path join cannot causally precede the last child's finish."""

        def child(ctx):
            yield ctx.compute(cycles=5000)

        def root(ctx):
            group = TaskGroup()
            yield from ctx.spawn_or_inline(child, group=group)
            # Busy-wait far beyond the child's finish time.
            yield ctx.compute(cycles=20_000)
            t0 = yield ctx.now()
            yield ctx.join(group)
            t1 = yield ctx.now()
            return t0, t1

        t0, t1 = mesh8.run(root)
        assert t1 >= t0  # no time travel

    def test_group_counter_protocol(self):
        group = TaskGroup("g")
        group.register()
        group.register()
        assert group.deregister() == 1
        assert group.deregister() == 0
        with pytest.raises(ProtocolError):
            group.deregister()

    def test_multiple_joiners(self, mesh8):
        def child(ctx):
            yield ctx.compute(cycles=2000)

        def joiner(ctx, group):
            yield ctx.join(group)
            t = yield ctx.now()
            return t

        def root(ctx):
            work = TaskGroup("work")
            waiters = TaskGroup("waiters")
            yield from ctx.spawn_or_inline(child, group=work)
            yield from ctx.spawn_or_inline(joiner, work, group=waiters)
            yield ctx.join(work)
            yield ctx.join(waiters)
            return True

        assert mesh8.run(root)


class TestLocks:
    def test_mutual_exclusion_counter(self, mesh8):
        lock = SimLock("m")
        counter = {"value": 0}

        def worker(ctx):
            for _ in range(10):
                yield ctx.acquire(lock)
                local = counter["value"]
                yield ctx.compute(cycles=50)
                counter["value"] = local + 1
                yield ctx.release(lock)

        def root(ctx):
            group = TaskGroup()
            for _ in range(4):
                yield from ctx.spawn_or_inline(worker, group=group)
            yield ctx.join(group)
            return counter["value"]

        assert mesh8.run(root) == 40
        assert lock.acquisitions == 40
        assert not lock.is_held

    def test_release_by_non_holder_rejected(self, mesh8):
        lock = SimLock()

        def root(ctx):
            yield ctx.release(lock)

        with pytest.raises(ProtocolError):
            mesh8.run(root)

    def test_contention_recorded(self, mesh8):
        lock = SimLock()

        def worker(ctx):
            for _ in range(8):
                yield ctx.acquire(lock)
                # More actions than one scheduling slice (64) so competing
                # workers are scheduled while the lock is held.
                for _ in range(80):
                    yield ctx.compute(cycles=20)
                yield ctx.release(lock)

        def root(ctx):
            group = TaskGroup()
            for _ in range(4):
                yield from ctx.spawn_or_inline(worker, group=group)
            yield ctx.join(group)

        mesh8.run(root)
        assert lock.acquisitions == 32
        assert lock.contended_acquisitions > 0

    def test_homed_lock_protocol(self, mesh8):
        lock = SimLock("homed", home_core=3)
        order = []

        def worker(ctx, k):
            yield ctx.acquire(lock)
            order.append(k)
            yield ctx.compute(cycles=100)
            yield ctx.release(lock)

        def root(ctx):
            group = TaskGroup()
            for k in range(3):
                yield from ctx.spawn_or_inline(worker, k, group=group)
            yield ctx.join(group)
            return order

        result = mesh8.run(root)
        assert sorted(result) == [0, 1, 2]
        assert not lock.is_held

    def test_lock_serializes_virtual_time_under_conservative(self):
        """With zero drift (conservative sync), critical sections are
        totally ordered in virtual time.  Under spatial sync they may
        overlap in virtual time by up to the drift bound — that is the
        accuracy/speed trade the paper makes — so the strict property is
        asserted on the conservative referee only."""
        import dataclasses

        cfg = dataclasses.replace(shared_mesh(8), sync="conservative")
        machine = build_machine(cfg)
        lock = SimLock()
        spans = []

        def worker(ctx):
            yield ctx.acquire(lock)
            t0 = yield ctx.now()
            yield ctx.compute(cycles=500)
            t1 = yield ctx.now()
            spans.append((t0, t1))
            yield ctx.release(lock)

        def root(ctx):
            group = TaskGroup()
            for _ in range(4):
                yield from ctx.spawn_or_inline(worker, group=group)
            yield ctx.join(group)

        machine.run(root)
        spans.sort()
        assert len(spans) == 4
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert b0 >= a1 - 1e-9  # critical sections do not overlap

    def test_lock_sections_overlap_bounded_under_spatial(self, mesh8):
        """Under spatial sync, any virtual-time overlap of uncontended
        critical sections stays within the global drift bound."""
        lock = SimLock()
        spans = []

        def worker(ctx):
            yield ctx.acquire(lock)
            t0 = yield ctx.now()
            yield ctx.compute(cycles=500)
            t1 = yield ctx.now()
            spans.append((t0, t1))
            yield ctx.release(lock)

        def root(ctx):
            group = TaskGroup()
            for _ in range(4):
                yield from ctx.spawn_or_inline(worker, group=group)
            yield ctx.join(group)

        mesh8.run(root)
        bound = mesh8.fabric.global_drift_bound() + 500
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 - b0 <= bound


class TestQueueStateProxies:
    def test_queue_state_broadcast_happens(self, mesh8):
        mesh8.run(fanout_root(10))
        assert mesh8.stats.messages_by_kind[MsgKind.QUEUE_STATE] > 0

    def test_proxies_updated(self, mesh8):
        mesh8.run(fanout_root(10))
        runtime = mesh8.runtime
        # Every core's proxy map covers exactly its neighbours.
        for cid in range(mesh8.n_cores):
            assert set(runtime._proxy[cid]) == set(mesh8.topo.neighbors(cid))
