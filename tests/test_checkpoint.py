"""Split-run equivalence of the checkpoint subsystem.

The correctness contract under test (docs/checkpoint.md): for any
workload x backend x engine kernel,

    run(0..end)  ==  run(0..k); snapshot; restore; run(k..end)

bit-identically — results, completion virtual time, per-kind message
counts, full deterministic stats and the canonical trace digest.
Checkpointing itself must be observation-only (a checkpointed run
equals a straight run), restores must *verify* the replayed state
against the captured one and fail loudly on divergence, and restoring
a sharded snapshot onto a different shard count must be refused.
"""

import dataclasses
import io
import random

import pytest

from repro.arch import shared_mesh
from repro.checkpoint import (CheckpointError, CheckpointMismatchError,
                              load_snapshot, resume_run, run_checkpointed,
                              run_serial_checkpointed, run_straight,
                              save_snapshot, split_run)
from repro.parallel import WorkloadSpec

QUICKSORT = [WorkloadSpec("quicksort", scale="tiny", seed=3, root_core=0)]
PAIR = [
    WorkloadSpec("", root_core=0,
                 factory="repro.verify.fuzz_roots:pingpong",
                 kwargs={"peer": 10, "rounds": 3}),
    WorkloadSpec("", root_core=10,
                 factory="repro.verify.fuzz_roots:echo",
                 kwargs={"rounds": 3}),
]


def serial_cfg(**kw):
    kw.setdefault("collect_trace", True)
    return dataclasses.replace(shared_mesh(16), seed=7, **kw)


def sharded_cfg(**kw):
    return dataclasses.replace(shared_mesh(16), backend="sharded", shards=4,
                               collect_trace=True, seed=7, **kw)


def det(outcome):
    """Deterministic section of an outcome document."""
    return {k: v for k, v in outcome.items() if k != "host"}


class TestSerialSplitRun:
    @pytest.mark.parametrize("kernel", ["python", "vectorized", "compiled"])
    def test_split_equals_straight_under_every_kernel(self, kernel):
        cfg = serial_cfg(engine_kernel=kernel)
        straight = run_straight(cfg, QUICKSORT)
        snap, chk, resumed = split_run(cfg, QUICKSORT,
                                       straight["completion"] * 0.4)
        assert snap is not None, "run finished before the boundary"
        assert det(chk) == det(straight)
        assert det(resumed) == det(straight)
        assert resumed["digest"] == straight["digest"] is not None

    def test_messaging_workload_split(self):
        cfg = serial_cfg()
        straight = run_straight(cfg, PAIR)
        snap, chk, resumed = split_run(cfg, PAIR, straight["completion"] / 2)
        assert snap is not None
        assert det(resumed) == det(straight)

    def test_every_boundary_resumes_identically(self):
        cfg = serial_cfg()
        straight = run_straight(cfg, QUICKSORT)
        snaps = []
        chk = run_serial_checkpointed(cfg, QUICKSORT, 1500.0, snaps.append)
        assert det(chk) == det(straight)
        assert len(snaps) >= 3, "interval too coarse for this workload"
        for snap in snaps:
            assert det(resume_run(snap)) == det(straight)

    def test_snapshot_file_round_trip(self, tmp_path):
        cfg = serial_cfg()
        straight = run_straight(cfg, QUICKSORT)
        snap, _, _ = split_run(cfg, QUICKSORT, 2000.0)
        path = str(tmp_path / "run.ckpt")
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.state_hash == snap.state_hash
        assert det(resume_run(path)) == det(straight)

    def test_interval_must_be_positive(self):
        with pytest.raises(CheckpointError):
            run_serial_checkpointed(serial_cfg(), QUICKSORT, 0.0,
                                    lambda s: None)

    def test_tampered_state_fails_verification(self):
        cfg = serial_cfg()
        snap, _, _ = split_run(cfg, QUICKSORT, 2000.0)
        state = snap.states[0]
        state["det"]["stats"]["context_switches"] += 1
        with pytest.raises(CheckpointMismatchError) as exc:
            resume_run(snap)
        assert "context_switches" in str(exc.value)

    def test_tampered_plane_bytes_fail_verification(self):
        cfg = serial_cfg()
        snap, _, _ = split_run(cfg, QUICKSORT, 2000.0)
        cols = snap.states[0]["det"]["columns"]
        raw = bytearray(cols["vtime"])
        raw[3] ^= 0x10
        cols["vtime"] = bytes(raw)
        with pytest.raises(CheckpointMismatchError):
            resume_run(snap)


class TestMachineApi:
    def test_snapshot_and_resume_methods(self):
        from repro.arch import build_machine
        from repro.checkpoint.state import verify_machine_state

        cfg = serial_cfg(collect_trace=False)
        machine = build_machine(cfg)
        machine.run(
            __import__("repro.workloads", fromlist=["get_workload"])
            .get_workload("quicksort", scale="tiny", seed=3).root,
            stop_at_vtime=2000.0)
        cap = machine.snapshot()
        assert set(cap) == {"det", "host"}
        verify_machine_state(cap, machine.snapshot())
        results = machine.resume_run()
        assert machine.live_tasks == 0
        assert results[0]["output"] == sorted(results[0]["output"])

    def test_resume_before_run_is_an_error(self):
        from repro.arch import build_machine
        from repro.core.errors import SimError

        with pytest.raises(SimError):
            build_machine(serial_cfg()).resume_run()


class TestShardedSplitRun:
    def test_split_equals_straight(self):
        cfg = sharded_cfg()
        straight = run_straight(cfg, QUICKSORT)
        assert straight["protocol"]["rounds"] >= 2
        snap, chk, resumed = split_run(cfg, QUICKSORT, 2)
        assert snap is not None and snap.kind == "sharded"
        assert len(snap.states) == 4  # one capture per shard
        assert det(chk) == det(straight)
        assert det(resumed) == det(straight)

    def test_cross_shard_messaging_split(self):
        cfg = sharded_cfg()
        straight = run_straight(cfg, PAIR)
        rounds = straight["protocol"]["rounds"]
        if rounds < 2:
            pytest.skip("run too short to split")
        snap, _, resumed = split_run(cfg, PAIR, max(1, rounds // 2))
        assert snap is not None
        assert det(resumed) == det(straight)

    def test_different_shard_count_is_refused(self):
        cfg = sharded_cfg()
        snap, _, _ = split_run(cfg, QUICKSORT, 2)
        wrong = dataclasses.replace(snap,
                                    config=dict(snap.config, shards=2))
        with pytest.raises(CheckpointError) as exc:
            resume_run(wrong)
        assert "shard" in str(exc.value)

    def test_tampered_worker_state_fails_verification(self):
        cfg = sharded_cfg()
        snap, _, _ = split_run(cfg, QUICKSORT, 2)
        snap.states[1]["det"]["stats"]["context_switches"] += 7
        with pytest.raises(CheckpointMismatchError) as exc:
            resume_run(snap)
        assert "shard 1" in str(exc.value)

    def test_resume_past_completed_run_fails_loudly(self):
        # A verify_round beyond the run's actual rounds means the
        # snapshot does not belong to this trajectory.
        cfg = sharded_cfg()
        straight = run_straight(cfg, QUICKSORT)
        snap, _, _ = split_run(cfg, QUICKSORT, 2)
        late = dataclasses.replace(
            snap, boundary={"kind": "round",
                            "value": straight["protocol"]["rounds"] + 50})
        with pytest.raises(CheckpointMismatchError):
            resume_run(late)


class TestCheckpointedDispatch:
    def test_backend_dispatch(self):
        serial = run_checkpointed(serial_cfg(), QUICKSORT, 4000.0,
                                  lambda s: None)
        sharded = run_checkpointed(sharded_cfg(), QUICKSORT, 3,
                                   lambda s: None)
        assert serial["backend"] == "serial"
        assert sharded["backend"] == "sharded"


class TestCli:
    def test_checkpoint_then_resume_match(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "cli.ckpt")
        out1, out2 = io.StringIO(), io.StringIO()
        assert main(["run", "quicksort", "--cores", "16", "--scale", "tiny",
                     "--checkpoint-every", "2000",
                     "--checkpoint", path], out=out1) == 0
        assert "checkpoints" in out1.getvalue()
        assert main(["run", "--resume", path], out=out2) == 0
        pick = lambda s: [ln for ln in s.splitlines()
                          if ln.startswith(("virtual time", "tasks started",
                                            "messages"))]
        assert pick(out1.getvalue()) == pick(out2.getvalue())
        assert "verified replay" in out2.getvalue()

    def test_checkpoint_every_requires_path(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "quicksort", "--checkpoint-every", "100"],
                 out=io.StringIO())

    def test_run_without_benchmark_or_resume_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run"], out=io.StringIO())


class TestFuzzSnapshotMode:
    def test_deterministic_case_sample_passes(self):
        from repro.verify.fuzzer import generate_case, run_snapshot_case

        for i in range(4):
            seed = 77 * 1_000_003 + i
            case = generate_case(random.Random(seed), seed=seed)
            ok, report = run_snapshot_case(case, sanitize=False)
            assert ok, report
            assert report["mode"] == "snapshot"
            assert "serial_boundary" in report

    def test_cli_flag_wires_through(self):
        from repro.cli import main

        out = io.StringIO()
        assert main(["fuzz", "--snapshot", "--cases", "1", "--seed", "5",
                     "--no-sanitize"], out=out) == 0
        assert "snapshot" in out.getvalue()
