"""Golden-numbers regression test for the engine hot path.

The hot-path optimisations (arrival-ordered inbox heap, dispatch caching,
compute fusion, NoC route memoisation, numpy fabric) must be
behaviour-preserving: the virtual-time results of a simulation are part of
the engine's contract.  This test pins ``completion_vtime``, per-kind
message counts, drift-stall counts and action counts for a matrix of
seeded workloads across every sync policy; the expected values were
captured from the pre-optimisation engine (PR 1) and must stay
bit-identical.

Regenerate (only when an *intentional* semantic change lands) with:

    PYTHONPATH=src python tests/test_golden_numbers.py
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch import build_machine, dist_mesh, numa_mesh, shared_mesh
from repro.workloads import get_workload

#: (benchmark, memory, sync policy, cores, scale, seed)
GOLDEN_RUNS = (
    ("quicksort", "shared", "spatial", 16, "small", 0),
    ("quicksort", "distributed", "conservative", 8, "tiny", 0),
    ("connected_components", "distributed", "spatial", 16, "tiny", 0),
    ("dijkstra", "numa", "quantum", 16, "tiny", 0),
    ("spmxv", "shared", "bounded_slack", 16, "tiny", 0),
    ("octree", "distributed", "laxp2p", 16, "tiny", 0),
    ("barnes_hut", "shared", "unbounded", 16, "tiny", 0),
)


def run_golden(benchmark, memory, sync, cores, scale, seed):
    """Run one configuration and distil the golden observables."""
    if memory == "shared":
        cfg = shared_mesh(cores)
    elif memory == "numa":
        cfg = numa_mesh(cores)
    else:
        cfg = dist_mesh(cores)
    cfg = dataclasses.replace(cfg, sync=sync, seed=seed)
    workload = get_workload(benchmark, scale=scale, seed=seed, memory=memory)
    machine = build_machine(cfg)
    result = machine.run(workload.root)
    workload.verify(result["output"])
    stats = machine.stats
    return {
        "completion_vtime": stats.completion_vtime,
        "drift_stalls": stats.drift_stalls,
        "actions": stats.actions,
        "messages": {
            kind.value: count
            for kind, count in sorted(
                stats.messages_by_kind.items(), key=lambda kv: kv[0].value
            )
            if count
        },
    }


# Captured from the seed engine (commit 719504d) — see module docstring.
EXPECTED = {
    "quicksort-shared-spatial-16-small-0": {
        "completion_vtime": 70042.09999999999,
        "drift_stalls": 178,
        "actions": 392,
        "messages": {
            "probe": 68,
            "probe_ack": 68,
            "queue_state": 534,
            "task_spawn": 68,
        },
    },
    "quicksort-distributed-conservative-8-tiny-0": {
        "completion_vtime": 12428.5,
        "drift_stalls": 418,
        "actions": 150,
        "messages": {
            "data_request": 45,
            "data_response": 45,
            "joiner_request": 1,
            "probe": 22,
            "probe_ack": 22,
            "queue_state": 130,
            "task_spawn": 22,
        },
    },
    "connected_components-distributed-spatial-16-tiny-0": {
        "completion_vtime": 8045.0,
        "drift_stalls": 21,
        "actions": 1267,
        "messages": {
            "data_request": 571,
            "data_response": 485,
            "joiner_request": 1,
            "probe": 105,
            "probe_ack": 90,
            "probe_nack": 15,
            "queue_state": 1716,
            "task_spawn": 90,
        },
    },
    "dijkstra-numa-quantum-16-tiny-0": {
        "completion_vtime": 15835.5,
        "drift_stalls": 2283,
        "actions": 2911,
        "messages": {
            "joiner_request": 1,
            "probe": 123,
            "probe_ack": 117,
            "probe_nack": 6,
            "queue_state": 1155,
            "task_spawn": 117,
        },
    },
    "spmxv-shared-bounded_slack-16-tiny-0": {
        "completion_vtime": 5423.0,
        "drift_stalls": 30,
        "actions": 25,
        "messages": {
            "joiner_request": 1,
            "probe": 3,
            "probe_ack": 3,
            "queue_state": 20,
            "task_spawn": 3,
        },
    },
    "octree-distributed-laxp2p-16-tiny-0": {
        "completion_vtime": 4907.0,
        "drift_stalls": 0,
        "actions": 692,
        "messages": {
            "data_request": 134,
            "data_response": 134,
            "joiner_request": 1,
            "probe": 138,
            "probe_ack": 115,
            "probe_nack": 23,
            "queue_state": 1128,
            "task_spawn": 115,
        },
    },
    "barnes_hut-shared-unbounded-16-tiny-0": {
        "completion_vtime": 44107.8,
        "drift_stalls": 0,
        "actions": 201,
        "messages": {
            "joiner_request": 1,
            "probe": 7,
            "probe_ack": 7,
            "queue_state": 44,
            "task_spawn": 7,
        },
    },
}


@pytest.mark.parametrize("run", GOLDEN_RUNS, ids=lambda r: "-".join(map(str, r[:4])))
def test_golden_numbers(run):
    key = "-".join(map(str, run))
    assert key in EXPECTED, f"no golden record for {key}; regenerate"
    got = run_golden(*run)
    assert got == EXPECTED[key]


# -- sharded backend ------------------------------------------------------
#
# The sharded backend must produce bit-identical results to the serial
# engine for the same *fenced* configuration (ArchConfig.shards > 0 is a
# semantic switch both backends honour; the backend choice is then pure
# execution strategy).  Bit-identity is guaranteed for shard-closed runs
# with no drift coupling — hence spatial sync with a large T, and the
# unbounded policy — where each worker replays exactly the serial host
# order of its own region.  Both the serial-vs-sharded equality AND the
# absolute values are pinned, on a 16-core mesh split into 4 shards with
# one root workload per shard region.

#: (sync policy, drift bound T, memory organization)
SHARDED_GOLDEN_RUNS = (
    ("spatial", 1e9, "shared"),
    ("unbounded", 100.0, "distributed"),
)

#: One root per shard region of the 4-shard 16-core mesh.
SHARD_ROOTS = (
    ("quicksort", 0),
    ("dijkstra", 4),
    ("spmxv", 8),
    ("connected_components", 12),
)


def _sharded_specs(memory):
    from repro.parallel import WorkloadSpec

    return [
        WorkloadSpec(bench, scale="tiny", seed=i, memory=memory,
                     root_core=core)
        for i, (bench, core) in enumerate(SHARD_ROOTS)
    ]


def _observables(stats):
    return {
        "completion_vtime": stats.completion_vtime,
        "drift_stalls": stats.drift_stalls,
        "actions": stats.actions,
        "messages": {
            kind.value: count
            for kind, count in sorted(
                stats.messages_by_kind.items(), key=lambda kv: kv[0].value
            )
            if count
        },
    }


def run_sharded_golden(sync, drift, memory):
    """Run the fenced config under both backends; return observables."""
    from repro.arch import build_backend
    from repro.workloads import get_workload as gw

    base = shared_mesh(16) if memory == "shared" else dist_mesh(16)
    cfg = dataclasses.replace(base, sync=sync, drift_bound=drift, shards=4)
    specs = _sharded_specs(memory)

    serial = build_machine(cfg)
    serial_results = serial.run_roots([
        (gw(s.benchmark, scale=s.scale, seed=s.seed, memory=s.memory).root,
         (), s.root_core)
        for s in specs
    ])

    sharded = build_backend(dataclasses.replace(cfg, backend="sharded"))
    sharded_results = sharded.run_workloads(specs)

    return (_observables(serial.stats), _observables(sharded.stats),
            serial_results, sharded_results)


# Captured with the regeneration helper below; both backends produced
# these exact values at capture time.
EXPECTED_SHARDED = {
    "spatial-1000000000.0-shared": {
        "completion_vtime": 21751.0,
        "drift_stalls": 0,
        "actions": 5196,
        "messages": {
            "joiner_request": 4,
            "probe": 285,
            "probe_ack": 155,
            "probe_nack": 130,
            "queue_state": 699,
            "task_spawn": 155,
        },
    },
    "unbounded-100.0-distributed": {
        "completion_vtime": 20390.5,
        "drift_stalls": 0,
        "actions": 5177,
        "messages": {
            "data_request": 1746,
            "data_response": 1545,
            "joiner_request": 3,
            "probe": 370,
            "probe_ack": 213,
            "probe_nack": 157,
            "queue_state": 3041,
            "task_spawn": 213,
        },
    },
}


@pytest.mark.parametrize(
    "run", SHARDED_GOLDEN_RUNS, ids=lambda r: f"{r[0]}-{r[2]}")
def test_sharded_backend_bit_identical(run):
    key = "-".join(map(str, run))
    assert key in EXPECTED_SHARDED, f"no golden record for {key}; regenerate"
    serial_obs, sharded_obs, serial_results, sharded_results = (
        run_sharded_golden(*run))
    # Bit-identity premise: no drift coupling on either backend.
    assert serial_obs["drift_stalls"] == 0
    assert sharded_obs["drift_stalls"] == 0
    # The two backends agree exactly ...
    assert sharded_obs == serial_obs
    assert sharded_results == serial_results
    # ... and with the pinned absolute values.
    assert serial_obs == EXPECTED_SHARDED[key]


if __name__ == "__main__":  # golden regeneration helper
    import pprint

    table = {}
    for run in GOLDEN_RUNS:
        table["-".join(map(str, run))] = run_golden(*run)
    pprint.pprint(table, sort_dicts=True)
    sharded_table = {}
    for run in SHARDED_GOLDEN_RUNS:
        key = "-".join(map(str, run))
        serial_obs, sharded_obs, _, _ = run_sharded_golden(*run)
        assert serial_obs == sharded_obs, f"{key}: backends disagree"
        sharded_table[key] = serial_obs
    pprint.pprint(sharded_table, sort_dicts=True)
