"""Property tests for the n-objective Pareto filter.

The fast filter (presorted simple cull) is pinned against an
independently-written brute-force O(n^2) oracle on arbitrary point
clouds, including the two cases an optimized filter most easily gets
wrong: **duplicate points** (weak dominance — duplicates never dominate
each other, so all copies survive) and the **single-objective**
degenerate case (the frontier is exactly the optimum-value points).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.pareto import (dominates, non_dominated,
                              non_dominated_bruteforce)

# Small-integer coordinates force ties and duplicates; the occasional
# real float keeps the filter honest about non-lattice clouds.
coord = st.one_of(
    st.integers(-3, 3).map(float),
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
)


@st.composite
def clouds(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    senses = tuple(draw(st.sampled_from(["min", "max"]))
                   for _ in range(k))
    points = draw(st.lists(st.tuples(*([coord] * k)), max_size=24))
    return points, senses


@given(clouds())
@settings(max_examples=300, deadline=None)
def test_filter_matches_bruteforce(cloud):
    points, senses = cloud
    assert non_dominated(points, senses) == \
        non_dominated_bruteforce(points, senses)


@given(clouds())
@settings(max_examples=150, deadline=None)
def test_frontier_invariants(cloud):
    """No member dominates another; every outsider is dominated."""
    points, senses = cloud
    keyed = [tuple(x if s == "min" else -x for x, s in zip(p, senses))
             for p in points]
    front = set(non_dominated(points, senses))
    for i in front:
        assert not any(dominates(keyed[j], keyed[i]) for j in front)
    for i in range(len(points)):
        if i not in front:
            assert any(dominates(keyed[j], keyed[i]) for j in front)


@given(st.lists(coord, min_size=1, max_size=24),
       st.sampled_from(["min", "max"]))
@settings(max_examples=150, deadline=None)
def test_single_objective_frontier_is_the_optimum(values, sense):
    best = min(values) if sense == "min" else max(values)
    expected = [i for i, v in enumerate(values) if v == best]
    assert non_dominated([(v,) for v in values], (sense,)) == expected


@given(st.tuples(coord, coord), st.integers(min_value=2, max_value=5))
@settings(max_examples=80, deadline=None)
def test_duplicates_all_survive(point, copies):
    cloud = [point] * copies
    assert non_dominated(cloud, ("min", "max")) == list(range(copies))


def test_duplicates_survive_beside_distinct_points():
    cloud = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0), (0.0, 3.0)]
    assert non_dominated(cloud, ("min", "min")) == [0, 1, 3]


def test_mixed_senses_example():
    # Maximize x, minimize y: (3,1) beats (2,2); (1,0) survives on y.
    assert non_dominated([(2, 2), (3, 1), (1, 0)],
                         ("max", "min")) == [1, 2]


def test_empty_cloud():
    assert non_dominated([], ("min",)) == []


def test_validation_errors():
    with pytest.raises(ValueError, match="senses"):
        non_dominated([(1.0,)], ("down",))
    with pytest.raises(ValueError, match="coordinates"):
        non_dominated([(1.0, 2.0)], ("min",))
