"""Unit tests for report formatting."""

import math

from repro.harness import report


class TestFormatTable:
    def test_alignment(self):
        out = report.format_table(["a", "bbb"], [[1, 2.5], [10, 0.123456]])
        lines = out.splitlines()
        assert len(lines) == 4
        header = lines[0]
        assert "a" in header and "bbb" in header
        # All rows have the same width.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = report.format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table\n========")

    def test_float_formats(self):
        out = report.format_table(["v"], [[0.0001], [123456.0], [math.inf]])
        assert "inf" in out
        assert "0.0001" in out
        assert "1.23e+05" in out or "123456" in out


class TestFormatCurves:
    def test_rows_sorted(self):
        curves = {"zeta": {1: 1.0, 4: 2.0}, "alpha": {1: 1.0, 4: 3.0}}
        out = report.format_curves(curves, [1, 4], title="T")
        assert out.index("alpha") < out.index("zeta")
        assert "(speedup)" in out

    def test_missing_sizes_nan(self):
        out = report.format_curves({"a": {1: 1.0}}, [1, 4])
        assert "nan" in out


class TestFormatValidation:
    def _result(self):
        return {
            "sizes": [1, 4],
            "vt": {"qs": {1: 1.0, 4: 2.0}},
            "cl": {"qs": {1: 1.0, 4: 2.2}},
            "errors": {4: 0.09},
            "polymorphic": False,
        }

    def test_contains_both_rows(self):
        out = report.format_validation(self._result())
        assert "qs VT" in out
        assert "qs CL" in out
        assert "geomean error %" in out
        assert "uniform" in out

    def test_polymorphic_label(self):
        result = self._result()
        result["polymorphic"] = True
        assert "polymorphic" in report.format_validation(result)


class TestFormatDrift:
    def test_tables(self):
        result = {
            "t_values": [50.0, 500.0],
            "baseline_t": 100.0,
            "speedup_variation_pct": {"qs": {50.0: 1.0, 500.0: -2.0}},
            "simtime_variation_pct": {"qs": {50.0: 20.0, 500.0: -50.0}},
        }
        out = report.format_drift_tables(result)
        assert "T=50" in out and "T=500" in out
        assert "speedup variation" in out
        assert "simulation-time variation" in out


class TestPowerLawReport:
    def test_format(self):
        out = report.format_power_law({"qs": (0.5, 1.9)})
        assert "qs" in out
        assert "exponent" in out


class TestCsv:
    def test_dump(self):
        out = report.dump_csv({"a": {1: 1.0, 4: 2.0}}, [1, 4])
        lines = out.splitlines()
        assert lines[0] == "benchmark,1,4"
        assert lines[1].startswith("a,1,2")
