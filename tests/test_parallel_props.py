"""Property-based tests for the sharded backend's pure building blocks.

Two pieces of the backend are exactly the kind of code property testing
earns its keep on:

* the **edge-batch codec** (:func:`encode_batch` / :func:`decode_batch`)
  — delta-encoded columnar pickles whose float columns must survive the
  wire *bit-exactly* (virtual times feed the drift bound; a single ULP
  of drift breaks the bit-identity contract), including NaN, the
  infinities and subnormals;
* the **contiguous partition** — every core owned exactly once, shards
  balanced and contiguous, and the induced regions connected (or a
  clean :class:`SimConfigError` refusing the split).
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import SimConfigError
from repro.core.messages import Message, MsgKind
from repro.network.topology import square_mesh
from repro.parallel import contiguous_partition
from repro.parallel.channels import decode_batch, encode_batch


# -- edge-batch codec round-trip -------------------------------------------

def bits(x: float) -> bytes:
    """Bit pattern of a float: the only equality that treats NaN as
    itself and distinguishes -0.0 from 0.0."""
    return struct.pack("<d", x)


wire_floats = st.floats(allow_nan=True, allow_infinity=True,
                        allow_subnormal=True)

payloads = st.one_of(
    st.none(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.tuples(st.integers(), st.text(max_size=4)),
    st.lists(st.integers(), max_size=4),
)

tags = st.one_of(st.none(), st.integers(), st.text(max_size=8),
                 st.tuples(st.text(max_size=4), st.integers()))

messages = st.builds(
    Message,
    kind=st.just(MsgKind.USER),
    src=st.integers(0, 1023),
    dst=st.integers(0, 1023),
    send_time=wire_floats,
    size=wire_floats,
    payload=payloads,
    tag=tags,
    arrival=wire_floats,
)


@given(st.lists(messages, max_size=32))
@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batch_roundtrip_is_exact(msgs):
    fields = list(decode_batch(encode_batch(msgs)))
    assert len(fields) == len(msgs)
    for msg, (kind, src, dst, send_time, size, arrival, payload, tag) in zip(
            msgs, fields):
        assert kind is MsgKind.USER
        assert src == msg.src and dst == msg.dst
        # Bit-exact float recovery, NaN and signed zero included.
        assert bits(send_time) == bits(msg.send_time)
        assert bits(size) == bits(msg.size)
        assert bits(arrival) == bits(msg.arrival)
        assert payload == msg.payload and tag == msg.tag


def test_empty_batch_roundtrips():
    assert list(decode_batch(encode_batch([]))) == []


def test_decode_preserves_emission_order():
    msgs = [Message(MsgKind.USER, src=i % 3, dst=(i * 7) % 5,
                    send_time=float(i), size=32.0, payload=i,
                    arrival=float(i) + 1.0)
            for i in range(10)]
    decoded = list(decode_batch(encode_batch(msgs)))
    assert [f[6] for f in decoded] == list(range(10))


# -- partition properties --------------------------------------------------

def region_is_connected(topo, cores) -> bool:
    """BFS over the induced subgraph — an independent reimplementation
    of the property ``contiguous_partition`` promises to enforce."""
    cores = set(cores)
    seen = {next(iter(cores))}
    frontier = list(seen)
    while frontier:
        nxt = []
        for cid in frontier:
            for n in topo.neighbors(cid):
                if n in cores and n not in seen:
                    seen.add(n)
                    nxt.append(n)
        frontier = nxt
    return seen == cores


@given(n_cores=st.integers(2, 36), n_shards=st.integers(1, 6))
@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_partition_properties(n_cores, n_shards):
    topo = square_mesh(n_cores)
    try:
        part = contiguous_partition(topo, n_shards)
    except SimConfigError:
        # A clean refusal (too many shards, or a split whose band would
        # be disconnected on this mesh) is a valid outcome; silently
        # producing a broken partition is not.
        assert n_shards > 1
        return
    assert part.n_shards == n_shards
    # Coverage and disjointness: every core in exactly one shard.
    all_cores = [cid for shard in part.shards for cid in shard]
    assert sorted(all_cores) == list(range(n_cores))
    assert len(set(all_cores)) == n_cores
    # Owner map agrees with the shard tuples.
    for sid, shard in enumerate(part.shards):
        for cid in shard:
            assert part.owner_of(cid) == sid
    # Balance: shard sizes differ by at most one.
    sizes = [len(shard) for shard in part.shards]
    assert max(sizes) - min(sizes) <= 1
    # Contiguity of id ranges, ascending across shards.
    flat = [cid for shard in part.shards for cid in shard]
    assert flat == list(range(n_cores))
    # Spatial connectivity of every induced region.
    for shard in part.shards:
        assert region_is_connected(topo, shard)


@pytest.mark.parametrize("n_shards", [0, -1, 10])
def test_invalid_shard_counts_are_refused(n_shards):
    topo = square_mesh(9)
    with pytest.raises(SimConfigError):
        contiguous_partition(topo, n_shards)
