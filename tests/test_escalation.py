"""Escalation-ladder tests for the sharded coordinator.

The coordinator's stall handling (relief round -> waiver round ->
deadlock) is driven here with a *scripted stub worker*: the real
``worker_main`` is monkeypatched out (fork workers inherit the patch)
and replaced by a loop that replies with pre-scripted status tuples and
asserts the ``waive`` flag the coordinator sent each round.  That keeps
the ladder's control flow — which in real runs depends on delicate
cross-shard timing — fully deterministic and observable through
``backend.protocol``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import traceback

import pytest

import repro.parallel.coordinator as coordinator
from repro.arch import build_backend, shared_mesh
from repro.core.errors import SimDeadlock, SimError
from repro.core.fabric import INF
from repro.core.stats import SimStats
from repro.parallel import WorkloadSpec

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE,
    reason="stub-worker tests need fork workers (the monkeypatched "
           "worker_main must be inherited, not re-imported)")


def scripted_worker(script):
    """Build a ``worker_main`` replacement that replays ``script``.

    Each entry is ``(progressed, sent, live, min_time, expect_waive)``:
    the first four become the status reply for that round; the fifth is
    asserted against the ``waive`` flag the coordinator actually sent.
    A mismatch is shipped back as a worker error, which ``_expect``
    surfaces as :class:`SimError` — failing whichever outcome the test
    expected.
    """
    entries = list(script)

    def stub(sid, cfg, specs, edge_conns, ctrl_conn, board_name):
        try:
            step = 0
            while True:
                cmd = ctrl_conn.recv()
                if cmd[0] == "go":
                    progressed, sent, live, min_time, expect_waive = \
                        entries[step]
                    step += 1
                    if bool(cmd[3]) != expect_waive:
                        raise AssertionError(
                            f"round {step}: coordinator sent "
                            f"waive={cmd[3]!r}, script expected "
                            f"{expect_waive}")
                    ctrl_conn.send(
                        ("status", progressed, sent, live, min_time))
                elif cmd[0] == "stop":
                    ctrl_conn.send(("done", SimStats(n_cores=cfg.n_cores),
                                    {0: "stub-result"}, {0: 42.0}, {},
                                    0.0, None))
                    return
        except BaseException as exc:
            ctrl_conn.send(("error", sid, repr(exc),
                            traceback.format_exc()))

    return stub


def stub_backend(monkeypatch, script, **overrides):
    monkeypatch.setattr(coordinator, "worker_main", scripted_worker(script))
    cfg = dataclasses.replace(
        shared_mesh(8), backend="sharded", shards=1,
        adaptive_window=False, worker_start_method="fork", **overrides)
    return build_backend(cfg)


SPECS = [WorkloadSpec("quicksort", scale="tiny", root_core=0)]


def test_full_ladder_ends_in_deadlock(monkeypatch):
    # Three consecutive no-progress rounds: relief after the first,
    # a forced-slice waiver on the third, and only when even the waiver
    # produces nothing does the coordinator declare deadlock.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, 10.0, False),   # stall 1 -> relief round follows
        (False, 0, 1, 10.0, False),   # stall 2 -> waiver round follows
        (False, 0, 1, 10.0, True),    # forced slice still yields nothing
    ])
    with pytest.raises(SimDeadlock) as exc_info:
        backend.run_workloads(SPECS, timeout=30.0)
    assert backend.protocol["rounds"] == 3
    assert backend.protocol["reliefs"] == 1
    assert backend.protocol["waivers"] == 1
    diag = exc_info.value.diagnostics
    assert diag["per_shard_live"] == [1]
    assert diag["per_shard_min_time"] == [10.0]


def test_relief_round_recovers(monkeypatch):
    # A stall that the unbounded-horizon relief round resolves: no
    # waiver is ever requested and the run completes normally.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, 10.0, False),   # stall 1 -> relief
        (True, 0, 1, 20.0, False),    # relief round makes progress
        (True, 0, 0, INF, False),     # drained: live hits zero
    ])
    results = backend.run_workloads(SPECS, timeout=30.0)
    assert results == ["stub-result"]
    assert backend.protocol["rounds"] == 3
    assert backend.protocol["reliefs"] == 1
    assert backend.protocol["waivers"] == 0
    assert backend.stats.completion_vtime == 42.0


def test_waiver_round_recovers(monkeypatch):
    # The relief round is not enough; the forced slice of the waiver
    # round is, and the ladder resets instead of deadlocking.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, 10.0, False),   # stall 1 -> relief
        (False, 0, 1, 10.0, False),   # stall 2 -> waiver
        (True, 0, 1, 30.0, True),     # forced slice unwedges the run
        (True, 0, 0, INF, False),     # drained
    ])
    results = backend.run_workloads(SPECS, timeout=30.0)
    assert results == ["stub-result"]
    assert backend.protocol["rounds"] == 4
    assert backend.protocol["reliefs"] == 1
    assert backend.protocol["waivers"] == 1


def test_infinite_min_time_is_instant_deadlock(monkeypatch):
    # A stalled round whose global minimum is already INF means no core
    # anywhere has a next event: the ladder is skipped entirely.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, INF, False),
    ])
    with pytest.raises(SimDeadlock):
        backend.run_workloads(SPECS, timeout=30.0)
    assert backend.protocol["rounds"] == 1
    assert backend.protocol["reliefs"] == 0
    assert backend.protocol["waivers"] == 0


def test_unbounded_sync_stall_is_final(monkeypatch):
    # The unbounded policy gates nothing, so there is no horizon to
    # relieve and no drift check to waive: its first stall is final.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, 50.0, False),
    ], sync="unbounded")
    with pytest.raises(SimDeadlock):
        backend.run_workloads(SPECS, timeout=30.0)
    assert backend.protocol["rounds"] == 1
    assert backend.protocol["reliefs"] == 0
    assert backend.protocol["waivers"] == 0


def test_script_mismatch_surfaces_as_worker_error(monkeypatch):
    # Self-check of the harness: a waive-flag disagreement inside the
    # stub must surface as a worker error, not hang or pass silently.
    backend = stub_backend(monkeypatch, [
        (False, 0, 1, 10.0, True),    # round 1 never waives
    ])
    with pytest.raises(SimError, match="AssertionError"):
        backend.run_workloads(SPECS, timeout=30.0)
