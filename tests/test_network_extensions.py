"""Tests for XY routing and hierarchical topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.noc import Noc
from repro.network.routing import RoutingTable, XYRouting
from repro.network.topology import hierarchical_mesh, mesh2d


class TestXYRouting:
    def test_route_shape(self):
        topo = mesh2d(4, 4)
        routing = XYRouting(topo, width=4)
        # 0 (0,0) -> 15 (3,3): X first (0,1,2,3) then Y (7,11,15).
        assert routing.path(0, 15) == (0, 1, 2, 3, 7, 11, 15)

    def test_self_path(self):
        routing = XYRouting(mesh2d(4, 4), width=4)
        assert routing.path(5, 5) == (5,)

    def test_minimal_length(self):
        topo = mesh2d(4, 4)
        xy = XYRouting(topo, width=4)
        shortest = RoutingTable(topo)
        for src in range(16):
            for dst in range(16):
                assert xy.hop_count(src, dst) == shortest.hop_count(src, dst)

    def test_deterministic_shape_differs_from_yx(self):
        routing = XYRouting(mesh2d(4, 4), width=4)
        # XY routes never move in Y before X is resolved.
        path = routing.path(0, 5)
        assert path == (0, 1, 5)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            XYRouting(mesh2d(4, 4), width=3)

    def test_works_with_noc(self):
        topo = mesh2d(4, 4)
        noc = Noc(topo, routing=XYRouting(topo, width=4))
        t = noc.delivery_time(0, 15, 64, 0.0)
        assert t > 0

    @given(src=st.integers(0, 15), dst=st.integers(0, 15))
    @settings(max_examples=60)
    def test_paths_valid(self, src, dst):
        topo = mesh2d(4, 4)
        routing = XYRouting(topo, width=4)
        path = routing.path(src, dst)
        assert path[0] == src and path[-1] == dst
        for u, v in zip(path, path[1:]):
            assert topo.has_link(u, v)


class TestHierarchicalMesh:
    def test_connected(self):
        topo = hierarchical_mesh(64, levels=2, branching=4)
        assert topo.is_connected()
        assert topo.n_cores == 64

    def test_latency_levels(self):
        topo = hierarchical_mesh(64, levels=2, branching=4,
                                 base_latency=0.5, level_latency_factor=4.0)
        latencies = sorted({spec.latency for _, _, spec in topo.edges()})
        assert latencies[0] == 0.5
        assert latencies[-1] > latencies[0]

    def test_single_level(self):
        topo = hierarchical_mesh(8, levels=1, branching=4)
        assert topo.is_connected()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            hierarchical_mesh(8, levels=0)
        with pytest.raises(ValueError):
            hierarchical_mesh(8, branching=1)
        with pytest.raises(ValueError):
            hierarchical_mesh(2, branching=4)

    def test_runs_a_workload(self):
        from repro.core.engine import Machine
        from repro.core.sync import SpatialSync
        from repro.memory.sharedmem import SharedMemoryModel
        from repro.runtime.runtime import Runtime
        from repro.workloads import get_workload

        topo = hierarchical_mesh(16, levels=2, branching=4)
        machine = Machine(topo, SpatialSync())
        machine.attach_memory(SharedMemoryModel())
        machine.attach_runtime(Runtime())
        workload = get_workload("octree", scale="tiny", seed=0)
        result = machine.run(workload.root)
        workload.verify(result["output"])

    @given(
        n=st.sampled_from([8, 16, 32, 64]),
        branching=st.sampled_from([2, 4, 8]),
        levels=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_connected(self, n, branching, levels):
        if n < branching:
            return
        topo = hierarchical_mesh(n, levels=levels, branching=branching)
        assert topo.is_connected()
