"""Property-based tests of the engine: random task programs must complete,
produce schedule-independent output, and never deadlock under any policy.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import build_machine, dist_mesh, shared_mesh
from repro.core.task import TaskGroup

# A program shape: tuples (children per level, compute cycles, mem accesses).
program_shapes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # children spawned
        st.integers(min_value=0, max_value=500),  # compute cycles
        st.integers(min_value=0, max_value=10),   # memory accesses
    ),
    min_size=1,
    max_size=5,
)


def build_program(shape, record):
    """A deterministic task tree driven by the shape table."""

    def work(ctx, level, index):
        children, cycles, accesses = shape[min(level, len(shape) - 1)]
        if cycles:
            yield ctx.compute(cycles=cycles)
        if accesses:
            yield ctx.mem(reads=accesses, obj=("prop", level))
        record.append((level, index))
        if level + 1 < len(shape):
            group = TaskGroup()
            for k in range(children):
                yield from ctx.spawn_or_inline(
                    work, level + 1, index * 4 + k, group=group
                )
            yield ctx.join(group)
        return (level, index)

    def root(ctx):
        result = yield from work(ctx, 0, 0)
        t = yield ctx.now()
        return {"result": result, "t": t}

    return root


@given(shape=program_shapes, n_cores=st.sampled_from([1, 4, 9, 16]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_complete(shape, n_cores):
    record = []
    machine = build_machine(shared_mesh(n_cores))
    result = machine.run(build_program(shape, record))
    assert result["result"] == (0, 0)
    assert machine.live_tasks == 0
    # Work conservation: the executed node multiset is shape-determined.
    expected_nodes = 1
    frontier = 1
    for level in range(1, len(shape)):
        frontier *= shape[level - 1][0]
        expected_nodes += frontier
    assert len(record) == expected_nodes


@given(shape=program_shapes)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_output_independent_of_policy(shape):
    results = []
    for policy in ("spatial", "conservative", "unbounded"):
        record = []
        cfg = dataclasses.replace(shared_mesh(8), sync=policy)
        machine = build_machine(cfg)
        machine.run(build_program(shape, record))
        results.append(sorted(record))
    assert results[0] == results[1] == results[2]


@given(
    shape=program_shapes,
    t_bound=st.sampled_from([25.0, 100.0, 1000.0]),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_drift_bound_terminates(shape, t_bound):
    record = []
    cfg = dataclasses.replace(shared_mesh(9), drift_bound=t_bound)
    machine = build_machine(cfg)
    machine.run(build_program(shape, record))
    assert machine.live_tasks == 0


@given(shape=program_shapes)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_machine_equivalent_output(shape):
    rec_shared, rec_dist = [], []
    build_machine(shared_mesh(8)).run(build_program(shape, rec_shared))
    build_machine(dist_mesh(8)).run(build_program(shape, rec_dist))
    assert sorted(rec_shared) == sorted(rec_dist)


@given(
    n_sends=st.integers(min_value=1, max_value=20),
    sizes=st.lists(st.integers(8, 4096), min_size=1, max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_messaging_program_delivers_everything(n_sends, sizes):
    """All user messages sent are eventually received, in per-source order."""
    received = []

    def root(ctx):
        for i in range(n_sends):
            size = sizes[i % len(sizes)]
            yield ctx.send(ctx.core_id, payload=i, size=float(size), tag="seq")
        for _ in range(n_sends):
            msg = yield ctx.recv(tag="seq")
            received.append(msg.payload)
        return True

    machine = build_machine(shared_mesh(4))
    assert machine.run(root)
    assert received == list(range(n_sends))
