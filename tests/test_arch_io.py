"""Tests for configuration and topology file I/O."""

import pytest

from repro.arch import ArchConfig, clustered_dist, shared_mesh
from repro.arch.io import (
    config_from_json,
    config_to_json,
    load_config,
    load_topology,
    save_config,
    save_topology,
)
from repro.core.errors import SimConfigError
from repro.network.link import LinkSpec
from repro.network.topology import Topology, clustered_mesh, mesh2d


class TestConfigJson:
    def test_roundtrip_default(self):
        cfg = ArchConfig()
        assert config_from_json(config_to_json(cfg)) == cfg

    def test_roundtrip_preset(self):
        cfg = clustered_dist(64, 8).with_drift(500.0)
        back = config_from_json(config_to_json(cfg))
        assert back == cfg
        assert back.drift_bound == 500.0
        assert back.n_clusters == 8

    def test_roundtrip_speed_factors(self):
        cfg = ArchConfig(n_cores=3, speed_factors=[1.0, 2.0, 0.5])
        back = config_from_json(config_to_json(cfg))
        assert list(back.speed_factors) == [1.0, 2.0, 0.5]

    def test_invalid_json(self):
        with pytest.raises(SimConfigError):
            config_from_json("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(SimConfigError):
            config_from_json("[1, 2, 3]")

    def test_unknown_keys_rejected(self):
        with pytest.raises(SimConfigError):
            config_from_json('{"n_cores": 4, "warp_drive": true}')

    def test_invalid_values_still_validated(self):
        with pytest.raises(SimConfigError):
            config_from_json('{"memory": "quantum"}')

    def test_file_roundtrip(self, tmp_path):
        cfg = shared_mesh(16)
        path = tmp_path / "arch.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_loaded_config_builds(self, tmp_path):
        from repro.arch import build_machine

        path = tmp_path / "arch.json"
        save_config(shared_mesh(4), path)
        machine = build_machine(load_config(path))
        assert machine.n_cores == 4


class TestTopologyFiles:
    def test_mesh_roundtrip(self, tmp_path):
        topo = mesh2d(3, 3)
        path = tmp_path / "mesh.adj"
        save_topology(topo, path)
        back = load_topology(path)
        assert back.n_cores == topo.n_cores
        assert back.n_edges == topo.n_edges
        for u in range(9):
            assert set(back.neighbors(u)) == set(topo.neighbors(u))

    def test_latencies_preserved(self, tmp_path):
        topo = clustered_mesh(16, 4, intra_latency=0.5, inter_latency=4.0)
        path = tmp_path / "clustered.adj"
        save_topology(topo, path)
        back = load_topology(path)
        latencies = {spec.latency for _, _, spec in back.edges()}
        assert latencies == {0.5, 4.0}

    def test_comment_header(self, tmp_path):
        path = tmp_path / "t.adj"
        save_topology(mesh2d(2, 2), path)
        assert path.read_text().startswith("#")

    def test_zero_latency_rejected_on_save(self, tmp_path):
        topo = Topology(2)
        topo.add_link(0, 1, LinkSpec(latency=0.0))
        with pytest.raises(SimConfigError):
            save_topology(topo, tmp_path / "z.adj")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.adj"
        path.write_text("# nothing\n")
        with pytest.raises(SimConfigError):
            load_topology(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 1\n1 0\n0 1\n")
        with pytest.raises(SimConfigError):
            load_topology(path)

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "myring.adj"
        save_topology(mesh2d(2, 1), path)
        assert load_topology(path).name == "myring"
