"""Tests for the execution tracer."""

import dataclasses

import pytest

from repro.arch import build_machine, shared_mesh
from repro.harness.trace import Tracer
from repro.workloads import get_workload

from conftest import fanout_root


def traced_run(n_cores=8, root=None, **cfg_overrides):
    cfg = shared_mesh(n_cores)
    if cfg_overrides:
        cfg = dataclasses.replace(cfg, **cfg_overrides)
    machine = build_machine(cfg)
    tracer = Tracer(machine)
    machine.run(root or fanout_root(8, child_cycles=500))
    return machine, tracer


class TestSpans:
    def test_spans_recorded(self):
        _, tracer = traced_run()
        assert tracer.spans
        # Root + 8 children, each at least one span.
        names = {s.task.split("#")[0] for s in tracer.spans}
        assert "child" in names
        assert "root" in names

    def test_span_times_ordered(self):
        _, tracer = traced_run()
        for span in tracer.spans:
            assert span.end >= span.start >= 0.0

    def test_spans_disjoint_under_conservative(self):
        """Virtual-time spans on one core may overlap across idle gaps
        (clocks restart after idleness), but in *recording order* each
        span starts at or after the previous one's start on that core,
        and under spatial sync the overlap stays bounded by the global
        drift."""
        machine, tracer = traced_run()
        by_core = {}
        for span in tracer.spans:
            by_core.setdefault(span.core, []).append(span)
        bound = machine.fabric.global_drift_bound() + 200
        for spans in by_core.values():
            for a, b in zip(spans, spans[1:]):
                # b was recorded after a finished (host order); any virtual
                # backjump is a clock restart bounded by the drift.
                assert a.end - b.start <= bound

    def test_workload_traceable(self):
        workload = get_workload("octree", scale="tiny", seed=0)
        machine = build_machine(shared_mesh(8))
        tracer = Tracer(machine)
        result = machine.run(workload.root)
        workload.verify(result["output"])
        assert len(tracer.spans) >= machine.stats.tasks_started


class TestStallsAndMessages:
    def test_messages_recorded(self):
        _, tracer = traced_run()
        kinds = {m.kind for m in tracer.messages}
        assert "probe" in kinds
        assert "task_spawn" in kinds

    def test_message_arrival_after_send(self):
        _, tracer = traced_run()
        for msg in tracer.messages:
            if msg.src != msg.dst:
                assert msg.arrival > msg.send_time

    def test_messages_optional(self):
        machine = build_machine(shared_mesh(4))
        tracer = Tracer(machine, trace_messages=False)
        machine.run(fanout_root(4))
        assert not tracer.messages
        assert tracer.spans

    def test_stalls_recorded_under_tight_drift(self):
        from conftest import recursive_root

        _, tracer = traced_run(n_cores=16, root=recursive_root(6),
                               drift_bound=50.0)
        assert tracer.stalls
        for stall in tracer.stalls:
            assert stall["vtime"] > stall["floor"]


class TestAnalysis:
    def test_utilization_bounds(self):
        machine, tracer = traced_run()
        util = tracer.core_utilization()
        assert set(util) == set(range(machine.n_cores))
        for value in util.values():
            assert 0.0 <= value <= 1.0
        assert util[0] > 0  # root core worked

    def test_export_structure(self):
        _, tracer = traced_run()
        data = tracer.export()
        assert set(data) == {"spans", "stalls", "messages"}
        assert all("core" in s for s in data["spans"])

    def test_gantt_renders(self):
        machine, tracer = traced_run()
        chart = tracer.render_gantt(width=40)
        assert "core 0" in chart
        assert "#" in chart
        lines = [line for line in chart.splitlines() if "|" in line]
        assert all(len(line.split("|")[1]) == 40 for line in lines)

    def test_gantt_empty(self):
        machine = build_machine(shared_mesh(2))
        tracer = Tracer(machine)
        assert "no spans" in tracer.render_gantt()

    def test_gantt_core_filter(self):
        _, tracer = traced_run()
        chart = tracer.render_gantt(cores=[0])
        assert "core 0" in chart
        assert "core 1" not in chart
