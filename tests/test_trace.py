"""Tests for the execution tracer."""

import dataclasses

import pytest

from repro.arch import build_machine, shared_mesh
from repro.harness.trace import (Tracer, _canonical_task, merge_traces,
                                 trace_digest)
from repro.workloads import get_workload

from conftest import fanout_root


def traced_run(n_cores=8, root=None, **cfg_overrides):
    cfg = shared_mesh(n_cores)
    if cfg_overrides:
        cfg = dataclasses.replace(cfg, **cfg_overrides)
    machine = build_machine(cfg)
    tracer = Tracer(machine)
    machine.run(root or fanout_root(8, child_cycles=500))
    return machine, tracer


class TestSpans:
    def test_spans_recorded(self):
        _, tracer = traced_run()
        assert tracer.spans
        # Root + 8 children, each at least one span.
        names = {s.task.split("#")[0] for s in tracer.spans}
        assert "child" in names
        assert "root" in names

    def test_span_times_ordered(self):
        _, tracer = traced_run()
        for span in tracer.spans:
            assert span.end >= span.start >= 0.0

    def test_spans_disjoint_under_conservative(self):
        """Virtual-time spans on one core may overlap across idle gaps
        (clocks restart after idleness), but in *recording order* each
        span starts at or after the previous one's start on that core,
        and under spatial sync the overlap stays bounded by the global
        drift."""
        machine, tracer = traced_run()
        by_core = {}
        for span in tracer.spans:
            by_core.setdefault(span.core, []).append(span)
        bound = machine.fabric.global_drift_bound() + 200
        for spans in by_core.values():
            for a, b in zip(spans, spans[1:]):
                # b was recorded after a finished (host order); any virtual
                # backjump is a clock restart bounded by the drift.
                assert a.end - b.start <= bound

    def test_workload_traceable(self):
        workload = get_workload("octree", scale="tiny", seed=0)
        machine = build_machine(shared_mesh(8))
        tracer = Tracer(machine)
        result = machine.run(workload.root)
        workload.verify(result["output"])
        assert len(tracer.spans) >= machine.stats.tasks_started


class TestStallsAndMessages:
    def test_messages_recorded(self):
        _, tracer = traced_run()
        kinds = {m.kind for m in tracer.messages}
        assert "probe" in kinds
        assert "task_spawn" in kinds

    def test_message_arrival_after_send(self):
        _, tracer = traced_run()
        for msg in tracer.messages:
            if msg.src != msg.dst:
                assert msg.arrival > msg.send_time

    def test_messages_optional(self):
        machine = build_machine(shared_mesh(4))
        tracer = Tracer(machine, trace_messages=False)
        machine.run(fanout_root(4))
        assert not tracer.messages
        assert tracer.spans

    def test_stalls_recorded_under_tight_drift(self):
        from conftest import recursive_root

        _, tracer = traced_run(n_cores=16, root=recursive_root(6),
                               drift_bound=50.0)
        assert tracer.stalls
        for stall in tracer.stalls:
            assert stall["vtime"] > stall["floor"]


class TestAnalysis:
    def test_utilization_bounds(self):
        machine, tracer = traced_run()
        util = tracer.core_utilization()
        assert set(util) == set(range(machine.n_cores))
        for value in util.values():
            assert 0.0 <= value <= 1.0
        assert util[0] > 0  # root core worked

    def test_export_structure(self):
        _, tracer = traced_run()
        data = tracer.export()
        assert set(data) == {"spans", "stalls", "messages"}
        assert all("core" in s for s in data["spans"])

    def test_gantt_renders(self):
        machine, tracer = traced_run()
        chart = tracer.render_gantt(width=40)
        assert "core 0" in chart
        assert "#" in chart
        lines = [line for line in chart.splitlines() if "|" in line]
        assert all(len(line.split("|")[1]) == 40 for line in lines)

    def test_gantt_empty(self):
        machine = build_machine(shared_mesh(2))
        tracer = Tracer(machine)
        assert "no spans" in tracer.render_gantt()

    def test_gantt_core_filter(self):
        _, tracer = traced_run()
        chart = tracer.render_gantt(cores=[0])
        assert "core 0" in chart
        assert "core 1" not in chart


class TestOpenSpanFlush:
    """Regression: tasks still executing when a run stops (vtime horizon
    or end-of-run) used to vanish from ``export()`` and
    ``core_utilization()`` because their spans never closed."""

    @staticmethod
    def chunked_root(chunks=10000, cycles=50.0):
        # Many small compute actions: the slice budget interrupts the
        # task *between* actions, so when the vtime horizon stops the
        # run the task is still current and its span still open.  (A
        # single long compute would be fused into one action and finish
        # within one slice, closing the span.)
        def root(ctx):
            for _ in range(chunks):
                yield ctx.compute(cycles=cycles)
            return "done"

        return root

    def stopped_run(self, **kwargs):
        machine = build_machine(shared_mesh(8))
        tracer = Tracer(machine)
        machine.run(self.chunked_root(), stop_at_vtime=5000.0, **kwargs)
        return machine, tracer

    def test_premise_spans_are_still_open(self):
        _, tracer = self.stopped_run()
        assert tracer._open, (
            "the stop_at_vtime horizon was meant to interrupt running "
            "children; if this fires the scenario needs a longer child")

    def test_export_includes_open_spans(self):
        _, tracer = self.stopped_run()
        open_cores = set(tracer._open)
        exported = tracer.export()
        flushed = [s for s in exported["spans"]
                   if s["core"] in open_cores]
        assert flushed
        for span in exported["spans"]:
            assert span["end"] >= span["start"]

    def test_utilization_sees_open_spans(self):
        machine = build_machine(shared_mesh(4))
        tracer = Tracer(machine)
        machine.run(self.chunked_root(), stop_at_vtime=5000.0)
        # The only span in the whole run is still open; before the fix
        # utilization reported an all-idle machine.
        assert tracer._open
        assert not tracer.spans
        assert tracer.core_utilization()[0] > 0.0

    def test_export_is_repeatable_and_non_mutating(self):
        _, tracer = self.stopped_run()
        n_open = len(tracer._open)
        first = tracer.export()
        second = tracer.export()
        assert first == second
        assert len(tracer._open) == n_open
        assert all(s.end >= s.start for s in tracer.spans)


class TestCanonicalDigest:
    def run_trace(self, seed=0):
        machine = build_machine(shared_mesh(8))
        tracer = Tracer(machine)
        workload = get_workload("quicksort", scale="tiny", seed=seed)
        machine.run(workload.root)
        return tracer.export()

    def test_canonical_task_strips_tid(self):
        assert _canonical_task("child#17") == "child"
        assert _canonical_task("child") == "child"
        assert _canonical_task("weird#name") == "weird#name"

    def test_digest_stable_across_identical_runs(self):
        assert trace_digest(self.run_trace()) == \
            trace_digest(self.run_trace())

    def test_digest_sensitive_to_events(self):
        trace = self.run_trace()
        baseline = trace_digest(trace)
        trace["spans"][0]["end"] += 1.0
        assert trace_digest(trace) != baseline

    def test_merge_is_order_independent_under_digest(self):
        a, b = self.run_trace(seed=0), self.run_trace(seed=1)
        assert trace_digest(merge_traces([a, b])) == \
            trace_digest(merge_traces([b, a]))
