"""Unit tests for messages, tasks, contexts, stats and engine edge paths."""

import dataclasses

import pytest

from repro.arch import build_machine, dist_mesh, shared_mesh
from repro.core.actions import (
    CellAccess,
    Compute,
    MemAccess,
    SendMsg,
    TrySpawn,
)
from repro.core.errors import SimError
from repro.core.messages import DEFAULT_SIZES, Message, MsgKind
from repro.core.stats import SimStats
from repro.core.task import Task, TaskContext, TaskGroup, TaskState

from conftest import fanout_root


class TestMessages:
    def test_every_kind_has_a_size(self):
        for kind in MsgKind:
            assert kind in DEFAULT_SIZES
            assert DEFAULT_SIZES[kind] > 0

    def test_sequence_numbers_monotone(self):
        a = Message(MsgKind.USER, 0, 1, 0.0, 8)
        b = Message(MsgKind.USER, 0, 1, 0.0, 8)
        assert b.seq > a.seq

    def test_repr(self):
        msg = Message(MsgKind.PROBE, 2, 3, 10.0, 16)
        assert "probe" in repr(msg)
        assert "2->3" in repr(msg)


class TestActions:
    def test_compute_validation(self):
        with pytest.raises(ValueError):
            Compute(cycles=-1)
        with pytest.raises(ValueError):
            Compute(repeat=-1)

    def test_mem_validation(self):
        with pytest.raises(ValueError):
            MemAccess(reads=-1)
        with pytest.raises(ValueError):
            MemAccess(l1_hit_fraction=1.5)

    def test_cell_mode_validation(self):
        with pytest.raises(ValueError):
            CellAccess(cell=object(), mode="x")
        for mode in ("r", "w", "rw"):
            CellAccess(cell=object(), mode=mode)

    def test_actions_frozen(self):
        action = Compute(cycles=5)
        with pytest.raises(Exception):
            action.cycles = 10


class TestTaskModel:
    def test_task_ids_unique(self):
        def fn(ctx):
            yield

        tasks = [Task(fn) for _ in range(10)]
        assert len({t.tid for t in tasks}) == 10

    def test_task_initial_state(self):
        def fn(ctx):
            yield

        task = Task(fn, birth_time=5.0)
        assert task.state == TaskState.NEW
        assert task.birth_time == 5.0
        assert task.ready_time == 5.0
        assert task.gen is None

    def test_group_names(self):
        named = TaskGroup("mine")
        anon = TaskGroup()
        assert named.name == "mine"
        assert anon.name.startswith("group")

    def test_context_action_factories(self, mesh8):
        captured = {}

        def root(ctx):
            captured["n_cores"] = ctx.n_cores
            assert isinstance(ctx.compute(cycles=1), Compute)
            assert isinstance(ctx.mem(reads=1), MemAccess)
            assert isinstance(ctx.send(1, payload="x"), SendMsg)
            spawn = ctx.try_spawn(root, 1, 2, group=None)
            assert isinstance(spawn, TrySpawn)
            assert spawn.args == (1, 2)
            yield ctx.compute(cycles=1)
            return True

        assert mesh8.run(root)
        assert captured["n_cores"] == 8

    def test_yield_cpu_is_noop(self, single):
        def root(ctx):
            t0 = yield ctx.now()
            yield ctx.yield_cpu()
            t1 = yield ctx.now()
            return t1 - t0

        assert single.run(root) == 0.0


class TestStats:
    def test_as_dict_contains_counters(self, mesh8):
        mesh8.run(fanout_root(6))
        flat = mesh8.stats.as_dict()
        assert flat["tasks_started"] == mesh8.stats.tasks_started
        assert flat["total_messages"] == mesh8.stats.total_messages
        assert "msgs_probe" in flat
        assert "noc_messages" in flat

    def test_fresh_stats_empty(self):
        stats = SimStats(n_cores=4)
        assert stats.total_messages == 0
        assert stats.as_dict()["n_cores"] == 4


class TestEngineEdgePaths:
    def test_unknown_action_rejected(self, mesh8):
        def root(ctx):
            yield "not an action"

        with pytest.raises(SimError):
            mesh8.run(root)

    def test_run_on_non_default_core(self):
        machine = build_machine(shared_mesh(8))
        placements = []

        def root(ctx):
            placements.append(ctx.core_id)
            yield ctx.compute(cycles=1)

        machine.run(root, root_core=5)
        assert placements == [5]

    def test_root_args_forwarded(self, mesh8):
        def root(ctx, a, b):
            yield ctx.compute(cycles=1)
            return a + b

        assert mesh8.run(root, 2, 3) == 5

    def test_service_clock_monotone(self, mesh8):
        mesh8.run(fanout_root(10))
        for core in mesh8.cores:
            assert core.service_clock >= 0.0


class TestDistMemEdgePaths:
    def test_forwarded_request_chases_moved_cell(self):
        """A DATA_REQUEST sent to a stale owner is forwarded onward."""
        machine = build_machine(dist_mesh(8))
        memory = machine.memory

        def mover(ctx, cell):
            yield ctx.cell(cell, "rw")  # pull the cell here

        def root(ctx):
            cell = memory.new_cell(data=0, home=7)
            group = TaskGroup()
            # Two tasks race for the same remote cell: one request will
            # find the owner moved and must be forwarded.
            yield from ctx.spawn_or_inline(mover, cell, group=group)
            yield ctx.cell(cell, "rw")
            yield ctx.join(group)
            return cell.moves

        moves = machine.run(root)
        assert moves >= 2

    def test_release_cell_services_pending(self):
        machine = build_machine(dist_mesh(4))
        memory = machine.memory
        cell = memory.new_cell(data=1, home=0)

        class _FakeTask:
            core = 1
            state = None

        from repro.core.task import Task, TaskState

        def dummy(ctx):
            yield

        task = Task(dummy)
        task.core = 1
        task.state = TaskState.SUSPENDED
        cell.locked_by = object()
        cell.pending.append((task, 1))
        machine.fabric.set_active(0, 10.0)
        memory.release_cell(machine.cores[0], cell)
        assert cell.owner == 1
        assert not cell.pending


class TestSharedMemCells:
    def test_mode_variants_cost_same_base(self):
        machine = build_machine(shared_mesh(2))
        memory = machine.memory
        cell = memory.new_cell(data=0)
        costs = {}

        class _Core:
            cid = 0
            speed_factor = 1.0

        for mode in ("r", "w", "rw"):
            costs[mode] = memory.cell_access(
                _Core(), None, CellAccess(cell=cell, mode=mode))
        assert costs["r"] == costs["w"] == costs["rw"]
