"""Unit tests for synchronization policies and the min tracker."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import build_machine, shared_mesh
from repro.core.sync import (
    ActiveMinTracker,
    BoundedSlackSync,
    ConservativeSync,
    GlobalQuantumSync,
    LaxP2PSync,
    SpatialSync,
    UnboundedSync,
    make_policy,
)


class TestActiveMinTracker:
    def test_empty_is_inf(self):
        assert math.isinf(ActiveMinTracker(4).min())

    def test_single_entry(self):
        tracker = ActiveMinTracker(4)
        tracker.update(0, 10.0)
        assert tracker.min() == 10.0

    def test_min_of_many(self):
        tracker = ActiveMinTracker(4)
        tracker.update(0, 10.0)
        tracker.update(1, 5.0)
        tracker.update(2, 20.0)
        assert tracker.min() == 5.0

    def test_update_supersedes(self):
        tracker = ActiveMinTracker(4)
        tracker.update(0, 5.0)
        tracker.update(0, 50.0)
        assert tracker.min() == 50.0

    def test_remove(self):
        tracker = ActiveMinTracker(4)
        tracker.update(0, 5.0)
        tracker.update(1, 9.0)
        tracker.remove(0)
        assert tracker.min() == 9.0

    def test_remove_all(self):
        tracker = ActiveMinTracker(2)
        tracker.update(0, 5.0)
        tracker.remove(0)
        assert math.isinf(tracker.min())

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["update", "remove"]),
                st.integers(0, 4),
                st.floats(min_value=0, max_value=1000),
            ),
            min_size=1, max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_matches_naive_min(self, ops):
        tracker = ActiveMinTracker(5)
        naive = {}
        for op, cid, value in ops:
            if op == "update":
                tracker.update(cid, value)
                naive[cid] = value
            else:
                tracker.remove(cid)
                naive.pop(cid, None)
            expected = min(naive.values()) if naive else math.inf
            assert tracker.min() == expected


class TestPolicyFactory:
    def test_known_policies(self):
        for name, cls in [
            ("spatial", SpatialSync),
            ("conservative", ConservativeSync),
            ("quantum", GlobalQuantumSync),
            ("bounded_slack", BoundedSlackSync),
            ("laxp2p", LaxP2PSync),
            ("unbounded", UnboundedSync),
        ]:
            assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nonsense")

    def test_kwargs_forwarded(self):
        policy = make_policy("quantum", quantum=42.0)
        assert policy.quantum == 42.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GlobalQuantumSync(quantum=0)
        with pytest.raises(ValueError):
            BoundedSlackSync(slack=-1)
        with pytest.raises(ValueError):
            LaxP2PSync(slack=0)


class TestSpatialPolicyOnMachine:
    def _machine(self, n=4, T=100.0):
        cfg = shared_mesh(n)
        cfg = cfg.with_drift(T)
        machine = build_machine(cfg)
        machine.policy.attach(machine)
        return machine

    def test_inactive_core_may_run(self):
        machine = self._machine()
        assert machine.policy.may_run(machine.cores[0])

    def test_stall_and_waiver(self):
        machine = self._machine(n=2, T=50.0)
        fabric = machine.fabric
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 100.0)
        core0 = machine.cores[0]
        assert not machine.policy.may_run(core0)
        core0.locks_held = 1
        assert machine.policy.may_run(core0)
        assert machine.stats.lock_waiver_runs == 1

    def test_reception_exempt_flags(self):
        # Only spatial sync needs reception exemption: it is the only
        # policy whose drift floor depends on another core processing a
        # message (the spawn-birth ledger).
        assert SpatialSync.reception_exempt
        assert not GlobalQuantumSync.reception_exempt
        assert not BoundedSlackSync.reception_exempt
        assert not LaxP2PSync.reception_exempt
        assert not ConservativeSync.reception_exempt
        assert not UnboundedSync.reception_exempt
        assert ConservativeSync.ordered_inbox
        assert not SpatialSync.ordered_inbox


class TestQuantumPolicy:
    def test_epoch_advance(self):
        machine = build_machine(shared_mesh(2))
        policy = GlobalQuantumSync(quantum=10.0)
        policy.attach(machine)
        machine.fabric.set_active(0, 0.0)
        machine.cores[0].current = object()  # busy core: vtime is its event
        policy.on_activation(machine.cores[0])
        machine.fabric.advance(0, 15.0)
        policy.on_advance(machine.cores[0])
        assert not policy.may_run(machine.cores[0])  # beyond epoch+quantum
        assert policy.on_no_runnable()  # epoch jumps to 15
        assert policy.may_run(machine.cores[0])

    def test_no_advance_possible(self):
        machine = build_machine(shared_mesh(2))
        policy = GlobalQuantumSync(quantum=10.0)
        policy.attach(machine)
        assert not policy.on_no_runnable()  # nothing active


class TestBoundedSlack:
    def test_slack_enforced(self):
        machine = build_machine(shared_mesh(2))
        policy = BoundedSlackSync(slack=10.0)
        policy.attach(machine)
        fabric = machine.fabric
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        machine.cores[0].current = object()  # busy cores
        machine.cores[1].current = object()
        policy.on_activation(machine.cores[0])
        policy.on_activation(machine.cores[1])
        fabric.advance(0, 15.0)
        policy.on_advance(machine.cores[0])
        assert not policy.may_run(machine.cores[0])  # 15 > 0 + 10
        assert policy.may_run(machine.cores[1])


class TestUnbounded:
    def test_always_runs(self):
        machine = build_machine(shared_mesh(2))
        policy = UnboundedSync()
        policy.attach(machine)
        machine.fabric.set_active(0, 0.0)
        machine.fabric.advance(0, 1e9)
        assert policy.may_run(machine.cores[0])
