"""Unit and property tests for interconnect topologies."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.link import LinkSpec
from repro.network.topology import (
    Topology,
    clustered_mesh,
    crossbar,
    from_adjacency,
    mesh2d,
    ring,
    square_mesh,
    to_networkx,
    torus2d,
)


class TestTopologyBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology(0)

    def test_self_link_rejected(self):
        topo = Topology(2)
        with pytest.raises(ValueError):
            topo.add_link(0, 0)

    def test_out_of_range_rejected(self):
        topo = Topology(2)
        with pytest.raises(ValueError):
            topo.add_link(0, 2)

    def test_links_are_symmetric(self):
        topo = Topology(3)
        topo.add_link(0, 1)
        assert topo.has_link(1, 0)
        assert 0 in topo.neighbors(1)
        assert 1 in topo.neighbors(0)

    def test_link_spec_shared_between_directions(self):
        topo = Topology(2)
        spec = LinkSpec(latency=3.0)
        topo.add_link(0, 1, spec)
        assert topo.link_spec(0, 1) is topo.link_spec(1, 0)

    def test_missing_link_raises(self):
        topo = Topology(3)
        with pytest.raises(KeyError):
            topo.link_spec(0, 2)

    def test_edge_iteration_counts(self):
        topo = ring(5)
        assert topo.n_edges == 5
        assert len(list(topo.edges())) == 5
        assert len(list(topo.directed_edges())) == 10


class TestMesh:
    def test_mesh_2x2(self):
        topo = mesh2d(2, 2)
        assert topo.n_cores == 4
        assert topo.n_edges == 4

    def test_mesh_edge_count(self):
        w, h = 4, 3
        topo = mesh2d(w, h)
        assert topo.n_edges == w * (h - 1) + h * (w - 1)

    def test_mesh_interior_degree(self):
        topo = mesh2d(4, 4)
        assert topo.degree(5) == 4  # interior node
        assert topo.degree(0) == 2  # corner

    def test_mesh_diameter(self):
        assert mesh2d(4, 4).diameter() == 6  # (w-1)+(h-1)

    def test_square_mesh_paper_sizes(self):
        for n in (8, 64, 256, 1024):
            topo = square_mesh(n)
            assert topo.n_cores == n
            assert topo.is_connected()

    def test_square_mesh_8_is_4x2(self):
        topo = square_mesh(8)
        assert topo.diameter() == 4  # 3 + 1

    def test_single_core_mesh(self):
        topo = square_mesh(1)
        assert topo.n_cores == 1
        assert topo.neighbors(0) == ()


class TestOtherTopologies:
    def test_ring_diameter(self):
        assert ring(8).diameter() == 4

    def test_torus_degree_uniform(self):
        topo = torus2d(4, 4)
        assert all(topo.degree(u) == 4 for u in range(16))

    def test_torus_beats_mesh_diameter(self):
        assert torus2d(6, 6).diameter() < mesh2d(6, 6).diameter()

    def test_crossbar_diameter_one(self):
        assert crossbar(8).diameter() == 1

    def test_crossbar_edge_count(self):
        assert crossbar(6).n_edges == 15


class TestClustered:
    def test_paper_parameters(self):
        topo = clustered_mesh(64, 4)
        assert topo.n_cores == 64
        assert topo.is_connected()

    def test_intra_and_inter_latencies(self):
        topo = clustered_mesh(16, 4, intra_latency=0.5, inter_latency=4.0)
        latencies = {spec.latency for _, _, spec in topo.edges()}
        assert latencies == {0.5, 4.0}

    def test_invalid_cluster_split_rejected(self):
        with pytest.raises(ValueError):
            clustered_mesh(10, 4)

    def test_eight_clusters(self):
        topo = clustered_mesh(64, 8)
        assert topo.is_connected()
        assert topo.n_cores == 64


class TestAdjacency:
    def test_roundtrip(self):
        topo = mesh2d(3, 3)
        rebuilt = from_adjacency(topo.adjacency_matrix().astype(float))
        assert rebuilt.n_cores == topo.n_cores
        assert rebuilt.n_edges == topo.n_edges
        for u in range(topo.n_cores):
            assert set(rebuilt.neighbors(u)) == set(topo.neighbors(u))

    def test_latency_entries(self):
        mat = [[0, 2.5], [2.5, 0]]
        topo = from_adjacency(mat)
        assert topo.link_spec(0, 1).latency == 2.5

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            from_adjacency([[0, 1], [0, 0]])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            from_adjacency([[0, 1, 0], [1, 0, 1]])

    def test_latency_matrix(self):
        topo = ring(3, latency=2.0)
        mat = topo.latency_matrix()
        assert mat[0, 1] == 2.0
        assert mat[0, 0] == 0.0


class TestGraphAlgorithms:
    def test_bfs_distances_line(self):
        topo = mesh2d(5, 1)
        dist = topo.bfs_distances(0)
        assert list(dist) == [0, 1, 2, 3, 4]

    def test_disconnected_detected(self):
        topo = Topology(4)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert not topo.is_connected()
        with pytest.raises(ValueError):
            topo.diameter()

    def test_networkx_export(self):
        topo = mesh2d(3, 3)
        graph = to_networkx(topo)
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == topo.n_edges


@given(
    width=st.integers(min_value=1, max_value=8),
    height=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40)
def test_mesh_always_connected(width, height):
    topo = mesh2d(width, height)
    assert topo.is_connected()
    if width * height > 1:
        assert topo.diameter() == (width - 1) + (height - 1)


@given(n=st.integers(min_value=2, max_value=64))
@settings(max_examples=40)
def test_square_mesh_connected_any_size(n):
    topo = square_mesh(n)
    assert topo.n_cores == n
    assert topo.is_connected()


@given(n=st.integers(min_value=1, max_value=40))
@settings(max_examples=30)
def test_ring_edge_and_degree_invariants(n):
    topo = ring(n)
    if n == 1:
        assert topo.n_edges == 0
        return
    assert all(topo.degree(u) == 2 for u in range(n)) or n == 2
    assert topo.is_connected()


@given(
    n=st.integers(min_value=2, max_value=20),
    extra=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=30
    ),
)
@settings(max_examples=40)
def test_adjacency_roundtrip_random(n, extra):
    topo = ring(n)
    for u, v in extra:
        if u < n and v < n and u != v:
            topo.add_link(u, v)
    mat = topo.adjacency_matrix()
    assert (mat == mat.T).all()
    rebuilt = from_adjacency(mat.astype(float))
    assert rebuilt.n_edges == topo.n_edges
