"""Unit tests for NoC message timing (including per-source FIFO)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.noc import Noc
from repro.network.topology import clustered_mesh, mesh2d, ring


class TestDeliveryTime:
    def test_local_message_free(self):
        noc = Noc(mesh2d(2, 2))
        assert noc.delivery_time(0, 0, 64, 10.0) == 10.0
        assert noc.stats.messages == 0

    def test_neighbor_delivery(self):
        noc = Noc(mesh2d(2, 2), router_penalty=1.0, chunk_bytes=64)
        t = noc.delivery_time(0, 1, 64, 0.0)
        # link latency 1 + serialization 64/128 + router penalty 1
        assert t == pytest.approx(1.0 + 0.5 + 1.0)

    def test_distance_scales_latency(self):
        noc = Noc(mesh2d(4, 1))
        near = noc.delivery_time(0, 1, 64, 0.0)
        far = noc.delivery_time(0, 3, 64, 0.0)
        assert far > near

    def test_negative_size_rejected(self):
        noc = Noc(mesh2d(2, 2))
        with pytest.raises(ValueError):
            noc.delivery_time(0, 1, -1, 0.0)

    def test_stats_accumulate(self):
        noc = Noc(mesh2d(2, 2))
        noc.delivery_time(0, 1, 64, 0.0)
        noc.delivery_time(0, 3, 128, 0.0)
        assert noc.stats.messages == 2
        assert noc.stats.total_bytes == 192
        assert noc.stats.total_hops == 3

    def test_contention_accumulates(self):
        noc = Noc(mesh2d(2, 1), chunk_bytes=64)
        # Saturate the single link with big messages at t=0.
        first = noc.delivery_time(0, 1, 12_800, 0.0)
        second = noc.delivery_time(0, 1, 64, 0.0)
        assert noc.stats.contention_cycles > 0
        assert second > 0

    def test_no_contention_mode(self):
        noc = Noc(mesh2d(2, 1), model_contention=False)
        a = noc.delivery_time(0, 1, 64, 0.0)
        b = noc.delivery_time(0, 1, 64, 0.0)
        # FIFO still enforces ordering but both see identical raw latency.
        assert b >= a
        assert noc.stats.contention_cycles == 0

    def test_min_latency(self):
        noc = Noc(mesh2d(4, 1), router_penalty=1.0)
        assert noc.min_latency(0, 0) == 0.0
        assert noc.min_latency(0, 3) == pytest.approx(3 * 1.0 + 3 * 1.0)

    def test_reset(self):
        noc = Noc(mesh2d(2, 2))
        noc.delivery_time(0, 1, 64, 0.0)
        noc.reset()
        assert noc.stats.messages == 0
        assert not noc._fifo_floor


class TestPerSourceFifo:
    def test_same_stream_never_regresses(self):
        """Messages of one (src, dst) stream arrive in send order."""
        noc = Noc(mesh2d(4, 4))
        # A big slow message, then a small fast one: the small one must not
        # overtake (paper, Section II-B).
        t1 = noc.delivery_time(0, 15, 100_000, 0.0)
        t2 = noc.delivery_time(0, 15, 8, 0.1)
        assert t2 >= t1

    def test_different_sources_may_reorder(self):
        noc = Noc(mesh2d(4, 4))
        t1 = noc.delivery_time(0, 5, 100_000, 0.0)
        t2 = noc.delivery_time(6, 5, 8, 0.1)
        assert t2 < t1  # cross-source overtaking is allowed

    @given(
        sends=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000),  # depart time
                st.floats(min_value=1, max_value=5000),  # size
            ),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_fifo_property_random_streams(self, sends):
        noc = Noc(mesh2d(3, 3))
        # Sort departs: a single sequential sender has monotone send times.
        sends = sorted(sends)
        arrivals = [noc.delivery_time(0, 8, size, t) for t, size in sends]
        assert arrivals == sorted(arrivals)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_arrival_after_departure(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        noc = Noc(ring(8))
        for _ in range(20):
            src, dst = int(rng.integers(8)), int(rng.integers(8))
            depart = float(rng.random() * 100)
            arrival = noc.delivery_time(src, dst, 64, depart)
            if src != dst:
                assert arrival > depart
            else:
                assert arrival == depart


class TestLinkUtilization:
    def test_hotspot_visible(self):
        noc = Noc(mesh2d(4, 1))
        for _ in range(10):
            noc.delivery_time(0, 3, 64, 0.0)
        utilization = noc.link_utilization()
        assert utilization[(0, 1)] == 640
        assert utilization[(1, 2)] == 640
