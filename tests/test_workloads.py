"""Output-correctness tests for all six dwarf benchmarks.

Every benchmark's simulated output is checked against an independent
reference (sorted(), union-find, networkx, brute force, scipy) on several
architectures and seeds.
"""

import math

import numpy as np
import pytest

from repro.arch import build_machine, dist_mesh, shared_mesh, shared_mesh_validation
from repro.workloads import BENCHMARKS, get_workload
from repro.workloads.quicksort import _partition
from repro.workloads.barnes_hut import build_tree, _accel_on
from repro.workloads.generators import random_bodies


def run_on(name, cfg, scale="tiny", seed=0):
    workload = get_workload(name, scale=scale, seed=seed, memory=cfg.memory)
    machine = build_machine(cfg)
    result = machine.run(workload.root)
    workload.verify(result["output"])
    return result, machine, workload


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("n_cores", [1, 4, 16])
def test_output_correct_shared(name, n_cores):
    run_on(name, shared_mesh(n_cores))


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("n_cores", [1, 9])
def test_output_correct_distributed(name, n_cores):
    run_on(name, dist_mesh(n_cores))


@pytest.mark.parametrize("name", BENCHMARKS)
def test_output_correct_with_coherence(name):
    run_on(name, shared_mesh_validation(8))


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_output_correct_across_seeds(name, seed):
    run_on(name, shared_mesh(8), seed=seed)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_native_matches_reference(name):
    """The Fig.-7 native closure satisfies the same verifier."""
    workload = get_workload(name, scale="tiny", seed=0, memory="shared")
    workload.verify(workload.native())


@pytest.mark.parametrize("name", BENCHMARKS)
def test_work_vtime_reported(name):
    result, machine, _ = run_on(name, shared_mesh(4))
    assert 0 < result["work_vtime"] <= machine.completion_time + 1e-9


class TestQuicksortDetails:
    def test_partition_splits_strictly(self):
        import random

        rnd = random.Random(7)
        for _ in range(500):
            n = rnd.randint(2, 60)
            arr = [rnd.randint(0, 15) for _ in range(n)]
            p = _partition(arr, 0, n)
            assert 0 < p < n
            assert max(arr[:p]) <= min(arr[p:])

    def test_partition_subrange(self):
        arr = [99, 5, 3, 8, 1, 99]
        p = _partition(arr, 1, 5)
        assert 1 < p < 5
        assert max(arr[1:p]) <= min(arr[p:5])

    def test_distributed_builds_sorted_tree(self):
        result, _, _ = run_on("quicksort", dist_mesh(9), scale="tiny")
        output = result["output"]
        assert output == sorted(output)

    def test_duplicate_heavy_input(self):
        workload = get_workload("quicksort", scale="tiny", seed=0, n=150)
        # Overwrite with a duplicate-heavy array via a fresh instance.
        from repro.workloads.quicksort import make_shared

        w = make_shared(n=150, seed=3)
        machine = build_machine(shared_mesh(4))
        result = machine.run(w.root)
        w.verify(result["output"])


class TestDijkstraDetails:
    def test_unreachable_nodes_inf(self):
        result, _, _ = run_on("dijkstra", shared_mesh(4), scale="tiny", seed=5)
        # Random sparse graphs have unreachable nodes; they must be inf.
        assert any(math.isinf(d) for d in result["output"]) or all(
            not math.isinf(d) for d in result["output"]
        )

    def test_source_distance_zero(self):
        result, _, _ = run_on("dijkstra", shared_mesh(4), scale="tiny")
        assert result["output"][0] == 0


class TestBarnesHutDetails:
    def test_tree_masses_sum(self):
        bodies = random_bodies(40, seed=1)
        tree = build_tree(bodies)
        assert tree.mass == pytest.approx(sum(b.mass for b in bodies))

    def test_direct_vs_tree_agree_loosely(self):
        """With theta=0.5 the tree force approximates the O(n^2) force."""
        bodies = random_bodies(30, seed=2)
        tree = build_tree(bodies)
        for idx in (0, 7, 29):
            ax, ay, az = _accel_on(bodies, idx, tree)
            # Direct sum.
            bx = by = bz = 0.0
            b = bodies[idx]
            for j, other in enumerate(bodies):
                if j == idx:
                    continue
                dx, dy, dz = other.x - b.x, other.y - b.y, other.z - b.z
                r2 = dx * dx + dy * dy + dz * dz + 1e-4
                inv = other.mass / (r2 * math.sqrt(r2))
                bx += dx * inv
                by += dy * inv
                bz += dz * inv
            scale = max(1.0, abs(bx), abs(by), abs(bz))
            assert abs(ax - bx) / scale < 0.2
            assert abs(ay - by) / scale < 0.2
            assert abs(az - bz) / scale < 0.2


class TestSpmxvDetails:
    def test_structured_variant(self):
        from repro.workloads.spmxv import make_workload

        w = make_workload(scale="tiny", seed=0, structured=True)
        machine = build_machine(shared_mesh(4))
        result = machine.run(w.root)
        w.verify(result["output"])
        assert w.meta["structured"]

    def test_matches_scipy_exactly(self):
        result, _, workload = run_on("spmxv", shared_mesh(8), scale="small")
        # verify() already asserts allclose against scipy's A @ x.
        assert len(result["output"]) == workload.meta["rows"]


class TestOctreeDetails:
    def test_every_object_updated_once(self):
        result, _, workload = run_on("octree", shared_mesh(4), scale="tiny")
        # verify() compares against a reference single application of the
        # transform; a double update would fail it.
        assert len(result["output"]) > 0


class TestConnectedComponentsDetails:
    def test_labels_are_component_minima(self):
        result, _, _ = run_on("connected_components", shared_mesh(4),
                              scale="tiny", seed=8)
        labels = result["output"]
        # Each label must equal the smallest node id bearing it.
        for v, label in enumerate(labels):
            assert label <= v
            assert labels[label] == label
