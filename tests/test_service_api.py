"""End-to-end HTTP API tests, including the acceptance criteria:

* a submitted spec returns results identical (trace-digest match) to
  the equivalent direct ``repro run`` invocation;
* resubmitting an identical spec is served from the cache without
  re-simulating, verified by the service telemetry counters showing
  zero new simulation dispatches;
* both backends (serial and sharded) behave the same way over the API.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.arch import build_machine, shared_mesh
from repro.harness.trace import Tracer, trace_digest
from repro.service import serve_in_background
from repro.service.queue import JobQueue
from repro.workloads import get_workload

SERIAL_SPEC = {
    "arch": {"preset": "shared_mesh", "n_cores": 9},
    "workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 0},
    "options": {"wait": True},
}
SHARDED_SPEC = {
    "arch": {"preset": "shared_mesh", "n_cores": 16, "shards": 4,
             "backend": "sharded"},
    "workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 0},
    "options": {"wait": True},
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc, _ = serve_in_background(
        str(tmp_path_factory.mktemp("service-store")), workers=2)
    yield svc
    svc.close(timeout=60)


def _request(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        service.base_url + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=180) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_health(self, service):
        status, body = _request(service, "GET", "/v1/health")
        assert status == 200 and body["status"] == "ok"
        assert set(body["jobs"]) == {"queued", "running", "done", "failed"}

    def test_unknown_routes_are_structured_404s(self, service):
        for method, path in (("GET", "/nope"), ("GET", "/v1/nope"),
                             ("POST", "/v1/nope"),
                             ("GET", "/v1/jobs/no-such-job"),
                             ("GET", "/v1/results/" + "f" * 64),
                             ("GET", "/v1/results/not-a-hash")):
            status, body = _request(service, method, path,
                                    body={} if method == "POST" else None)
            assert status == 404, (method, path)
            assert "error" in body and body["error"]["message"]

    def test_malformed_specs_are_400s(self, service):
        for body in ({}, {"workload": {"benchmark": "nope"}},
                     {"workload": {"benchmark": "quicksort"},
                      "arch": {"drift_bound": "fast"}}):
            status, reply = _request(service, "POST", "/v1/jobs", body)
            assert status == 400
            assert reply["error"]["type"] in ("invalid_spec",)

    def test_metrics_exposed(self, service):
        status, body = _request(service, "GET", "/v1/metrics")
        assert status == 200
        assert "counters" in body and "jobs" in body


class TestEndToEnd:
    @pytest.mark.parametrize("spec", [SERIAL_SPEC, SHARDED_SPEC],
                             ids=["serial", "sharded"])
    def test_submit_then_cached_resubmit(self, service, spec):
        status, first = _request(service, "POST", "/v1/jobs", spec)
        assert status == 200, first
        assert first["state"] == "done" and not first["cache_hit"]
        assert first["result"]["result"]["verified"] is True
        assert first["result"]["result"]["work_vtime"] > 0

        _, metrics = _request(service, "GET", "/v1/metrics")
        sims_before = metrics["counters"]["service.simulations_started"]

        status, second = _request(service, "POST", "/v1/jobs", spec)
        assert status == 200 and second["cache_hit"] is True
        assert second["result"] == first["result"]  # bit-identical payload

        _, metrics = _request(service, "GET", "/v1/metrics")
        assert metrics["counters"]["service.simulations_started"] == \
            sims_before  # zero new engine dispatches

    def test_service_digest_matches_direct_run(self, service):
        """The service answer is the `repro run` answer: same canonical
        trace digest, same virtual completion time."""
        status, reply = _request(service, "POST", "/v1/jobs", SERIAL_SPEC)
        assert status == 200 and reply["state"] == "done"
        served = reply["result"]["result"]

        machine = build_machine(shared_mesh(9))
        workload = get_workload("quicksort", scale="tiny", seed=0,
                                memory="shared")
        tracer = Tracer(machine)
        direct = machine.run(workload.root)
        assert served["work_vtime"] == direct["work_vtime"]
        assert served["trace_digest"] == trace_digest(tracer.export())

    def test_sharded_result_document_has_protocol(self, service):
        status, reply = _request(service, "POST", "/v1/jobs", SHARDED_SPEC)
        assert status == 200
        doc = reply["result"]
        assert doc["protocol"]["rounds"] > 0
        assert "worker_busy_s" in doc["host"]

    def test_result_endpoint_serves_stored_bytes(self, service):
        _, reply = _request(service, "POST", "/v1/jobs", SERIAL_SPEC)
        spec_hash = reply["spec_hash"]
        status, doc = _request(service, "GET", f"/v1/results/{spec_hash}")
        assert status == 200
        assert doc == reply["result"]
        assert doc == service.store.get(spec_hash)

    def test_jobs_listing_and_single_job(self, service):
        _, reply = _request(service, "POST", "/v1/jobs", SERIAL_SPEC)
        status, listing = _request(service, "GET", "/v1/jobs")
        assert status == 200
        assert any(j["job_id"] == reply["job_id"] for j in listing["jobs"])
        status, single = _request(service, "GET",
                                  f"/v1/jobs/{reply['job_id']}")
        assert status == 200 and single["state"] == "done"
        assert single["result"]["spec_hash"] == reply["spec_hash"]

    def test_async_submit_then_poll(self, service):
        spec = {
            "arch": {"preset": "shared_mesh", "n_cores": 9},
            "workload": {"benchmark": "quicksort", "scale": "tiny",
                         "seed": 42},
        }
        status, reply = _request(service, "POST", "/v1/jobs", spec)
        assert status in (200, 202)
        job = service.queue.get(reply["job_id"])
        assert job is not None and job.wait(120)
        status, final = _request(service, "GET",
                                 f"/v1/jobs/{reply['job_id']}")
        assert status == 200 and final["state"] == "done"


class TestBackpressure:
    def test_queue_full_is_503(self, tmp_path, monkeypatch):
        release = threading.Event()
        monkeypatch.setattr(JobQueue, "_execute",
                            lambda self, job: release.wait(60) or {})
        svc, _ = serve_in_background(str(tmp_path / "store"), workers=1,
                                     depth=1)
        try:
            import time

            def spec_for(seed):
                return {
                    "arch": {"preset": "shared_mesh", "n_cores": 9},
                    "workload": {"benchmark": "quicksort", "scale": "tiny",
                                 "seed": seed},
                }

            status, first = _request(svc, "POST", "/v1/jobs", spec_for(1))
            assert status == 202
            # Wait until the single worker picked job 1 off the queue, so
            # job 2 deterministically occupies the only queue slot.
            job1 = svc.queue.get(first["job_id"])
            for _ in range(100):
                if job1.state == "running":
                    break
                time.sleep(0.05)
            assert job1.state == "running"
            assert _request(svc, "POST", "/v1/jobs", spec_for(2))[0] == 202
            status, body = _request(svc, "POST", "/v1/jobs", spec_for(3))
            assert status == 503
            assert body["error"]["type"] == "queue_full"
            release.set()
        finally:
            release.set()
            svc.close(timeout=30)
