"""Cache-identity semantics: what is, and is not, in the spec hash.

The content hash decides when a cached result may be served instead of
re-simulating, so these tests pin its contract from both sides:
semantically identical specs (field reordering, observation-only knobs,
bit-identical kernel selection) must collide, and anything the
simulator treats as semantic (drift bound, sync policy, shard fences,
workload identity) must separate.
"""

import dataclasses

import pytest

from repro.arch import ArchConfig, shared_mesh
from repro.arch.io import (NON_SEMANTIC_FIELDS, config_canonical_dict,
                           config_content_hash)
from repro.service import SpecError, canonical_json, resolve_spec, spec_hash


def _hash_of(payload):
    return resolve_spec(payload).spec_hash


BASE = {
    "arch": {"preset": "shared_mesh", "n_cores": 16, "drift_bound": 100.0},
    "workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 0},
}


class TestConfigIdentity:
    def test_field_set_is_complete(self):
        """Every ArchConfig field is either hashed or explicitly waived —
        a new field added without a decision fails here."""
        fields = {f.name for f in dataclasses.fields(ArchConfig)}
        assert NON_SEMANTIC_FIELDS <= fields
        assert set(config_canonical_dict(ArchConfig())) == \
            fields - NON_SEMANTIC_FIELDS

    def test_label_is_not_semantic(self):
        a = shared_mesh(16)
        b = dataclasses.replace(a, name="anything-else")
        assert config_content_hash(a) == config_content_hash(b)

    @pytest.mark.parametrize("field,value", [
        ("engine_kernel", "python"),
        ("engine_kernel", "compiled"),
        ("telemetry", "all"),
        ("sanitize", True),
        ("collect_trace", True),
        ("inbox_heap", False),
        ("worker_start_method", "spawn"),
    ])
    def test_non_semantic_fields_do_not_change_hash(self, field, value):
        a = shared_mesh(16)
        b = dataclasses.replace(a, **{field: value})
        assert config_content_hash(a) == config_content_hash(b)

    @pytest.mark.parametrize("field,value", [
        ("drift_bound", 50.0),
        ("sync", "conservative"),
        ("n_cores", 25),
        ("memory", "distributed"),
        ("shards", 4),
        ("dispatch", "random"),
        ("seed", 7),
        ("round_batch", 1),
        ("adaptive_window", False),
        ("window_max_factor", 2.0),
        ("work_stealing", True),
    ])
    def test_semantic_fields_change_hash(self, field, value):
        a = shared_mesh(16)
        b = dataclasses.replace(a, **{field: value})
        assert config_content_hash(a) != config_content_hash(b)

    def test_backend_is_semantic(self):
        """Serial vs sharded trajectories may legitimately differ for
        runs with cross-shard traffic (two-tier fuzzer contract), so the
        backend must separate cache entries."""
        a = dataclasses.replace(shared_mesh(16), shards=4)
        b = dataclasses.replace(a, backend="sharded")
        assert config_content_hash(a) != config_content_hash(b)


class TestSpecHash:
    def test_stable_across_field_ordering(self):
        reordered = {
            "workload": {"seed": 0, "scale": "tiny", "benchmark": "quicksort"},
            "arch": {"drift_bound": 100.0, "n_cores": 16,
                     "preset": "shared_mesh"},
        }
        assert _hash_of(BASE) == _hash_of(reordered)

    def test_options_never_hashed(self):
        with_options = dict(BASE, options={"wait": True, "timeout_s": 5,
                                           "digest": False,
                                           "telemetry": "all"})
        assert _hash_of(BASE) == _hash_of(with_options)

    def test_defaults_are_explicit(self):
        """Omitting a field and stating its default hash identically."""
        explicit = {
            "arch": dict(BASE["arch"], sync="spatial"),
            "workload": dict(BASE["workload"], root_core=0),
        }
        assert _hash_of(BASE) == _hash_of(explicit)

    @pytest.mark.parametrize("change", [
        {"arch": {"preset": "shared_mesh", "n_cores": 16,
                  "drift_bound": 200.0}},
        {"arch": {"preset": "shared_mesh", "n_cores": 16, "drift_bound": 100.0,
                  "sync": "quantum"}},
        {"workload": {"benchmark": "dijkstra", "scale": "tiny", "seed": 0}},
        {"workload": {"benchmark": "quicksort", "scale": "small", "seed": 0}},
        {"workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 1}},
        {"workload": {"benchmark": "quicksort", "scale": "tiny", "seed": 0,
                      "root_core": 3}},
    ])
    def test_semantic_changes_separate(self, change):
        assert _hash_of(BASE) != _hash_of(dict(BASE, **change))

    def test_hash_matches_direct_composition(self):
        spec = resolve_spec(BASE)
        assert spec.spec_hash == spec_hash(spec.cfg, spec.workload)
        assert spec.short_id == spec.spec_hash[:12]
        assert len(spec.spec_hash) == 64

    def test_canonical_json_deterministic(self):
        a, b = resolve_spec(BASE), resolve_spec(BASE)
        assert canonical_json(a.canonical) == canonical_json(b.canonical)


class TestSpecValidation:
    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ({}, "workload"),
        ({"workload": {"benchmark": "nope"}}, "unknown benchmark"),
        ({"workload": {"benchmark": "quicksort", "scale": "huge"}},
         "unknown scale"),
        ({"workload": {"benchmark": "quicksort", "memory": "shared"}},
         "derived from the arch config"),
        ({"workload": {"benchmark": "quicksort", "seed": "zero"}},
         "seed must be an integer"),
        ({"workload": {"benchmark": "quicksort", "root_core": 99},
          "arch": {"n_cores": 8}}, "out of range"),
        ({"workload": {"benchmark": "quicksort"}, "arch": {"bogus": 1}},
         "unknown arch field"),
        ({"workload": {"benchmark": "quicksort"},
          "arch": {"preset": "warp_drive"}}, "unknown arch preset"),
        ({"workload": {"benchmark": "quicksort"},
          "arch": {"n_cores": 0}}, "at least one core"),
        ({"workload": {"benchmark": "quicksort"},
          "arch": {"backend": "sharded"}}, "shards"),
        ({"workload": {"benchmark": "quicksort"},
          "options": {"frobnicate": 1}}, "unknown option"),
        ({"workload": {"benchmark": "quicksort"},
          "options": {"timeout_s": -2}}, "positive"),
        ({"workload": {"benchmark": "quicksort"}, "extra": {}},
         "unknown top-level"),
    ])
    def test_rejects_with_actionable_message(self, payload, fragment):
        with pytest.raises(SpecError, match=fragment):
            resolve_spec(payload)

    def test_arch_section_optional(self):
        spec = resolve_spec({"workload": {"benchmark": "quicksort",
                                          "scale": "tiny"}})
        assert spec.cfg.n_cores == ArchConfig().n_cores

    def test_preset_overrides_revalidate(self):
        spec = resolve_spec({
            "arch": {"preset": "dist_mesh", "n_cores": 9, "sync": "quantum"},
            "workload": {"benchmark": "quicksort", "scale": "tiny"},
        })
        assert spec.cfg.memory == "distributed"
        assert spec.cfg.sync == "quantum"
        assert spec.workload["memory"] == "distributed"

    def test_request_payload_not_mutated(self):
        payload = dict(BASE, arch=dict(BASE["arch"]))
        resolve_spec(payload)
        assert payload["arch"] == BASE["arch"]
