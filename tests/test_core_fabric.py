"""Unit tests for the virtual-time fabric (spatial sync bookkeeping)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fabric import VirtualTimeFabric
from repro.network.topology import mesh2d, ring

INF = math.inf


def make_fabric(topo=None, T=100.0, shadow=True, mode="exact", hook=None):
    return VirtualTimeFabric(
        topo or mesh2d(3, 3), drift_bound=T, shadow_enabled=shadow,
        shadow_mode=mode, on_publish_increase=hook,
    )


class TestClockBasics:
    def test_invalid_drift_rejected(self):
        with pytest.raises(ValueError):
            make_fabric(T=0.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_fabric(mode="weird")

    def test_activation_sets_vtime(self):
        fabric = make_fabric()
        fabric.set_active(0, 42.0)
        assert fabric.active[0]
        assert fabric.vtime[0] == 42.0
        assert fabric.max_vtime == 42.0

    def test_double_activation_rejected(self):
        fabric = make_fabric()
        fabric.set_active(0, 0.0)
        with pytest.raises(RuntimeError):
            fabric.set_active(0, 1.0)

    def test_idle_without_active_rejected(self):
        fabric = make_fabric()
        with pytest.raises(RuntimeError):
            fabric.set_idle(0)

    def test_advance_monotone(self):
        fabric = make_fabric()
        fabric.set_active(0, 10.0)
        fabric.advance(0, 20.0)
        with pytest.raises(ValueError):
            fabric.advance(0, 5.0)

    def test_advance_idle_rejected(self):
        fabric = make_fabric()
        with pytest.raises(RuntimeError):
            fabric.advance(0, 5.0)

    def test_advance_noop_same_time(self):
        fabric = make_fabric()
        fabric.set_active(0, 10.0)
        fabric.advance(0, 10.0)
        assert fabric.vtime[0] == 10.0


class TestDriftRule:
    def test_lone_active_core_unconstrained_without_neighbors_active(self):
        # With shadow time, idle neighbours publish min+T, so a lone core
        # at the start has floor = its own time + T (through shadows).
        fabric = make_fabric()
        fabric.set_active(4, 0.0)  # center of the 3x3 mesh
        assert fabric.drift_ok(4)

    def test_stall_when_ahead_of_neighbor(self):
        fabric = make_fabric(shadow=False)
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 150.0)
        assert not fabric.drift_ok(0)  # 150 > 0 + 100
        assert fabric.drift_ok(1)

    def test_exactly_at_bound_ok(self):
        fabric = make_fabric(shadow=False)
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 100.0)
        assert fabric.drift_ok(0)

    def test_unstall_when_neighbor_catches_up(self):
        fabric = make_fabric(shadow=False)
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 150.0)
        assert not fabric.drift_ok(0)
        fabric.advance(1, 60.0)
        assert fabric.drift_ok(0)

    def test_idle_core_always_ok(self):
        fabric = make_fabric()
        assert fabric.drift_ok(3)

    def test_floor_is_most_late_neighbor(self):
        fabric = make_fabric(shadow=False, topo=mesh2d(3, 1))
        fabric.set_active(0, 30.0)
        fabric.set_active(1, 0.0)
        fabric.set_active(2, 70.0)
        assert fabric.neighbor_floor(1) == 30.0
        assert fabric.floor(1) == 30.0

    def test_publish_hook_called(self):
        seen = []
        fabric = make_fabric(hook=seen.append, shadow=False)
        fabric.set_active(0, 0.0)
        fabric.advance(0, 10.0)
        assert 0 in seen


class TestBirthLedger:
    def test_birth_constrains_floor(self):
        fabric = make_fabric(shadow=False, topo=mesh2d(2, 1))
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 50.0)
        fabric.add_birth(0, 10.0)
        fabric.advance(1, 60.0)
        assert fabric.floor(0) == 10.0
        fabric.advance(0, 120.0)
        assert not fabric.drift_ok(0)  # 120 > 10 + 100
        fabric.remove_birth(0, 10.0)
        assert fabric.drift_ok(0)

    def test_duplicate_birth_counts(self):
        fabric = make_fabric()
        fabric.add_birth(0, 5.0)
        fabric.add_birth(0, 5.0)
        fabric.remove_birth(0, 5.0)
        assert fabric.births_min(0) == 5.0
        fabric.remove_birth(0, 5.0)
        assert fabric.births_min(0) == INF

    def test_remove_unknown_birth_rejected(self):
        fabric = make_fabric()
        with pytest.raises(RuntimeError):
            fabric.remove_birth(0, 1.0)

    def test_births_min_tracks_minimum(self):
        fabric = make_fabric()
        fabric.add_birth(0, 30.0)
        fabric.add_birth(0, 10.0)
        fabric.add_birth(0, 20.0)
        assert fabric.births_min(0) == 10.0
        fabric.remove_birth(0, 10.0)
        assert fabric.births_min(0) == 20.0


class TestShadowTime:
    def test_exact_shadow_is_distance_scaled(self):
        """shadow(i) = min over active a of (vtime(a) + T * hops)."""
        fabric = make_fabric(topo=mesh2d(4, 1), T=100.0, mode="exact")
        fabric.set_active(0, 1000.0)
        snapshot = fabric.snapshot()
        assert snapshot["published"][1] == 1100.0
        assert snapshot["published"][2] == 1200.0
        assert snapshot["published"][3] == 1300.0

    def test_exact_shadow_two_sources(self):
        fabric = make_fabric(topo=mesh2d(5, 1), T=10.0, mode="exact")
        fabric.set_active(0, 0.0)
        fabric.set_active(4, 100.0)
        published = fabric.snapshot()["published"]
        assert published[1] == 10.0
        assert published[2] == 20.0
        assert published[3] == 30.0  # min(0+30, 100+10)

    def test_non_connected_sets_problem_solved(self):
        """Figure 2: idle cores between two active sets propagate time."""
        fabric = make_fabric(topo=mesh2d(5, 1), T=100.0, mode="exact")
        fabric.set_active(0, 0.0)
        fabric.set_active(4, 0.0)
        fabric.advance(0, 500.0)
        # Core 4 sees core 3's shadow; with core 0 at 500 and itself at 0,
        # shadow(3) = min(500+..., 0+100) from core 4's own publication.
        assert fabric.neighbor_floor(4) <= 100.0 + 100.0
        # After core 4 advances, the bridge shadows rise accordingly.
        fabric.advance(4, 400.0)
        assert fabric.drift_ok(4)

    def test_shadow_disabled_publishes_inf(self):
        fabric = make_fabric(shadow=False)
        fabric.set_active(0, 5.0)
        fabric.set_idle(0)
        assert math.isinf(fabric.published[0])

    def test_fast_mode_monotone_published(self):
        fabric = make_fabric(mode="fast", topo=mesh2d(3, 1))
        fabric.set_active(0, 0.0)
        fabric.advance(0, 50.0)
        fabric.set_idle(0)
        p_after_idle = fabric.published[0]
        assert p_after_idle >= 50.0
        fabric.set_active(0, 20.0)  # reactivation in the past
        assert fabric.published[0] >= p_after_idle  # never regresses

    def test_fast_mode_relaxation_terminates_without_anchor(self):
        """The mutual-amplification loop between idle cores must not hang."""
        fabric = make_fabric(mode="fast", topo=mesh2d(4, 1), T=10.0)
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.set_active(2, 0.0)
        fabric.set_idle(1)
        fabric.set_idle(2)
        # Core 0 advancing triggers relaxation into the idle pocket {1, 2}.
        for t in range(1, 50):
            fabric.advance(0, float(t * 10))
        assert fabric.published[1] <= fabric.max_vtime + fabric.T + 1e-9

    def test_refresh_shadows_restores_exact_fixpoint(self):
        fabric = make_fabric(mode="fast", topo=mesh2d(4, 1), T=100.0)
        fabric.set_active(0, 1000.0)
        fabric.refresh_shadows()
        assert fabric.published[1] == 1100.0
        assert fabric.published[3] == 1300.0

    def test_global_bound_value(self):
        fabric = make_fabric(topo=mesh2d(4, 4), T=100.0)
        assert fabric.global_drift_bound() == 6 * 100.0


class TestDriftQuery:
    def test_drift_value(self):
        fabric = make_fabric(shadow=False, topo=mesh2d(2, 1))
        fabric.set_active(0, 0.0)
        fabric.set_active(1, 0.0)
        fabric.advance(0, 80.0)
        assert fabric.drift(0) == pytest.approx(80.0)
        assert fabric.drift(1) == pytest.approx(-80.0)

    def test_drift_unconstrained_is_minus_inf(self):
        fabric = make_fabric(shadow=False, topo=mesh2d(2, 1))
        fabric.set_active(0, 10.0)
        assert fabric.drift(0) == -INF


@given(
    advances=st.lists(
        st.tuples(st.integers(0, 3), st.floats(min_value=0.1, max_value=50.0)),
        min_size=1, max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_exact_shadow_invariant_random_schedules(advances):
    """Exact shadows always equal min over active of (vtime + T*hops)."""
    topo = mesh2d(4, 1)
    fabric = VirtualTimeFabric(topo, drift_bound=10.0, shadow_enabled=True,
                               shadow_mode="exact")
    for c in range(2):
        fabric.set_active(c, 0.0)
    for cid, delta in advances:
        cid %= 2
        fabric.advance(cid, fabric.vtime[cid] + delta)
    published = fabric.snapshot()["published"]
    # Independent reference: Bellman-Ford iteration of the local equations
    # pub(active) = vtime, pub(idle) = min over neighbours of pub + T.
    ref = [fabric.vtime[c] if fabric.active[c] else INF for c in range(4)]
    for _ in range(8):
        for i in range(4):
            if fabric.active[i]:
                continue
            nbrs = [j for j in (i - 1, i + 1) if 0 <= j < 4]
            ref[i] = min(ref[j] for j in nbrs) + 10.0
    for idle in (2, 3):
        assert published[idle] == pytest.approx(ref[idle])
