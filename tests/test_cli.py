"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mining"])

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["sweep", "fig8", "--sizes", "1,4,16"])
        assert args.sizes == (1, 4, 16)


class TestList:
    def test_lists_benchmarks(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("quicksort", "dijkstra", "octree"):
            assert name in text


class TestInfo:
    def test_paper_parameters_shown(self):
        code, text = run_cli("info")
        assert code == 0
        assert "drift bound T" in text
        assert "100" in text


class TestRun:
    def test_basic_run(self):
        code, text = run_cli("run", "octree", "--cores", "4",
                             "--scale", "tiny")
        assert code == 0
        assert "virtual time" in text
        assert "output verified  : yes" in text

    def test_with_baseline(self):
        code, text = run_cli("run", "spmxv", "--cores", "4",
                             "--scale", "tiny", "--baseline")
        assert code == 0
        assert "speedup vs 1 core" in text

    def test_distributed(self):
        code, text = run_cli("run", "quicksort", "--cores", "4",
                             "--memory", "distributed", "--scale", "tiny")
        assert code == 0
        assert "output verified  : yes" in text

    def test_polymorphic(self):
        code, text = run_cli("run", "octree", "--cores", "4",
                             "--arch", "polymorphic", "--scale", "tiny")
        assert code == 0

    def test_clustered_requires_distributed(self):
        with pytest.raises(SystemExit):
            run_cli("run", "octree", "--cores", "16", "--arch", "clustered",
                    "--memory", "shared", "--scale", "tiny")

    def test_sync_selection(self):
        code, text = run_cli("run", "octree", "--cores", "4",
                             "--scale", "tiny", "--sync", "conservative")
        assert code == 0
        assert "sync=conservative" in text

    def test_dispatch_selection(self):
        code, _ = run_cli("run", "octree", "--cores", "4", "--scale", "tiny",
                          "--dispatch", "speed_aware")
        assert code == 0

    def test_drift_override(self):
        code, text = run_cli("run", "octree", "--cores", "4",
                             "--scale", "tiny", "--drift", "500")
        assert code == 0
        assert "T=500" in text


class TestSweep:
    @pytest.mark.parametrize("figure", ["fig8", "fig9"])
    def test_scalability_sweeps(self, figure):
        code, text = run_cli("sweep", figure, "--sizes", "1,4",
                             "--scale", "tiny")
        assert code == 0
        assert "speedup" in text

    def test_validation_sweep(self):
        code, text = run_cli("sweep", "fig5", "--sizes", "1,4",
                             "--scale", "tiny")
        assert code == 0
        assert "geomean error" in text

    def test_drift_sweep(self):
        code, text = run_cli("sweep", "fig10", "--sizes", "1,4",
                             "--scale", "tiny")
        assert code == 0
        assert "T=50" in text


class TestPolicies:
    def test_policy_comparison(self):
        code, text = run_cli("policies", "octree", "--cores", "4",
                             "--scale", "tiny")
        assert code == 0
        assert "conservative" in text
        assert "spatial" in text
